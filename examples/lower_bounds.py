#!/usr/bin/env python
"""Why underallocation is necessary: the paper's lower bounds, live.

Run:  PYTHONPATH=src python examples/lower_bounds.py

Section 6 of the paper shows that without slack, cheap reallocation is
impossible for *any* scheduler:

- Lemma 11: Omega(s) machine migrations over s requests (m > 1);
- Lemma 12: Omega(s^2) total reallocations (the staircase toggle);
- Observation 13: Omega(k*n) once jobs of size k mix with unit jobs.

This example runs all three constructions against the per-request
OPTIMAL scheduler (minimum-change matching) — demonstrating the bounds
bind every algorithm, not just greedy ones.
"""

from repro.adversaries import (
    ReallocLowerBound,
    SizedLowerBound,
    run_migration_adversary,
    sized_pump_sequence,
    staircase_toggle_sequence,
)
from repro.baselines import MinChangeMatchingScheduler, SizedGreedyScheduler
from repro.sim import format_table


def main() -> None:
    print("== Lemma 11: migrations are unavoidable (m = 2) ==")
    sched = MinChangeMatchingScheduler(2)
    result = run_migration_adversary(sched, rounds=6)
    print(f"requests: {result.requests}, migrations forced: "
          f"{result.total_migrations} (paper bound: >= s/12 = "
          f"{result.lower_bound:.0f})\n")

    print("== Lemma 12: the staircase toggle costs Theta(s^2) ==")
    rows = []
    for eta in (4, 8, 16, 32):
        seq = staircase_toggle_sequence(eta)
        sched = MinChangeMatchingScheduler(1)
        for req in seq:
            sched.apply(req)
        bound = ReallocLowerBound(eta, eta)
        rows.append([eta, len(seq), sched.ledger.total_reallocations,
                     bound.min_total_reallocations])
    print(format_table(
        ["eta", "requests s", "total reallocations", "Lemma 12 bound"],
        rows))
    print("(note the quadratic growth: 4x eta -> ~16x cost)\n")

    print("== Observation 13: size-k jobs force Omega(k*n) ==")
    rows = []
    for k in (2, 4, 8, 16):
        seq = sized_pump_sequence(k=k, gamma=2, sweeps=3)
        sched = SizedGreedyScheduler(1)
        for req in seq:
            sched.apply(req)
        bound = SizedLowerBound(k, 2, 3)
        rows.append([k, len(seq), sched.ledger.total_reallocations,
                     bound.min_total_reallocations])
    print(format_table(
        ["k", "requests", "total reallocations", "Obs 13 bound"],
        rows))
    print("(cost per request grows linearly with k — the reason the "
          "paper restricts to unit jobs)")


if __name__ == "__main__":
    main()
