#!/usr/bin/env python
"""Elastic machine pools: exploring a Section 7 open question.

Run:  PYTHONPATH=src python examples/elastic_machines.py

The paper asks: "What happens if new machines can be added or dropped
from the schedule?" This example runs a cluster that scales from 2 to 4
machines during a load burst and back down afterwards, and contrasts
the cost of elasticity events (inherently ~n/m migrations — a bulk
reallocation) with the cost of ordinary job churn (at most 1 migration
per request, Theorem 1's regime).
"""

from repro.core import Job, Window
from repro.multimachine import ElasticScheduler
from repro.reservation import TrimmedReservationScheduler
from repro.sim import format_table


def main() -> None:
    sched = ElasticScheduler(2, lambda: TrimmedReservationScheduler(gamma=8))
    rows = []

    def record(event, cost):
        rows.append([event, len(sched.jobs), sched.num_machines,
                     cost.reallocation_cost, cost.migration_cost])

    # Baseline load on 2 machines.
    for i in range(16):
        cost = sched.insert(Job(f"base{i}", Window(0, 1 << 10)))
    record("16 inserts (last shown)", cost)

    # Load burst: scale out to 4 machines.
    cost = sched.add_machine()
    record("add_machine -> 3", cost)
    cost = sched.add_machine()
    record("add_machine -> 4", cost)

    for i in range(24):
        cost = sched.insert(Job(f"burst{i}", Window(0, 1 << 10)))
    record("24 burst inserts (last)", cost)

    # Burst over: jobs drain, scale back in.
    for i in range(24):
        cost = sched.delete(f"burst{i}")
    record("24 deletes (last)", cost)

    cost = sched.remove_machine(3)
    record("remove_machine 3", cost)
    cost = sched.remove_machine(2)
    record("remove_machine 2", cost)

    sched.check_balance()
    print(format_table(
        ["event", "active jobs", "machines", "reallocations", "migrations"],
        rows,
        title="elasticity events vs ordinary churn",
    ))
    print()
    print("Observations:")
    print(" - ordinary inserts/deletes migrate at most 1 job (Theorem 1);")
    print(" - machine add/remove moves ~n/m jobs: elasticity is a bulk")
    print("   reallocation event, which answers the open question's cost")
    print("   side negatively — no scheduler can avoid Theta(n/m) there.")


if __name__ == "__main__":
    main()
