#!/usr/bin/env python
"""Multiprocessor batch scheduling with bounded migrations.

Run:  PYTHONPATH=src python examples/cluster_scheduling.py

The multi-machine setting of Theorem 1: batch tasks with deadlines
arrive in bursts on an m-machine cluster and finish (depart) over time.
Migrating a task between machines is expensive (state transfer), so we
track migrations separately from same-machine reallocations — the
paper's central cost split. Theorem 1 promises at most ONE migration per
request; EDF-style rebuilds migrate freely. (For driving bursts of a
cluster trace through the batched or sharded backends, see
``session_backends.py`` — ``run_comparison`` here is the sequential
``Session`` adapter.)
"""

from repro.baselines import EDFRebuildScheduler
from repro.core.api import ReservationScheduler
from repro.sim import format_table, run_comparison
from repro.workloads import cluster_trace_sequence


def main() -> None:
    m = 4
    seq = cluster_trace_sequence(
        num_machines=m, horizon=1 << 12, requests=600,
        burst_size=6, finish_fraction=0.4, gamma=8, seed=7,
    )
    print(f"cluster trace: {len(seq)} requests on {m} machines, "
          f"peak {seq.max_active} concurrent tasks\n")

    results = run_comparison({
        "reservation (paper)": lambda: ReservationScheduler(m, gamma=8),
        "EDF rebuild": lambda: EDFRebuildScheduler(m),
    }, seq)

    rows = []
    for name, result in results.items():
        s = result.summary
        rows.append([
            name,
            s["max_migration"], s["mean_migration"], s["total_migrations"],
            s["max_realloc"], s["mean_realloc"],
        ])
    print(format_table(
        ["scheduler", "max migr/req", "mean migr", "total migr",
         "max realloc/req", "mean realloc"],
        rows,
        title="migration and reallocation costs",
    ))

    res = results["reservation (paper)"]
    print()
    print(f"Theorem 1 check: max migrations per request = "
          f"{res.ledger.max_migration} (bound: 1)")

    # Show the per-machine balance invariant of Section 3 in action.
    sched = ReservationScheduler(m, gamma=8)
    for req in seq:
        sched.apply(req)
    sched.check_balance()
    per_machine = [len(sub.jobs) for sub in sched.machine_schedulers()]
    print(f"final tasks per machine: {per_machine}")
    print("(Section 3 balances each *window's* jobs across machines — "
          "singleton windows all start at machine 0, so total load may "
          "skew while every window stays within floor/ceil of n_W/m; "
          "check_balance() verified that invariant)")
    print()
    print("note: the reservation scheduler's max realloc/req includes "
          "amortized n*-rebuild spikes (Section 4 trims windows to the "
          "active-job scale); its *mean* is what the amortized bound "
          "promises. See benchmarks/bench_theorem1.py for the split.")


if __name__ == "__main__":
    main()
