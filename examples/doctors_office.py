#!/usr/bin/env python
"""The doctor's office from the paper's introduction, end to end.

Run:  PYTHONPATH=src python examples/doctors_office.py

Patients phone in with availability windows; some cancel. The scheduler
(the paper's ophthalmologist) reschedules existing patients to make
room — the quantity we care about is *how many patients get rescheduled
per booking*, since rescheduled patients are unhappy patients.

We compare the paper's reservation scheduler against the naive policy of
recomputing an earliest-deadline-first schedule after every change,
which reschedules large swaths of the book. ``run_comparison`` is a
thin adapter over the unified ``Session`` drive loop (``repro.sim``) —
the same loop the CLI's demo/engine/sweep commands use.
"""

from repro.baselines import EDFRebuildScheduler, MinChangeMatchingScheduler
from repro.core.api import ReservationScheduler
from repro.sim import format_table, run_comparison
from repro.workloads import appointment_book_sequence


def main() -> None:
    seq = appointment_book_sequence(
        days=8, slots_per_day=32, requests=400,
        cancel_fraction=0.25, gamma=8, seed=42,
    )
    inserts = sum(1 for r in seq if r.kind == "insert")
    print(f"appointment book: {len(seq)} requests "
          f"({inserts} bookings, {len(seq) - inserts} cancellations), "
          f"peak {seq.max_active} concurrent patients\n")

    results = run_comparison({
        "reservation (paper)": lambda: ReservationScheduler(1, gamma=8),
        "EDF rebuild": lambda: EDFRebuildScheduler(1),
        "min-change matching": lambda: MinChangeMatchingScheduler(1),
    }, seq)

    rows = []
    for name, result in results.items():
        s = result.summary
        rows.append([
            name, s["max_realloc"], s["mean_realloc"], s["p99_realloc"],
            s["total_realloc"],
        ])
    print(format_table(
        ["scheduler", "max moved/request", "mean", "p99", "total rescheduled"],
        rows,
        title="patients rescheduled per booking/cancellation",
    ))

    res = results["reservation (paper)"]
    edf = results["EDF rebuild"]
    print()
    print(f"worst single request under EDF rebuild: "
          f"{edf.ledger.max_reallocation} patients rescheduled")
    print(f"worst single request under the paper's scheduler: "
          f"{res.ledger.max_reallocation}")
    worst = edf.ledger.worst_requests(1)[0]
    print(f"(EDF's worst was a {worst.kind} with {worst.n_active} active "
          f"patients — a classic cascade)")


if __name__ == "__main__":
    main()
