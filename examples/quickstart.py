#!/usr/bin/env python
"""Quickstart: the Theorem 1 reallocating scheduler in 60 seconds.

Run:  PYTHONPATH=src python examples/quickstart.py

Demonstrates the core loop of the paper's model: jobs with time windows
arrive and depart online; the scheduler keeps a feasible schedule at all
times while touching only O(log* n) jobs per request and migrating at
most one job across machines per request.
"""

from repro import Job, Window
from repro.core.api import ReservationScheduler
from repro.core.schedule import format_schedule


def main() -> None:
    sched = ReservationScheduler(num_machines=2, gamma=8)

    print("== inserting five jobs with overlapping windows ==")
    jobs = [
        Job("alpha", Window(0, 8)),     # flexible: any of slots 0..7
        Job("bravo", Window(0, 4)),     # tighter
        Job("charlie", Window(2, 6)),   # unaligned window: handled transparently
        Job("delta", Window(0, 2)),     # tight
        Job("echo", Window(5, 13)),
    ]
    for job in jobs:
        cost = sched.insert(job)
        print(f"insert {job.id:<8} window [{job.release},{job.deadline}) -> "
              f"moved {cost.reallocation_cost} other jobs, "
              f"{cost.migration_cost} migrations")

    print()
    print(format_schedule(sched.jobs, sched.placements, 2))
    print()

    print("== deleting bravo (a reallocation may rebalance machines) ==")
    cost = sched.delete("bravo")
    print(f"delete bravo -> moved {cost.reallocation_cost}, "
          f"migrated {cost.migration_cost} (Theorem 1: at most 1)")

    print()
    print("== a burst of tight jobs forces bounded cascades ==")
    for i in range(4):
        job = Job(f"tight{i}", Window(0, 4))
        cost = sched.insert(job)
        print(f"insert {job.id} -> moved {cost.reallocation_cost} jobs")

    print()
    print(format_schedule(sched.jobs, sched.placements, 2))
    print()
    summary = sched.ledger.summary()
    print("cost ledger:", summary)
    print(f"max reallocations in any single request: {summary['max_realloc']}")
    print(f"max migrations in any single request:    {summary['max_migration']}")


if __name__ == "__main__":
    main()
