#!/usr/bin/env python
"""A guided tour of the reservation system's internals (Figure 1, live).

Run:  PYTHONPATH=src python examples/reservation_internals.py

Builds a tiny instance by hand and dumps, step by step, the state the
paper's proofs reason about: per-interval reservations (baseline +
dynamic), the fulfilled/waitlisted split, allowances shrinking as
lower-level jobs land, and the event trace showing which mechanism
(RESERVE / MOVE / PLACE / displacement) moved each job.
"""

from repro.core import EventTracer, Job, Window
from repro.core.schedule import format_schedule
from repro.reservation import AlignedReservationScheduler
from repro.sim.breakdown import breakdown_table


def dump_intervals(sched, level=1):
    for idx, iv in sorted(sched.intervals[level].items()):
        target = {f"[{w.release},{w.deadline})": c
                  for w, c in iv.target_fulfilled().items() if c}
        waitlist = {f"[{w.release},{w.deadline})": c
                    for w, c in iv.waitlisted().items() if c}
        dynamic = {f"[{w.release},{w.deadline})": c
                   for w, c in iv.dynamic_res.items()}
        print(f"  interval {idx} [{iv.lo},{iv.hi}): "
              f"allowance={iv.allowance_size()}/{iv.span}")
        print(f"    dynamic reservations: {dynamic or '(baseline only)'}")
        print(f"    fulfilled: {target}")
        if waitlist:
            print(f"    waitlisted: {waitlist}")


def main() -> None:
    tracer = EventTracer()
    sched = AlignedReservationScheduler(tracer=tracer)

    print("== step 1: a level-1 job (span 64 > L1 = 32) ==")
    sched.insert(Job("levl1", Window(0, 64)))
    print(f"placed at slot {sched.placements['levl1'].slot}")
    print("its window holds 2 dynamic reservations (Invariant 5: 2x + 2^k"
          " = 2*1 + 2 = 4 total, incl. the 2 baselines):")
    dump_intervals(sched)

    print("\n== step 2: peers plus a wider window (4 intervals) ==")
    for i in range(3):
        sched.insert(Job(f"peer{i}", Window(0, 64)))
    sched.insert(Job("wide", Window(0, 128)))
    dump_intervals(sched)
    print("note 'wide' [0,128): its 2 dynamic reservations sit in the two")
    print("LEFTMOST of its four intervals — the Invariant 5 round-robin.")

    print("\n== step 3: base-level jobs steal slots (pecking order) ==")
    target_block = (sched.placements["levl1"].slot // 8) * 8
    costs = []
    for i in range(8):
        cost = sched.insert(Job(f"tiny{i}", Window(target_block, target_block + 8)))
        costs.append(cost.reallocation_cost)
    print(f"eight span-8 jobs filled [{target_block},{target_block + 8});"
          f" per-insert costs: {costs}")
    print("the level-1 allowance shrank accordingly:")
    dump_intervals(sched)

    print("\n== final schedule ==")
    print(format_schedule(sched.jobs, sched.placements, 1, lo=0, hi=64))

    print("\n== mechanism attribution (why each move happened) ==")
    print(breakdown_table(tracer))

    print("\n== cost ledger ==")
    print(sched.ledger.summary())


if __name__ == "__main__":
    main()
