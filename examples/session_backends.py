#!/usr/bin/env python
"""The unified execution API: one Session, pluggable drive backends.

Run:  PYTHONPATH=src python examples/session_backends.py

Every execution surface in this repo (the classic driver, the batch
engine, sweeps, benchmarks) drives requests through ONE loop:
``Session.run()`` with an ``ExecutionPlan``. This example runs the same
3-machine churn workload through all three drive backends — sequential
(per-request), batched (apply_batch bursts), and sharded (per-machine
shard workers consuming the delegation layer's machine sub-batches) —
and shows that they produce bit-identical schedules, demonstrates a
resumable traced run (kill after N requests, resume from the trace),
and finishes with the process-resident worker flavor: each machine's
sub-scheduler living in a worker process across bursts, with state
synced back when the session ends.
"""

import tempfile
from pathlib import Path

from repro.core.api import ReservationScheduler
from repro.sim import ExecutionPlan, Session, SessionTrace
from repro.workloads.scenarios import churn_storm_sequence

MACHINES = 3
REQUESTS = 4000


def main() -> None:
    seq = churn_storm_sequence(requests=REQUESTS, seed=0,
                               num_machines=MACHINES)

    print(f"== one workload ({REQUESTS} requests, m={MACHINES}), "
          "three drive backends ==")
    plans = {
        "sequential": ExecutionPlan(backend="sequential"),
        "batched":    ExecutionPlan(backend="batched", batch_size=64,
                                    atomic_batches=True),
        "sharded":    ExecutionPlan(backend="sharded", batch_size=64),
    }
    schedulers = {}
    for label, plan in plans.items():
        sched = ReservationScheduler(MACHINES, gamma=8)
        result = Session(sched, seq, plan).run()
        schedulers[label] = sched
        print(f"  {label:<10} {result.requests_per_second:8.0f} req/s "
              f"(sched {result.scheduler_time_s:.2f}s, "
              f"verify {result.verify_time_s:.2f}s)")

    base = schedulers["sequential"]
    for label, sched in schedulers.items():
        assert dict(sched.placements) == dict(base.placements)
        assert sched.ledger.entries == base.ledger.entries
    print("  -> identical placements and ledgers across all backends\n")

    print("== resumable traced run: stop after 1500 requests, resume ==")
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "run.jsonl"
        partial = Session(
            ReservationScheduler(MACHINES, gamma=8), seq,
            ExecutionPlan(backend="sharded", batch_size=64,
                          checkpoint_every=500,
                          trace_path=trace, stop_after=1500),
        ).run()
        print(f"  first session: processed {partial.requests_processed}, "
              f"interrupted={partial.interrupted}")
        resumed = Session(
            ReservationScheduler(MACHINES, gamma=8), seq,
            ExecutionPlan(backend="sharded", batch_size=64,
                          checkpoint_every=500,
                          trace_path=trace, resume=True),
        ).run()
        print(f"  resumed from {resumed.resumed_from}, "
              f"processed {resumed.requests_processed} total")
        final = SessionTrace.final_record(SessionTrace.read_records(trace))
        print(f"  trace final record: processed={final['processed']}, "
              f"placements fingerprint {final['placements']}")
        assert resumed.ledger.entries == base.ledger.entries
    print("  -> resumed run matches an uninterrupted one bit for bit\n")

    print("== process-resident shard workers ==")
    # Each machine's sub-scheduler lives in a worker process for the
    # whole session; only per-burst op streams and touched logs cross
    # the pipe. On multicore hardware this is the backend with real
    # parallelism (the others are GIL-bound); results stay bit-identical
    # regardless. The session's finish hook syncs the worker state back,
    # so the scheduler is normal in-memory state afterwards.
    sched = ReservationScheduler(MACHINES, gamma=8)
    result = Session(
        sched, seq,
        ExecutionPlan(backend="sharded", shard_workers="processes",
                      batch_size=64),
    ).run()
    print(f"  processes  {result.requests_per_second:8.0f} req/s "
          f"(sched {result.scheduler_time_s:.2f}s)")
    assert dict(sched.placements) == dict(base.placements)
    assert sched.ledger.entries == base.ledger.entries
    assert sched.delegator._shard_pool is None  # released at session end
    print("  -> identical to every in-memory backend; workers released")


if __name__ == "__main__":
    main()
