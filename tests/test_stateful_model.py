"""Model-based stateful testing of the reservation scheduler.

Hypothesis drives random insert/delete sequences (kept within the
gamma=8 density budget via the laminar load tree, so the scheduler's
precondition always holds) against the full invariant validator and the
feasibility verifier after every step. Any reachable bookkeeping drift
or feasibility violation shows up as a minimized failing command
sequence.

A second machine does the same for the deamortized wrapper (budget
gamma=16, spans >= 2), and a third for the multi-machine facade.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.core import Job, Window, verify_schedule
from repro.core.api import ReservationScheduler
from repro.feasibility import LaminarLoadTree
from repro.reservation import (
    AlignedReservationScheduler,
    DeamortizedReservationScheduler,
    validate_scheduler,
)

HORIZON = 1 << 10


class ReservationMachine(RuleBasedStateMachine):
    """Aligned single-machine scheduler under gamma=8 budgeted churn."""

    GAMMA = 8
    MIN_LOG_SPAN = 0

    def __init__(self):
        super().__init__()
        self.sched = self.make_scheduler()
        self.tree = LaminarLoadTree(HORIZON)
        self.active: list[str] = []
        self.uid = 0

    def make_scheduler(self):
        return AlignedReservationScheduler()

    def check(self):
        validate_scheduler(self.sched)

    @rule(log_span=st.integers(0, 10), pos=st.integers(0, HORIZON))
    def insert(self, log_span, pos):
        log_span = max(log_span, self.MIN_LOG_SPAN)
        span = 1 << log_span
        start = (pos % max(1, HORIZON // span)) * span
        w = Window(start, start + span)
        if not self.tree.would_fit(w, 1, self.GAMMA):
            return  # stay within the scheduler's precondition
        job_id = f"j{self.uid}"
        self.uid += 1
        self.tree.add(job_id, w)
        self.active.append(job_id)
        self.sched.insert(Job(job_id, w))

    @precondition(lambda self: self.active)
    @rule(idx=st.integers(0, 10**6))
    def delete(self, idx):
        job_id = self.active.pop(idx % len(self.active))
        self.tree.remove(job_id)
        self.sched.delete(job_id)

    @invariant()
    def schedule_feasible(self):
        verify_schedule(self.sched.jobs, self.sched.placements,
                        self.sched.num_machines)

    @invariant()
    def internals_consistent(self):
        self.check()

    @invariant()
    def costs_bounded(self):
        # log* bound with generous constant: never move more than 16
        # jobs in one request at this scale.
        assert self.sched.ledger.max_reallocation <= 16


class DeamortizedMachine(ReservationMachine):
    """The deamortized wrapper needs 2*gamma slack and spans >= 2."""

    GAMMA = 16
    MIN_LOG_SPAN = 1

    def make_scheduler(self):
        return DeamortizedReservationScheduler(gamma=8)

    def check(self):
        validate_scheduler(self.sched.active)
        if self.sched.incoming is not None:
            validate_scheduler(self.sched.incoming)


class FacadeMachine(ReservationMachine):
    """Full Theorem 1 facade on 2 machines; unaligned-capable."""

    GAMMA = 32  # generous budget: facade stacks alignment + delegation

    def make_scheduler(self):
        return ReservationScheduler(num_machines=2, gamma=8)

    def check(self):
        self.sched.check_balance()

    @invariant()
    def migration_bound(self):
        assert self.sched.ledger.max_migration <= 1


TestReservationStateful = ReservationMachine.TestCase
TestReservationStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)

TestDeamortizedStateful = DeamortizedMachine.TestCase
TestDeamortizedStateful.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None)

TestFacadeStateful = FacadeMachine.TestCase
TestFacadeStateful.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None)
