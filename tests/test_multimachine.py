"""Tests for Section 3 (delegation) and Section 5 (alignment) layers,
plus the full Theorem 1 facade."""

import pytest

from repro.core import Job, Window, verify_schedule
from repro.core.api import ReservationScheduler
from repro.alignment import AligningScheduler, align_job, align_jobs
from repro.multimachine import DelegatingScheduler, WindowBalancer
from repro.reservation import AlignedReservationScheduler
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


class TestWindowBalancer:
    def test_round_robin_insert(self):
        b = WindowBalancer(3)
        w = Window(0, 8)
        machines = []
        for i in range(7):
            m = b.choose_insert_machine(w)
            machines.append(m)
            b.record_insert(i, w, m)
        assert machines == [0, 1, 2, 0, 1, 2, 0]
        b.check_balance()

    def test_delete_plans_migration(self):
        b = WindowBalancer(2)
        w = Window(0, 8)
        for i in range(4):
            b.record_insert(i, w, b.choose_insert_machine(w))
        # jobs 0,2 on machine 0; 1,3 on machine 1. Delete job 0:
        machine, mover = b.plan_delete(0)
        assert machine == 0
        assert mover in (1, 3)  # must come from machine 1 (the donor)
        b.record_delete(0)
        b.record_migration(mover, 0)
        b.check_balance()

    def test_delete_from_donor_no_migration(self):
        b = WindowBalancer(2)
        w = Window(0, 8)
        for i in range(3):
            b.record_insert(i, w, b.choose_insert_machine(w))
        # count=3: donor = 2 % 2 = 0; job 2 is on machine 0.
        machine, mover = b.plan_delete(2)
        assert machine == 0 and mover is None

    def test_balance_violation_detected(self):
        b = WindowBalancer(2)
        w = Window(0, 8)
        b.record_insert("a", w, 1)  # wrong machine on purpose
        b.record_insert("b", w, 1)
        with pytest.raises(AssertionError):
            b.check_balance()

    def test_count_per_window_isolated(self):
        b = WindowBalancer(2)
        b.record_insert("a", Window(0, 8), 0)
        assert b.count(Window(8, 16)) == 0
        assert b.count(Window(0, 8)) == 1


class TestDelegatingScheduler:
    def make(self, m=2):
        return DelegatingScheduler(m, lambda: AlignedReservationScheduler())

    def test_spreads_same_window(self):
        s = self.make(2)
        for i in range(6):
            s.insert(Job(i, Window(0, 8)))
        machines = [s.placements[i].machine for i in range(6)]
        assert machines.count(0) == 3 and machines.count(1) == 3
        verify_schedule(s.jobs, s.placements, 2)
        s.check_balance()

    def test_at_most_one_migration_per_request(self):
        s = self.make(3)
        for i in range(12):
            s.insert(Job(i, Window(0, 16)))
        for i in range(10):
            cost = s.delete(i)
            assert cost.migration_cost <= 1
            verify_schedule(s.jobs, s.placements, 3)
            s.check_balance()

    def test_insert_never_migrates(self):
        s = self.make(2)
        for i in range(8):
            cost = s.insert(Job(i, Window(0, 16)))
            assert cost.migration_cost == 0

    def test_capacity_beyond_single_machine(self):
        # 12 jobs in a span-8 window is infeasible on 1 machine but fine on 2.
        s = self.make(2)
        for i in range(12):
            s.insert(Job(i, Window(0, 8)))
        verify_schedule(s.jobs, s.placements, 2)

    def test_rejects_multi_machine_factory(self):
        with pytest.raises(ValueError):
            DelegatingScheduler(2, lambda: DelegatingScheduler(
                2, lambda: AlignedReservationScheduler()))


class TestAlignment:
    def test_align_job(self):
        j = Job("a", Window(1, 8))
        aligned = align_job(j)
        assert aligned.window == Window(4, 8)
        assert aligned.id == "a"

    def test_align_jobs(self):
        jobs = {"a": Job("a", Window(1, 8)), "b": Job("b", Window(0, 4))}
        out = align_jobs(jobs)
        assert out["a"].window.is_aligned and out["b"].window == Window(0, 4)

    def test_aligning_scheduler_transparent(self):
        s = AligningScheduler(lambda: AlignedReservationScheduler())
        s.insert(Job("a", Window(3, 9)))  # span 6, unaligned
        verify_schedule(s.jobs, s.placements, 1)
        assert s.placements["a"].slot in Window(3, 9)
        s.delete("a")
        assert not s.jobs


class TestReservationSchedulerFacade:
    """End-to-end Theorem 1 behaviour."""

    def test_docstring_example(self):
        sched = ReservationScheduler(num_machines=2)
        cost = sched.insert(Job("patient-1", Window(3, 17)))
        assert cost.reallocation_cost == 0
        assert sched.placements["patient-1"].slot in Window(3, 17)

    def test_unaligned_multimachine_churn(self):
        import numpy as np
        rng = np.random.default_rng(0)
        sched = ReservationScheduler(num_machines=2, gamma=8)
        active = []
        horizon = 1 << 12
        for step in range(300):
            if active and rng.random() < 0.35:
                idx = int(rng.integers(len(active)))
                sched.delete(active.pop(idx))
            else:
                span = int(1 << rng.integers(1, 9))
                start = int(rng.integers(0, horizon - span))
                job_id = f"job{step}"
                # generous slack: only insert if well under capacity
                sched.insert(Job(job_id, Window(start, start + span)))
                active.append(job_id)
            verify_schedule(sched.jobs, sched.placements, 2)
            sched.check_balance()
        assert sched.ledger.max_migration <= 1

    def test_costs_bounded_on_underallocated_workload(self):
        cfg = AlignedWorkloadConfig(
            num_requests=400, num_machines=2, gamma=64,
            horizon=1 << 12, max_span=1 << 12, delete_fraction=0.35,
        )
        seq = random_aligned_sequence(cfg, seed=9)
        sched = ReservationScheduler(num_machines=2, gamma=8)
        for req in seq:
            cost = sched.apply(req)
            assert cost.migration_cost <= 1
        verify_schedule(sched.jobs, sched.placements, 2)
        assert sched.ledger.mean_reallocation < 4.0

    def test_no_trim_variant(self):
        sched = ReservationScheduler(num_machines=1, trim=False)
        for i in range(5):
            sched.insert(Job(i, Window(0, 256)))
        verify_schedule(sched.jobs, sched.placements, 1)
