"""Tests for mechanism attribution and rebuild-equivalence validation."""

import pytest

from repro.core import EventTracer, Job, Window
from repro.reservation import AlignedReservationScheduler
from repro.reservation.validation import check_rebuild_equivalence
from repro.sim.breakdown import (
    breakdown_table,
    by_level,
    cascade_depths,
    movement_breakdown,
)
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def traced_run(seed=0, requests=150, horizon=1 << 11):
    tracer = EventTracer()
    sched = AlignedReservationScheduler(tracer=tracer)
    cfg = AlignedWorkloadConfig(
        num_requests=requests, horizon=horizon, max_span=horizon,
        gamma=8, delete_fraction=0.35,
    )
    for req in random_aligned_sequence(cfg, seed=seed):
        sched.apply(req)
    return sched, tracer


class TestMovementBreakdown:
    def test_counts_match_ledger(self):
        sched, tracer = traced_run()
        shares = movement_breakdown(tracer)
        total = sum(s.count for s in shares)
        assert total >= sched.ledger.total_reallocations
        assert abs(sum(s.share for s in shares) - 1.0) < 1e-9 or not shares

    def test_breakdown_table_renders(self):
        sched, tracer = traced_run(seed=3)
        text = breakdown_table(tracer, title="T")
        assert "T" in text
        if sched.ledger.total_reallocations:
            assert "moves" in text

    def test_empty_tracer(self):
        assert "no movements" in breakdown_table(EventTracer())

    def test_by_level(self):
        _sched, tracer = traced_run(seed=5)
        levels = by_level(tracer, actions={"base-cascade", "displace",
                                           "move", "displace-swap"})
        for lv in levels:
            assert 0 <= lv <= 2

    def test_cascade_depths_bounded_by_lemma4(self):
        """Base-level cascades never exceed log2(L_1) = 5 steps."""
        _sched, tracer = traced_run(seed=7, requests=300)
        for depth in cascade_depths(tracer):
            assert depth <= 5

    def test_cascade_depth_detection(self):
        t = EventTracer()
        t.emit("base-cascade", "a", 0)
        t.emit("base-cascade", "b", 0)
        t.emit("base-place", "c", 0)
        t.emit("base-place", "d", 0)
        t.emit("base-cascade", "e", 0)
        assert cascade_depths(t) == [2, 1]


class TestRebuildEquivalence:
    def test_clean_after_churn(self):
        sched, _ = traced_run(seed=11)
        check_rebuild_equivalence(sched)

    def test_clean_across_scales(self):
        for seed in (0, 1, 2):
            sched, _ = traced_run(seed=seed, requests=80, horizon=512)
            check_rebuild_equivalence(sched)

    def test_detects_tampering(self):
        from repro.core import ValidationError
        sched = AlignedReservationScheduler()
        for i in range(4):
            sched.insert(Job(i, Window(0, 64)))
        # sabotage: add a phantom dynamic reservation
        iv = next(iter(sched.intervals[1].values()))
        iv.add_dynamic(Window(0, 64), 1)
        with pytest.raises(ValidationError):
            check_rebuild_equivalence(sched)
