"""Self-tests for the contract linter (``repro lint``).

Each rule family gets known-good and known-bad fixture sources pushed
through :func:`repro.analysis.staticcheck.analyze_source` — the same
code path real files take, with a *virtual* scope so a fixture can
impersonate ``reservation/interval.py`` without touching the tree. The
suite closes with the gate itself: the live ``src/repro`` tree must
lint clean, and the determinism fixes this linter forced stay pinned by
a hash-seed differential run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.staticcheck import (
    DEFAULT_BASELINE,
    DEFAULT_ROOT,
    RULES_VERSION,
    analyze_paths,
    analyze_source,
    check_ratchet,
    load_baseline,
    main,
    registered_rules,
    resolve_rules,
    scope_of,
    write_baseline,
)

CONTRACT_RULES = {
    "journal-coverage", "determinism", "pickle-boundary",
    "rollback-safety", "typing-coverage",
}
HOT_RULES = {
    "hot-closures", "hot-comprehensions", "hot-attr-chains",
    "hot-complexity", "hot-allocations",
}
STATEFLOW_RULES = {"exception-flow", "state-boundary"}
STRICT_RULES = CONTRACT_RULES | STATEFLOW_RULES

RESERVATION = "reservation/fixture.py"


def run(source: str, scope: str = RESERVATION, only: str | None = None):
    """Analyze a fixture; ``only`` restricts to one rule family so a
    fixture exercising e.g. journal-coverage isn't also held to the
    typing-coverage bar."""
    rules = resolve_rules([only]) if only else None
    return analyze_source(textwrap.dedent(source), scope, rules=rules)


def codes(report) -> list[str]:
    return [f.code for f in report.findings]


# ---------------------------------------------------------------------------
# engine: suppressions, skip-file, scoping, registry
# ---------------------------------------------------------------------------

class TestEngine:
    def test_registry_has_all_twelve_families(self):
        assert set(registered_rules()) == STRICT_RULES | HOT_RULES

    def test_hot_rules_are_ratcheted_and_strict_rules_are_not(self):
        registry = registered_rules()
        assert {n for n, r in registry.items() if r.ratcheted} == HOT_RULES

    def test_default_rule_set_excludes_ratcheted(self):
        assert {r.name for r in resolve_rules()} == STRICT_RULES
        assert ({r.name for r in resolve_rules(include_ratcheted=True)}
                == STRICT_RULES | HOT_RULES)

    def test_resolve_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            resolve_rules(["no-such-rule"])

    def test_select_narrows_the_resolved_set(self):
        assert ({r.name for r in resolve_rules(select=["exception-flow"])}
                == {"exception-flow"})
        assert ({r.name for r in
                 resolve_rules(select=["exception-flow", "state-boundary"])}
                == STATEFLOW_RULES)

    def test_select_unknown_name_raises(self):
        with pytest.raises(KeyError):
            resolve_rules(select=["no-such-rule"])

    def test_select_composes_with_ratcheted_resolution(self):
        rules = resolve_rules(include_ratcheted=True,
                              select=["hot-closures", "determinism"])
        assert {r.name for r in rules} == {"hot-closures", "determinism"}

    def test_scope_of_strips_to_repro_package(self):
        p = Path("src/repro/reservation/interval.py")
        assert scope_of(p) == "reservation/interval.py"
        assert scope_of(Path("elsewhere/thing.py")) == "thing.py"

    def test_scoped_rule_skips_other_packages(self):
        bad = """
        def f():
            for x in {1, 2, 3}:
                pass
        """
        # determinism is scoped to the equivalence path...
        assert "DET001" in codes(run(bad, "reservation/x.py"))
        # ...and does not fire elsewhere (alignment/ is not scoped)
        assert "DET001" not in codes(run(bad, "alignment/x.py"))

    def test_named_suppression_and_counting(self):
        src = """
        def f(s: set) -> None:
            for x in s.union(s):  # staticcheck: ignore[determinism]
                pass
        """
        report = run(src)
        assert report.findings == []
        assert report.suppressed == 1

    def test_bare_suppression_silences_all_rules(self):
        src = """
        def f(s: set) -> None:
            for x in s.union(s):  # staticcheck: ignore
                pass
        """
        assert run(src).findings == []

    def test_suppression_for_other_rule_does_not_apply(self):
        src = """
        def f(s: set) -> None:
            for x in s.union(s):  # staticcheck: ignore[journal-coverage]
                pass
        """
        assert "DET001" in codes(run(src))

    def test_skip_file_pragma(self):
        src = """
        # staticcheck: skip-file
        def f(s: set) -> None:
            for x in s.union(s):
                pass
        """
        report = run(src)
        assert report.findings == []
        assert report.files_checked == 1


# ---------------------------------------------------------------------------
# journal-coverage (JRN001)
# ---------------------------------------------------------------------------

class TestJournalCoverage:
    def test_unjournaled_mutation_is_flagged(self):
        src = """
        class Interval:
            def evict(self, window) -> None:
                self.assigned.pop(window, None)
        """
        assert codes(run(src, only="journal-coverage")) == ["JRN001"]

    def test_mutation_with_undo_log_append_passes(self):
        src = """
        class Interval:
            def evict(self, window) -> None:
                self.undo_log.append((0, self, window))
                self.assigned.pop(window, None)
        """
        assert codes(run(src, only="journal-coverage")) == []

    def test_mutation_with_first_touch_helper_passes(self):
        src = """
        class AlignedReservationScheduler:
            def move(self, slot, job) -> None:
                self._jdict(self.slot_job, slot)
                self.slot_job[slot] = job
        """
        assert codes(run(src, only="journal-coverage")) == []

    def test_undo_methods_are_exempt(self):
        src = """
        class Interval:
            def _undo_assign(self, window, slot) -> None:
                self.assigned[window].discard(slot)
        """
        assert codes(run(src, only="journal-coverage")) == []

    def test_mutation_through_alias_is_caught(self):
        src = """
        class Interval:
            def evict(self, window, slot) -> None:
                have = self.assigned.get(window)
                have.discard(slot)
        """
        assert codes(run(src, only="journal-coverage")) == ["JRN001"]

    def test_uncontracted_class_is_ignored(self):
        src = """
        class ScratchBuffer:
            def evict(self, window) -> None:
                self.assigned.pop(window, None)
        """
        assert codes(run(src, only="journal-coverage")) == []

    def test_delegation_placements_need_touch_log(self):
        src = """
        class DelegatingScheduler:
            def _sync(self, job_id, pl) -> None:
                self._placements[job_id] = pl
        """
        report = run(src, "multimachine/fixture.py", only="journal-coverage")
        assert codes(report) == ["JRN001"]

    def test_delegation_placements_with_log_touch_pass(self):
        src = """
        class DelegatingScheduler:
            def _sync(self, job_id, pl) -> None:
                self._log_touch(job_id)
                self._placements[job_id] = pl
        """
        assert codes(run(src, "multimachine/fixture.py", only="journal-coverage")) == []


# ---------------------------------------------------------------------------
# determinism (DET001 / DET002)
# ---------------------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("it", [
        "self.jobs",
        "iv.assigned.get(w, ())",
        "iv.assigned[w]",
        "set(a) | set(b)",
        "a.union(b)",
        "{x for x in y}",
    ])
    def test_set_like_iteration_is_flagged(self, it):
        src = f"""
        def f(self, iv, w, a, b, y) -> None:
            for x in {it}:
                pass
        """
        assert "DET001" in codes(run(src, only="determinism"))

    def test_sorted_wrap_passes(self):
        src = """
        def f(self, iv, w) -> None:
            for x in sorted(iv.assigned.get(w, ())):
                pass
        """
        assert codes(run(src, only="determinism")) == []

    def test_comprehension_iterating_set_is_flagged(self):
        src = """
        def f(self) -> list:
            return [x for x in self.jobs]
        """
        assert "DET001" in codes(run(src, only="determinism"))

    def test_plain_list_iteration_passes(self):
        src = """
        def f(self, items: list) -> None:
            for x in items:
                pass
        """
        assert codes(run(src, only="determinism")) == []

    def test_id_keyed_sort_is_flagged(self):
        src = """
        def f(self, items: list) -> list:
            return sorted(items, key=id)
        """
        assert codes(run(src, only="determinism")) == ["DET002"]

    def test_id_call_in_key_lambda_is_flagged(self):
        src = """
        def f(self, items: list) -> None:
            items.sort(key=lambda x: id(x))
        """
        assert codes(run(src, only="determinism")) == ["DET002"]

    def test_stable_key_passes(self):
        src = """
        def f(self, items: list) -> list:
            return sorted(items, key=str)
        """
        assert codes(run(src, only="determinism")) == []


# ---------------------------------------------------------------------------
# pickle-boundary (PKL001 / PKL002)
# ---------------------------------------------------------------------------

# the PR 4 stale-closure bug shape: hooks captured `self`, the class
# pickled fine, and the restored copy's hooks silently mutated the
# *dead* pre-pickle scheduler
STALE_CLOSURE_FIXTURE = """
class HookedInterval:
    def __init__(self) -> None:
        self.on_assign = lambda w, s: self._record(w, s)
"""


class TestPickleBoundary:
    def test_lambda_on_self_without_getstate_is_flagged(self):
        assert codes(run(STALE_CLOSURE_FIXTURE, only="pickle-boundary")) == ["PKL001"]

    def test_setstate_rebuilding_closures_passes(self):
        src = STALE_CLOSURE_FIXTURE + """
    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.on_assign = lambda w, s: self._record(w, s)
"""
        assert codes(run(src, only="pickle-boundary")) == []

    def test_closure_factory_result_on_self_is_flagged(self):
        src = """
        class Scheduler:
            def __init__(self) -> None:
                self.hook = self._make_hook()

            def _make_hook(self):
                def on_event(w, s):
                    return self
                return on_event
        """
        assert codes(run(src, only="pickle-boundary")) == ["PKL001"]

    def test_resource_on_self_is_flagged(self):
        src = """
        import threading

        class Pool:
            def __init__(self) -> None:
                self._lock = threading.Lock()
        """
        assert codes(run(src, only="pickle-boundary")) == ["PKL002"]

    def test_scope_excludes_worker_infrastructure(self):
        # procworkers itself lives in multimachine/, outside the
        # shipped-state scope: its Locks/Pipes never cross the pipe
        src = """
        import threading

        class Pool:
            def __init__(self) -> None:
                self._lock = threading.Lock()
        """
        assert codes(run(src, "multimachine/procworkers.py", only="pickle-boundary")) == []

    def test_plain_attribute_assignments_pass(self):
        src = """
        class Interval:
            def __init__(self) -> None:
                self.assigned = {}
                self.undo_log = []
        """
        assert codes(run(src, only="pickle-boundary")) == []


# ---------------------------------------------------------------------------
# rollback-safety (RBK001 / RBK002)
# ---------------------------------------------------------------------------

class TestRollbackSafety:
    def test_swallowed_broad_except_on_request_path_is_flagged(self):
        src = """
        def apply_batch(self, batch) -> None:
            try:
                self._run(batch)
            except Exception:
                pass
        """
        assert codes(run(src, only="rollback-safety")) == ["RBK001"]

    def test_bare_except_is_flagged(self):
        src = """
        def _batch_commit(self) -> None:
            try:
                self._run()
            except:
                return
        """
        assert codes(run(src, only="rollback-safety")) == ["RBK001"]

    def test_reraising_handler_passes(self):
        src = """
        def apply_batch(self, batch) -> None:
            try:
                self._run(batch)
            except Exception:
                self._rollback()
                raise
        """
        assert codes(run(src, only="rollback-safety")) == []

    def test_narrow_handler_passes(self):
        src = """
        def apply_batch(self, batch) -> None:
            try:
                self._run(batch)
            except KeyError:
                pass
        """
        assert codes(run(src, only="rollback-safety")) == []

    def test_non_request_path_function_is_not_checked(self):
        src = """
        def _describe_failure(self) -> str:
            try:
                return self._detail()
            except Exception:
                return "?"
        """
        assert codes(run(src, only="rollback-safety")) == []

    def test_unjournaled_mutation_in_mark_scope_is_flagged(self):
        src = """
        def rebalance(self, arena, window) -> None:
            mark = arena.mark()
            self.assigned[window] = set()
        """
        assert codes(run(src, only="rollback-safety")) == ["RBK002"]

    def test_journaled_mutation_in_mark_scope_passes(self):
        src = """
        def rebalance(self, arena, window) -> None:
            mark = arena.mark()
            self.undo_log.append((1, self, window))
            self.assigned[window] = set()
        """
        assert codes(run(src, only="rollback-safety")) == []


# ---------------------------------------------------------------------------
# typing-coverage (TYP001 / TYP002)
# ---------------------------------------------------------------------------

class TestTypingCoverage:
    def test_missing_annotations_are_flagged(self):
        src = """
        def f(a, b):
            return a + b
        """
        report = run(src, "core/fixture.py", only="typing-coverage")
        assert codes(report) == ["TYP001", "TYP002"]
        assert "a, b" in report.findings[0].message

    def test_fully_annotated_passes(self):
        src = """
        def f(a: int, b: int = 0, *rest: int, **kw: int) -> int:
            return a + b
        """
        assert codes(run(src, "core/fixture.py", only="typing-coverage")) == []

    def test_self_and_cls_are_exempt(self):
        src = """
        class C:
            def m(self, x: int) -> int:
                return x

            @classmethod
            def n(cls) -> None:
                pass
        """
        assert codes(run(src, "core/fixture.py", only="typing-coverage")) == []

    def test_unannotated_vararg_is_flagged(self):
        src = """
        def f(*args) -> None:
            pass
        """
        assert codes(run(src, "core/fixture.py", only="typing-coverage")) == ["TYP001"]

    def test_nested_closures_are_not_checked(self):
        src = """
        def outer(x: int) -> None:
            def inner(y):
                return y
        """
        assert codes(run(src, "core/fixture.py", only="typing-coverage")) == []

    def test_untyped_package_is_out_of_scope(self):
        src = """
        def f(a, b):
            return a + b
        """
        assert codes(run(src, "adversaries/fixture.py", only="typing-coverage")) == []


# ---------------------------------------------------------------------------
# exception-flow (EXC001 / EXC002)
# ---------------------------------------------------------------------------
#
# Fixtures are one-file programs: the journal scope seeds from calls
# declared *in the fixture* (``_journal_acquire``/``_batch_begin``/
# ``.mark()``), and raise-paths propagate interprocedurally through the
# fixture's own call graph.

class TestExceptionFlow:
    def test_mutation_then_raise_before_ack_is_flagged(self):
        src = """
        class Interval:
            def insert(self, window) -> None:
                self._journal_acquire()
                self.dynamic_res[window] = 1
                self._check(window)
                self._jdict(self.dynamic_res, window)

            def _check(self, window) -> None:
                if window is None:
                    raise ValueError("bad window")
        """
        report = run(src, only="exception-flow")
        assert codes(report) == ["EXC001"]
        assert report.findings[0].context == "Interval.insert"

    def test_ack_before_mutation_passes(self):
        src = """
        class Interval:
            def insert(self, window) -> None:
                self._journal_acquire()
                self._jdict(self.dynamic_res, window)
                self.dynamic_res[window] = 1
                self._check(window)

            def _check(self, window) -> None:
                if window is None:
                    raise ValueError("bad window")
        """
        assert codes(run(src, only="exception-flow")) == []

    def test_code_outside_journal_scope_is_not_checked(self):
        src = """
        class Interval:
            def offline_rebuild(self, window) -> None:
                self.dynamic_res[window] = 1
                self._check(window)

            def _check(self, window) -> None:
                if window is None:
                    raise ValueError("bad window")
        """
        # no function opens a journal/batch scope, so the ordering
        # requirement does not apply (rebuilds journal nothing)
        assert codes(run(src, only="exception-flow")) == []

    def test_direct_raise_after_mutation_is_flagged(self):
        src = """
        class AlignedReservationScheduler:
            def _apply_insert(self, job, level) -> None:
                self._journal_acquire()
                self._job_levels[job] = level
                if level < 0:
                    raise ValueError("negative level")
                self._jdict(self._job_levels, job)
        """
        assert codes(run(src, only="exception-flow")) == ["EXC001"]

    def test_handler_truncating_without_replay_is_flagged(self):
        # the PR 5 journal-carry shape: an except arm that acks/clears
        # the journal while the failed suffix was never replayed
        src = """
        class AlignedReservationScheduler:
            def apply(self, req) -> None:
                try:
                    self._do(req)
                except ValueError:
                    self.undo_log.truncate(0)
        """
        report = run(src, only="exception-flow")
        assert codes(report) == ["EXC002"]
        assert report.findings[0].context == "apply"

    def test_handler_replaying_before_teardown_passes(self):
        src = """
        class AlignedReservationScheduler:
            def apply(self, req) -> None:
                try:
                    self._do(req)
                except ValueError:
                    self._rollback()
                    self.undo_log.truncate(0)
                    raise
        """
        assert codes(run(src, only="exception-flow")) == []


# ---------------------------------------------------------------------------
# state-boundary (SER001 / SER002)
# ---------------------------------------------------------------------------

class TestStateBoundary:
    def test_dropped_field_never_rebuilt_is_flagged(self):
        # the PR 4 stale-closure shape, field-precise: __getstate__
        # drops a hook closure and __setstate__ forgets to rebuild it
        src = """
        class AlignedReservationScheduler:
            def __init__(self, policy) -> None:
                self.policy = policy
                self.on_assign = self._make_hook()

            def _make_hook(self):
                def hook(window, slot):
                    return (window, slot)
                return hook

            def __getstate__(self):
                state = dict(self.__dict__)
                del state["on_assign"]
                return state

            def __setstate__(self, state) -> None:
                self.__dict__.update(state)
        """
        report = run(src, only="state-boundary")
        assert codes(report) == ["SER001"]
        assert report.findings[0].context == (
            "AlignedReservationScheduler.__getstate__")

    def test_dropped_field_rebuilt_directly_passes(self):
        src = """
        class AlignedReservationScheduler:
            def __init__(self, policy) -> None:
                self.policy = policy
                self.on_assign = self._make_hook()

            def _make_hook(self):
                def hook(window, slot):
                    return (window, slot)
                return hook

            def __getstate__(self):
                state = dict(self.__dict__)
                del state["on_assign"]
                return state

            def __setstate__(self, state) -> None:
                self.__dict__.update(state)
                self.on_assign = self._make_hook()
        """
        assert codes(run(src, only="state-boundary")) == []

    def test_dropped_field_rebuilt_transitively_passes(self):
        src = """
        class AlignedReservationScheduler:
            def __init__(self, policy) -> None:
                self.policy = policy
                self.on_assign = self._make_hook()

            def _make_hook(self):
                def hook(window, slot):
                    return (window, slot)
                return hook

            def _rebuild_hooks(self) -> None:
                self.on_assign = self._make_hook()

            def __getstate__(self):
                state = dict(self.__dict__)
                state.pop("on_assign", None)
                return state

            def __setstate__(self, state) -> None:
                self.__dict__.update(state)
                self._rebuild_hooks()
        """
        assert codes(run(src, only="state-boundary")) == []

    def test_coordinator_mutation_without_leaving_process_mode_is_flagged(self):
        src = """
        class DelegatingScheduler:
            def _leave_process_mode(self) -> None:
                self._shard_pool = None

            def rebalance(self, job) -> None:
                self.machines[0].insert(job)
        """
        report = run(src, "multimachine/fixture.py", only="state-boundary")
        assert codes(report) == ["SER002"]

    def test_leaving_process_mode_first_passes(self):
        src = """
        class DelegatingScheduler:
            def _leave_process_mode(self) -> None:
                self._shard_pool = None

            def rebalance(self, job) -> None:
                self._leave_process_mode()
                self.machines[0].insert(job)
        """
        assert codes(
            run(src, "multimachine/fixture.py", only="state-boundary")) == []

    def test_process_mode_rule_is_scoped_to_multimachine(self):
        src = """
        class DelegatingScheduler:
            def _leave_process_mode(self) -> None:
                self._shard_pool = None

            def rebalance(self, job) -> None:
                self.machines[0].insert(job)
        """
        # SER002 models the worker-pool split, which only exists in the
        # delegation layer
        assert "SER002" not in codes(run(src, only="state-boundary"))


# ---------------------------------------------------------------------------
# interprocedural hot-path rules (HOT001-003, CPLX001, ALLOC001)
# ---------------------------------------------------------------------------
#
# Fixtures are one-file programs: hot propagation seeds from entry-point
# names declared *in the fixture* (``insert``/``apply``/...), so each
# fixture carries its own hot caller reaching the code under test.

class TestHotPathRules:
    def test_closure_in_hot_callee_is_flagged(self):
        src = """
        class S:
            def insert(self, job):
                return self._helper(job)

            def _helper(self, job):
                cb = lambda x: x + 1
                return cb(job)
        """
        report = run(src, only="hot-closures")
        assert codes(report) == ["HOT001"]
        assert "[hot via insert]" in report.findings[0].message
        assert report.findings[0].context == "S._helper"

    def test_closure_in_cold_function_passes(self):
        src = """
        class S:
            def summarize(self, job):
                cb = lambda x: x + 1
                return cb(job)
        """
        assert codes(run(src, only="hot-closures")) == []

    def test_closure_in_exempt_undo_helper_passes(self):
        src = """
        class S:
            def insert(self, job):
                return self._undo_move(job)

            def _undo_move(self, job):
                cb = lambda x: x + 1
                return cb(job)
        """
        assert codes(run(src, only="hot-closures")) == []

    def test_comprehension_in_hot_loop_is_flagged(self):
        src = """
        class S:
            def apply(self, reqs):
                for r in reqs:
                    xs = [x + 1 for x in r]
                return xs
        """
        assert codes(run(src, only="hot-comprehensions")) == ["HOT002"]

    def test_comprehension_outside_loop_passes(self):
        src = """
        class S:
            def apply(self, reqs):
                return [x + 1 for x in reqs]
        """
        assert codes(run(src, only="hot-comprehensions")) == []

    def test_attr_chain_in_hot_loop_is_flagged(self):
        src = """
        class S:
            def insert(self, jobs):
                for j in jobs:
                    self.policy.index.add(j)
        """
        report = run(src, only="hot-attr-chains")
        assert codes(report) == ["HOT003"]
        assert "self.policy.index.add" in report.findings[0].message

    def test_attr_chain_bound_to_local_passes(self):
        src = """
        class S:
            def insert(self, jobs):
                add = self.policy.index.add
                for j in jobs:
                    add(j)
        """
        assert codes(run(src, only="hot-attr-chains")) == []

    def test_attr_chain_with_rebound_base_passes(self):
        src = """
        class S:
            def insert(self, jobs):
                for ws in jobs:
                    ws.backed.index.add(ws)
        """
        # `ws` is the loop target: the chain is not loop-invariant
        assert codes(run(src, only="hot-attr-chains")) == []

    def test_journaled_map_scan_is_flagged(self):
        src = """
        class S:
            def insert(self, job):
                for jid in self.placements:
                    if jid == job:
                        return True
                return False
        """
        assert codes(run(src, only="hot-complexity")) == ["CPLX001"]

    def test_journaled_map_scan_via_items_is_flagged(self):
        src = """
        class S:
            def delete(self, job):
                return sorted(self.slot_job.items())
        """
        assert codes(run(src, only="hot-complexity")) == ["CPLX001"]

    def test_unjournaled_map_scan_passes(self):
        src = """
        class S:
            def insert(self, job):
                for jid in self.scratch:
                    pass
        """
        assert codes(run(src, only="hot-complexity")) == []

    def test_allocation_in_innermost_hot_loop_is_flagged(self):
        src = """
        class S:
            def apply(self, reqs):
                for r in reqs:
                    tmp = []
                    tmp.append(r)
        """
        assert codes(run(src, only="hot-allocations")) == ["ALLOC001"]

    def test_allocation_in_outer_loop_passes(self):
        src = """
        class S:
            def apply(self, reqs):
                for r in reqs:
                    tmp = []
                    for x in r:
                        tmp.append(x)
        """
        # the outer loop is not innermost; the inner loop allocates nothing
        assert codes(run(src, only="hot-allocations")) == []

    def test_hot_findings_respect_suppressions(self):
        src = """
        class S:
            def insert(self, jobs):
                for j in jobs:
                    self.policy.index.add(j)  # staticcheck: ignore[hot-attr-chains]
        """
        report = run(src, only="hot-attr-chains")
        assert report.findings == []
        assert report.suppressed == 1

    def test_hotness_propagates_through_delegation(self):
        src = """
        class Outer:
            def apply(self, req):
                return self.inner.handle(req)

        class Inner:
            def handle(self, req):
                cb = lambda: req
                return cb()
        """
        # unknown-receiver call resolves by name to Inner.handle
        assert codes(run(src, only="hot-closures")) == ["HOT001"]


# ---------------------------------------------------------------------------
# ratchet baseline
# ---------------------------------------------------------------------------

HOT_FIXTURE = """
class S:
    def insert(self, jobs):
        for j in jobs:
            self.policy.index.add(j)
"""


def hot_report(source: str = HOT_FIXTURE):
    rules = [r for r in resolve_rules(include_ratcheted=True) if r.ratcheted]
    return analyze_source(textwrap.dedent(source), RESERVATION, rules=rules)


class TestRatchet:
    def test_roundtrip_is_clean(self, tmp_path):
        report = hot_report()
        path = tmp_path / "baseline.json"
        write_baseline(report, path)
        result = check_ratchet(hot_report(), path)
        assert result.ok, result.to_text()

    def test_baseline_payload_shape(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(hot_report(), path)
        payload = load_baseline(path)
        assert payload["rules_version"] == RULES_VERSION
        assert payload["rules"] == sorted(HOT_RULES)
        assert payload["findings"] == {
            "reservation/fixture.py::HOT003::S.insert": 1,
        }

    def test_new_finding_fails(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(hot_report("class S:\n    pass\n"), path)
        result = check_ratchet(hot_report(), path)
        assert not result.ok
        assert result.new == ["reservation/fixture.py::HOT003::S.insert"]
        assert result.stale == []

    def test_fixed_finding_goes_stale_loose(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(hot_report(), path)
        result = check_ratchet(hot_report("class S:\n    pass\n"), path)
        assert not result.ok
        assert result.stale == ["reservation/fixture.py::HOT003::S.insert"]
        assert result.new == []

    def test_counts_track_new_fixed_unchanged(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(hot_report(), path)
        clean = check_ratchet(hot_report(), path)
        assert clean.to_dict()["counts"] == {
            "new": 0, "fixed": 0, "unchanged": 1}
        assert "unchanged=1" in clean.to_text()
        fixed = check_ratchet(hot_report("class S:\n    pass\n"), path)
        assert fixed.to_dict()["counts"] == {
            "new": 0, "fixed": 1, "unchanged": 0}
        assert "fixed=1" in fixed.to_text()
        write_baseline(hot_report("class S:\n    pass\n"), path)
        regressed = check_ratchet(hot_report(), path)
        assert regressed.to_dict()["counts"] == {
            "new": 1, "fixed": 0, "unchanged": 0}
        assert "new=1" in regressed.to_text()

    def test_fingerprints_survive_line_moves(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(hot_report(), path)
        shifted = "# a new leading comment\n\n" + HOT_FIXTURE
        result = check_ratchet(hot_report(shifted), path)
        assert result.ok, result.to_text()

    def test_missing_baseline_is_invalid(self, tmp_path):
        result = check_ratchet(hot_report(), tmp_path / "absent.json")
        assert not result.ok
        assert "no baseline" in result.invalid

    def test_version_mismatch_is_invalid(self, tmp_path):
        path = tmp_path / "baseline.json"
        payload = write_baseline(hot_report(), path)
        payload["rules_version"] = "0.1"
        path.write_text(json.dumps(payload))
        result = check_ratchet(hot_report(), path)
        assert not result.ok
        assert "rules_version" in result.invalid

    def test_rule_set_mismatch_is_invalid(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(hot_report(), path)
        report = analyze_source(
            textwrap.dedent(HOT_FIXTURE), RESERVATION,
            rules=resolve_rules(["hot-closures"]))
        result = check_ratchet(report, path)
        assert not result.ok
        assert "rule" in result.invalid


class TestRatchetCli:
    def fixture_tree(self, tmp_path) -> Path:
        root = tmp_path / "repro" / "reservation"
        root.mkdir(parents=True)
        (root / "mod.py").write_text(textwrap.dedent(HOT_FIXTURE))
        return tmp_path / "repro"

    def test_write_then_ratchet_passes(self, tmp_path, capsys):
        tree = self.fixture_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", "--baseline", str(baseline),
                     str(tree)]) == 0
        assert main(["--ratchet", "--baseline", str(baseline),
                     str(tree)]) == 0
        assert "ratchet ok" in capsys.readouterr().out

    def test_regression_fails_with_new_finding(self, tmp_path, capsys):
        tree = self.fixture_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", "--baseline", str(baseline),
                     str(tree)]) == 0
        (tree / "reservation" / "worse.py").write_text(textwrap.dedent("""
            class T:
                def delete(self, jobs):
                    for j in jobs:
                        self.ledger.log.append(j)
        """))
        assert main(["--ratchet", "--baseline", str(baseline),
                     str(tree)]) == 1
        assert "NEW finding" in capsys.readouterr().out

    def test_burned_down_debt_fails_stale_loose(self, tmp_path, capsys):
        tree = self.fixture_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", "--baseline", str(baseline),
                     str(tree)]) == 0
        (tree / "reservation" / "mod.py").write_text("class S:\n    pass\n")
        assert main(["--ratchet", "--baseline", str(baseline),
                     str(tree)]) == 1
        assert "stale-loose" in capsys.readouterr().out

    def test_ratchet_json_embeds_result(self, tmp_path, capsys):
        tree = self.fixture_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["--write-baseline", "--baseline", str(baseline), str(tree)])
        capsys.readouterr()
        assert main(["--ratchet", "--format", "json",
                     "--baseline", str(baseline), str(tree)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ratchet"]["ok"] is True
        assert payload["ratchet"]["counts"] == {
            "new": 0, "fixed": 0, "unchanged": 1}
        assert payload["summary"]["rules_version"] == RULES_VERSION


# ---------------------------------------------------------------------------
# CLI and report formats
# ---------------------------------------------------------------------------

class TestCli:
    def test_list_rules_exits_zero(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "journal-coverage" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--rules", "bogus"]) == 2

    def test_bad_file_fails_and_reports(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "reservation" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(s: set) -> None:\n    for x in s.union(s):\n        pass\n")
        assert main([str(bad)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_json_format_is_structured(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "reservation" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(s: set) -> None:\n    for x in s.union(s):\n        pass\n")
        main(["--format", "json", str(bad)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        assert payload["summary"]["rules_version"] == RULES_VERSION
        assert payload["summary"]["files_checked"] == 1
        assert payload["findings"][0]["code"] == "DET001"
        assert payload["findings"][0]["rule"] == "determinism"

    def test_list_rules_marks_ratcheted(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "hot-closures" in out and "(ratcheted)" in out

    def test_select_runs_only_named_families(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "reservation" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(s: set) -> None:\n"
                       "    for x in s.union(s):\n        pass\n")
        # the determinism finding fires under its own family...
        assert main(["--select", "determinism", str(bad)]) == 1
        assert "DET001" in capsys.readouterr().out
        # ...and is invisible when an unrelated family is selected
        assert main(["--select", "exception-flow", str(bad)]) == 0
        capsys.readouterr()

    def test_select_unknown_family_exits_two(self, tmp_path, capsys):
        ok = tmp_path / "repro" / "reservation" / "ok.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("X = 1\n")
        assert main(["--select", "bogus", str(ok)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_repro_cli_exposes_lint(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["lint", "--strict"])
        assert args.strict and args.func.__name__ == "cmd_lint"

    def test_repro_cli_lint_forwards_select(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lint", "--select", "exception-flow,state-boundary"])
        assert args.select == "exception-flow,state-boundary"


# ---------------------------------------------------------------------------
# the gate: the live tree lints clean, and the fixes stay fixed
# ---------------------------------------------------------------------------

class TestLiveTree:
    def test_src_tree_is_clean_strict(self):
        report = analyze_paths([DEFAULT_ROOT])
        assert report.files_checked > 50
        assert [str(f) for f in report.findings] == []
        assert report.ok(strict=True)

    def test_src_tree_is_clean_under_stateflow_select(self):
        rules = resolve_rules(select=sorted(STATEFLOW_RULES))
        report = analyze_paths([DEFAULT_ROOT], rules)
        assert [str(f) for f in report.findings] == []

    def test_src_tree_passes_the_hot_path_ratchet(self):
        """The checked-in baseline exactly matches the live tree.

        Fails in both directions: a new hot-path finding (regression)
        and a baseline entry the tree no longer produces (burned-down
        debt that must be locked in with --write-baseline).
        """
        rules = [r for r in resolve_rules(include_ratcheted=True)
                 if r.ratcheted]
        report = analyze_paths([DEFAULT_ROOT], rules)
        result = check_ratchet(report, DEFAULT_BASELINE)
        assert result.ok, result.to_text()

    def test_hash_seed_differential(self, tmp_path):
        """Placements are identical under different PYTHONHASHSEEDs.

        Job ids are strings, so any surviving set-iteration-order
        dependence on the request path (the DET001 findings this PR
        fixed) shows up as divergent placements between these runs.
        """
        script = tmp_path / "fingerprint.py"
        script.write_text(textwrap.dedent("""
            from repro.core.api import ReservationScheduler
            from repro.workloads import (
                AlignedWorkloadConfig, random_aligned_sequence,
            )

            cfg = AlignedWorkloadConfig(num_requests=120, num_machines=2)
            seq = random_aligned_sequence(cfg, seed=7)
            sched = ReservationScheduler(2, gamma=8)
            for req in seq:
                sched.apply(req)
            for jid in sorted(sched.placements, key=str):
                pl = sched.placements[jid]
                print(jid, pl.machine, pl.slot)
        """))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).parent.parent / "src")
        outs = []
        for seed in ("1", "4242"):
            env["PYTHONHASHSEED"] = seed
            proc = subprocess.run(
                [sys.executable, str(script)], env=env,
                capture_output=True, text=True, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1]
