"""Tests for the n*-trimming / rebuild wrapper (Section 4, end)."""

import pytest

from repro.core import Job, Window, verify_schedule
from repro.reservation import TrimmedReservationScheduler, validate_scheduler
from repro.reservation.trimming import trim_aligned
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


class TestTrimAligned:
    def test_noop_below_bound(self):
        assert trim_aligned(Window(0, 16), 64) == Window(0, 16)

    def test_trims_to_power_of_two_prefix(self):
        assert trim_aligned(Window(0, 64), 16) == Window(0, 16)
        assert trim_aligned(Window(64, 128), 16) == Window(64, 80)

    def test_trim_bound_not_power_of_two(self):
        # bound 48 -> largest power of two <= 48 is 32
        assert trim_aligned(Window(0, 64), 48) == Window(0, 32)

    def test_result_always_aligned_and_nested(self):
        for span_log in range(0, 10):
            for bound in (1, 3, 7, 8, 50, 100):
                w = Window(0, 1 << span_log)
                t = trim_aligned(w, bound)
                assert t.is_aligned
                assert w.contains_window(t)
                assert t.span <= bound

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            trim_aligned(Window(1, 3), 4)


class TestTrimmedScheduler:
    def test_params_validated(self):
        with pytest.raises(ValueError):
            TrimmedReservationScheduler(gamma=3)
        with pytest.raises(ValueError):
            TrimmedReservationScheduler(min_n_star=5)

    def test_large_window_gets_trimmed(self):
        s = TrimmedReservationScheduler(gamma=8, min_n_star=4)
        # trim bound = 2 * 8 * 4 = 64
        assert s.trim_span == 64
        s.insert(Job("big", Window(0, 1 << 12)))
        inner_job = s.inner.jobs["big"]
        assert inner_job.window.span <= 64
        # placement is valid for the ORIGINAL window too
        verify_schedule(s.jobs, s.placements, 1)

    def test_doubling_rebuild(self):
        s = TrimmedReservationScheduler(gamma=8, min_n_star=4)
        for i in range(20):
            s.insert(Job(i, Window(0, 1 << 10)))
            verify_schedule(s.jobs, s.placements, 1)
            validate_scheduler(s.inner)
        # n* doubled at least twice: 4 -> 8 -> 16 -> 32
        assert s.n_star >= 32
        assert s.rebuilds >= 2

    def test_halving_rebuild(self):
        s = TrimmedReservationScheduler(gamma=8, min_n_star=4)
        for i in range(40):
            s.insert(Job(i, Window(0, 1 << 10)))
        big_n_star = s.n_star
        for i in range(38):
            s.delete(i)
            verify_schedule(s.jobs, s.placements, 1)
        assert s.n_star < big_n_star

    def test_amortized_cost_constant(self):
        s = TrimmedReservationScheduler(gamma=8, min_n_star=4)
        cfg = AlignedWorkloadConfig(
            num_requests=500, gamma=16, horizon=1 << 12, max_span=1 << 12,
            delete_fraction=0.4,
        )
        # gamma=16 workload gives headroom over the scheduler's gamma=8
        # trimming (trimming can only consume slack).
        seq = random_aligned_sequence(cfg, seed=2)
        for req in seq:
            s.apply(req)
        verify_schedule(s.jobs, s.placements, 1)
        validate_scheduler(s.inner)
        # Amortized reallocations stay constant despite rebuilds.
        assert s.ledger.mean_reallocation < 4.0
        assert s.rebuilds >= 1

    def test_rejects_unaligned(self):
        from repro.core import InvalidRequestError
        s = TrimmedReservationScheduler()
        with pytest.raises(InvalidRequestError):
            s.insert(Job("a", Window(1, 3)))

    def test_trim_preserves_validity_through_resize(self):
        """Windows are re-trimmed against the new bound at every rebuild."""
        s = TrimmedReservationScheduler(gamma=8, min_n_star=4)
        jobs = [Job(i, Window((i % 4) * 4096, (i % 4) * 4096 + 4096))
                for i in range(30)]
        for j in jobs:
            s.insert(j)
            verify_schedule(s.jobs, s.placements, 1)
        # After growth, trim bound is generous; all inner windows respect it.
        for job in s.inner.jobs.values():
            assert job.window.span <= s.trim_span
