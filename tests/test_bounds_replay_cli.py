"""Tests for analysis.bounds, sim.replay, and the CLI."""

import json

import pytest

from repro.analysis.bounds import (
    PAPER_SLACK,
    SlackBudget,
    lemma4_cost_bound,
    lemma11_migration_bound,
    lemma12_reallocation_bound,
    levels_touched,
    observation13_bound,
    theorem1_cost_bound,
)
from repro.cli import main as cli_main
from repro.core import Job, ValidationError, Window
from repro.core.requests import RequestSequence
from repro.reservation import AlignedReservationScheduler
from repro.sim.replay import ExecutionTrace, shrink_failing_prefix
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


class TestBounds:
    def test_theorem1(self):
        assert theorem1_cost_bound(16, 1 << 30) == 3 * 3  # log*(16)=3
        assert theorem1_cost_bound(1 << 20, 16) == 9
        assert theorem1_cost_bound(1, 1) == 3.0  # floor at 1 level

    def test_lemma4(self):
        assert lemma4_cost_bound(1 << 10, 1 << 20) == 11
        assert lemma4_cost_bound(1 << 20, 1 << 10) == 11

    def test_lower_bounds(self):
        assert lemma11_migration_bound(120) == 10
        assert lemma12_reallocation_bound(10, 10) == 81
        assert lemma12_reallocation_bound(10, 0) == 0
        assert observation13_bound(8, 3) == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem1_cost_bound(0, 4)
        with pytest.raises(ValueError):
            lemma12_reallocation_bound(0, 1)

    def test_levels_touched(self):
        assert levels_touched(16) == 0
        assert levels_touched(256) == 1
        assert levels_touched(1 << 12) == 2

    def test_slack_budget(self):
        assert PAPER_SLACK.composed_gamma == 192
        assert PAPER_SLACK.requirement_at("machine") == 8
        assert PAPER_SLACK.requirement_at("aligned") == 48
        assert PAPER_SLACK.requirement_at("input") == 192
        with pytest.raises(ValueError):
            PAPER_SLACK.requirement_at("nope")
        assert SlackBudget(reservation_gamma=2).composed_gamma == 48


class TestReplay:
    def make_seq(self, n=40, seed=0):
        cfg = AlignedWorkloadConfig(num_requests=n, horizon=256, max_span=128,
                                    gamma=8, delete_fraction=0.3)
        return random_aligned_sequence(cfg, seed=seed)

    def test_record_and_replay_identical(self):
        trace = ExecutionTrace.record(AlignedReservationScheduler(),
                                      self.make_seq())
        assert trace.replay_and_diff(lambda: AlignedReservationScheduler()) == []

    def test_replay_detects_divergence(self):
        trace = ExecutionTrace.record(AlignedReservationScheduler(),
                                      self.make_seq())
        # a different scheduler family diverges somewhere
        from repro.baselines import EDFRebuildScheduler
        diverging = trace.replay_and_diff(lambda: EDFRebuildScheduler(1))
        assert diverging  # EDF places differently

    def test_json_roundtrip(self):
        trace = ExecutionTrace.record(AlignedReservationScheduler(),
                                      self.make_seq(20))
        again = ExecutionTrace.from_json(trace.to_json())
        assert again.snapshots == trace.snapshots
        assert json.loads(again.sequence_json) == json.loads(trace.sequence_json)

    def test_final_placements(self):
        seq = self.make_seq(10)
        trace = ExecutionTrace.record(AlignedReservationScheduler(), seq)
        finals = trace.final_placements()
        assert set(finals) == {str(k) for k in seq.final_active_jobs}
        assert ExecutionTrace(sequence_json="[]").final_placements() == {}

    def test_shrink_failing_prefix(self):
        seq = RequestSequence()
        seq.insert("a", 0, 4)
        seq.insert("b", 0, 4)
        seq.insert("c", 0, 4)

        def probe(s):
            if len(s.jobs) >= 2:
                raise ValidationError("synthetic failure at 2 jobs")

        at = shrink_failing_prefix(
            seq, lambda: AlignedReservationScheduler(), probe)
        assert at == 2

    def test_shrink_none_when_clean(self):
        seq = self.make_seq(15)
        from repro.reservation import validate_scheduler
        at = shrink_failing_prefix(
            seq, lambda: AlignedReservationScheduler(),
            lambda s: validate_scheduler(s))
        assert at is None


class TestCLI:
    def test_demo(self, capsys):
        assert cli_main(["demo", "--requests", "40", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1 scheduler" in out
        assert "max_realloc" in out

    def test_compare(self, capsys):
        rc = cli_main(["compare", "--requests", "40",
                       "--schedulers", "reservation,edf"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reservation" in out and "edf" in out

    def test_compare_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            cli_main(["compare", "--schedulers", "bogus"])

    def test_generate_and_replay(self, tmp_path, capsys):
        trace = tmp_path / "wl.json"
        assert cli_main(["generate", "--requests", "30",
                         "--output", str(trace)]) == 0
        assert cli_main(["replay", str(trace),
                         "--scheduler", "reservation"]) == 0
        out = capsys.readouterr().out
        assert "reservation on" in out

    def test_replay_failure_exit_code(self, tmp_path):
        bad = RequestSequence()
        bad.insert("a", 0, 1)
        bad.insert("b", 0, 1)
        trace = tmp_path / "bad.json"
        trace.write_text(bad.to_json())
        assert cli_main(["replay", str(trace), "--scheduler", "edf"]) == 1

    def test_bounds(self, capsys):
        assert cli_main(["bounds", "--n", "1024"]) == 0
        out = capsys.readouterr().out
        assert "192" in out

    def test_generate_stdout(self, capsys):
        assert cli_main(["generate", "--requests", "10"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)
