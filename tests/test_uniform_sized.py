"""Tests for the uniform size-k extension (Section 7, question 1)."""

import pytest

from repro.baselines import UniformSizedReservationScheduler
from repro.core import (
    InvalidRequestError,
    Job,
    UnderallocationError,
    Window,
    verify_schedule,
)


def make(size=4, m=1):
    return UniformSizedReservationScheduler(size, m, gamma=8)


class TestUniformSized:
    def test_params(self):
        with pytest.raises(ValueError):
            UniformSizedReservationScheduler(0)

    def test_basic_placement(self):
        s = make(size=4)
        s.insert(Job("a", Window(0, 64), size=4))
        verify_schedule(s.jobs, s.placements, 1)
        pl = s.placements["a"]
        assert pl.slot % 4 == 0  # aligned-start restriction
        assert 0 <= pl.slot and pl.slot + 4 <= 64

    def test_rejects_wrong_size(self):
        s = make(size=4)
        with pytest.raises(InvalidRequestError):
            s.insert(Job("a", Window(0, 64), size=2))

    def test_too_tight_window(self):
        s = make(size=4)
        # window [3, 6) has span 3 < size... use a span-4 window that
        # straddles a grid boundary: [2, 7) fits a size-4 job at 2 or 3,
        # but no multiple of 4.
        with pytest.raises(UnderallocationError):
            s.insert(Job("a", Window(2, 7), size=4))
        # fresh scheduler (facade may be poisoned after the failure)
        s2 = make(size=4)
        s2.insert(Job("b", Window(2, 12), size=4))  # slot 4 or 8 works
        assert s2.placements["b"].slot in (4, 8)

    def test_many_jobs_no_overlap(self):
        s = make(size=4)
        for i in range(8):
            s.insert(Job(i, Window(0, 256), size=4))
            verify_schedule(s.jobs, s.placements, 1)
        starts = sorted(pl.slot for pl in s.placements.values())
        for a, b in zip(starts, starts[1:]):
            assert b - a >= 4

    def test_churn_costs_bounded(self):
        s = make(size=8)
        horizon = 8 * 1024
        for i in range(24):
            s.insert(Job(i, Window(0, horizon), size=8))
        for i in range(0, 24, 2):
            s.delete(i)
        for i in range(30, 42):
            s.insert(Job(i, Window(1024, horizon), size=8))
        verify_schedule(s.jobs, s.placements, 1)
        # O(log* n) amortized coarse-moves per request (the max includes
        # one n*-rebuild spike from the inner trimming layer).
        assert s.ledger.mean_reallocation <= 3.0
        assert s.ledger.max_reallocation <= len(s.jobs) + 4

    def test_multi_machine_migration_bound(self):
        s = make(size=4, m=2)
        for i in range(16):
            s.insert(Job(i, Window(0, 512), size=4))
        for i in range(12):
            cost = s.delete(i)
            assert cost.migration_cost <= 1
        s.check_balance()
        verify_schedule(s.jobs, s.placements, 2)

    def test_size_one_degenerates_to_unit(self):
        s = make(size=1)
        s.insert(Job("a", Window(0, 16)))
        verify_schedule(s.jobs, s.placements, 1)

    def test_deterministic(self):
        def build():
            s = make(size=4)
            for i in range(10):
                s.insert(Job(i, Window(0, 256), size=4))
            s.delete(3)
            return dict(s.placements)
        assert build() == build()
