"""Error-path and contract tests for the public facade and base class."""

import pytest

from repro.core import (
    InvalidRequestError,
    Job,
    RequestCost,
    Window,
)
from repro.core.api import ReservationScheduler
from repro.core.base import ReallocatingScheduler
from repro.core.requests import DeleteJob, InsertJob


class TestFacadeContracts:
    def test_duplicate_insert_rejected(self):
        s = ReservationScheduler(1)
        s.insert(Job("a", Window(0, 8)))
        with pytest.raises(InvalidRequestError):
            s.insert(Job("a", Window(0, 16)))
        # original job untouched
        assert s.jobs["a"].window == Window(0, 8)

    def test_delete_unknown_rejected(self):
        s = ReservationScheduler(1)
        with pytest.raises(InvalidRequestError):
            s.delete("ghost")

    def test_failed_insert_rolls_back_job_registry(self):
        s = ReservationScheduler(1)
        with pytest.raises(Exception):
            s.insert(Job("bad", Window(0, 4), size=2))  # unit jobs only
        assert "bad" not in s.jobs
        # scheduler still usable
        s.insert(Job("ok", Window(0, 4)))

    def test_apply_dispatch(self):
        s = ReservationScheduler(1)
        c1 = s.apply(InsertJob(Job("a", Window(0, 8))))
        c2 = s.apply(DeleteJob("a"))
        assert isinstance(c1, RequestCost) and isinstance(c2, RequestCost)
        assert c1.kind == "insert" and c2.kind == "delete"
        with pytest.raises(InvalidRequestError):
            s.apply("nonsense")

    def test_cost_metadata(self):
        s = ReservationScheduler(2)
        cost = s.insert(Job("a", Window(0, 8)))
        assert cost.subject == "a"
        assert cost.n_active == 1
        assert cost.max_span == 8

    def test_snapshot_is_copy(self):
        s = ReservationScheduler(1)
        s.insert(Job("a", Window(0, 8)))
        snap = s.snapshot()
        s.delete("a")
        assert "a" in snap and "a" not in s.placements

    def test_num_machines_validated(self):
        with pytest.raises(ValueError):
            ReservationScheduler(0)

    def test_repr(self):
        s = ReservationScheduler(3)
        assert "m=3" in repr(s)

    def test_n_active_property(self):
        s = ReservationScheduler(1)
        assert s.n_active == 0
        s.insert(Job("a", Window(0, 8)))
        assert s.n_active == 1


class TestBaseClassGuards:
    def test_abstract(self):
        with pytest.raises(TypeError):
            ReallocatingScheduler(1)

    def test_ledger_accumulates_across_requests(self):
        s = ReservationScheduler(1)
        for i in range(5):
            s.insert(Job(i, Window(0, 32)))
        for i in range(5):
            s.delete(i)
        assert len(s.ledger) == 10
        kinds = [e.kind for e in s.ledger]
        assert kinds == ["insert"] * 5 + ["delete"] * 5
