"""Tests for the baseline schedulers (EDF, LLF, naive pecking, matching, sized)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import InfeasibleError, Job, Window, verify_schedule
from repro.baselines import (
    EDFRebuildScheduler,
    LLFRebuildScheduler,
    MinChangeMatchingScheduler,
    NaivePeckingScheduler,
    SizedGreedyScheduler,
    edf_schedule,
    llf_schedule,
    sized_first_fit,
)
from repro.feasibility import check_feasible
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def drive(sched, seq, m):
    for req in seq:
        sched.apply(req)
        verify_schedule(sched.jobs, sched.placements, m)


class TestEDF:
    def test_simple(self):
        s = EDFRebuildScheduler(1)
        s.insert(Job("a", Window(0, 2)))
        s.insert(Job("b", Window(0, 2)))
        verify_schedule(s.jobs, s.placements, 1)
        # earliest deadline (both equal) -> id order: a at 0, b at 1
        assert s.placements["a"].slot == 0
        assert s.placements["b"].slot == 1

    def test_infeasible_raises_and_rolls_back(self):
        s = EDFRebuildScheduler(1)
        s.insert(Job("a", Window(0, 1)))
        with pytest.raises(InfeasibleError):
            s.insert(Job("b", Window(0, 1)))
        assert set(s.jobs) == {"a"}

    def test_exactness_matches_checker(self):
        cfg = AlignedWorkloadConfig(num_requests=120, horizon=256,
                                    max_span=128, gamma=2, delete_fraction=0.3)
        seq = random_aligned_sequence(cfg, seed=4)
        s = EDFRebuildScheduler(1)
        drive(s, seq, 1)

    def test_brittleness_cascade(self):
        """A single insert shifts Omega(n) jobs under EDF rebuild."""
        s = EDFRebuildScheduler(1)
        n = 32
        # Jobs j_i with window [i, i+2): EDF packs each at slot i.
        for i in range(n):
            s.insert(Job(f"j{i}", Window(i, i + 2)))
        cost = s.insert(Job("intruder", Window(0, 1)))
        # The intruder takes slot 0, pushing every staircase job right.
        assert cost.reallocation_cost >= n - 1

    def test_multi_machine(self):
        s = EDFRebuildScheduler(3)
        for i in range(9):
            s.insert(Job(i, Window(0, 3)))
        verify_schedule(s.jobs, s.placements, 3)

    def test_empty_schedule(self):
        assert edf_schedule({}, 2) == {}


class TestLLF:
    def test_agrees_with_edf_on_feasibility(self):
        cfg = AlignedWorkloadConfig(num_requests=100, horizon=128,
                                    max_span=64, gamma=2, delete_fraction=0.3)
        seq = random_aligned_sequence(cfg, seed=8)
        s = LLFRebuildScheduler(1)
        drive(s, seq, 1)

    def test_differs_from_edf_in_trace(self):
        jobs = {
            "late": Job("late", Window(2, 8)),
            "early": Job("early", Window(0, 8)),
            "mid": Job("mid", Window(1, 8)),
        }
        e = edf_schedule(jobs, 1)
        l = llf_schedule(jobs, 1)
        verify_schedule(jobs, e, 1)
        verify_schedule(jobs, l, 1)
        # Same feasibility; traces may differ but need not — just check
        # both are complete.
        assert set(e) == set(l) == set(jobs)

    def test_infeasible(self):
        with pytest.raises(InfeasibleError):
            llf_schedule({
                "a": Job("a", Window(0, 1)),
                "b": Job("b", Window(0, 1)),
            }, 1)


class TestNaivePecking:
    def test_basic_cascade(self):
        s = NaivePeckingScheduler()
        s.insert(Job("big", Window(0, 4)))
        s.insert(Job("big2", Window(0, 4)))
        s.insert(Job("small", Window(0, 2)))
        s.insert(Job("small2", Window(0, 2)))
        verify_schedule(s.jobs, s.placements, 1)
        assert {s.placements["small"].slot, s.placements["small2"].slot} == {0, 1}

    def test_cascade_cost_logarithmic(self):
        """Cost <= number of distinct spans on the cascade path (Lemma 4)."""
        s = NaivePeckingScheduler()
        horizon = 1 << 10
        jid = 0
        # One job per span at each scale, all nested at the left edge.
        for log_span in range(10, 0, -1):
            span = 1 << log_span
            for _ in range(span // 4):
                s.insert(Job(jid, Window(0, span)))
                jid += 1
        costs = []
        for i in range(4):
            cost = s.insert(Job(f"probe{i}", Window(0, 1 << (i + 1))))
            costs.append(cost.reallocation_cost)
            verify_schedule(s.jobs, s.placements, 1)
        assert max(costs) <= 11  # log2(horizon) + 1

    def test_delete_is_free(self):
        s = NaivePeckingScheduler()
        s.insert(Job("a", Window(0, 4)))
        s.insert(Job("b", Window(0, 4)))
        cost = s.delete("a")
        assert cost.reallocation_cost == 0

    def test_infeasible_detected(self):
        s = NaivePeckingScheduler()
        s.insert(Job("a", Window(0, 1)))
        with pytest.raises(InfeasibleError):
            s.insert(Job("b", Window(0, 1)))

    def test_rejects_unaligned(self):
        from repro.core import InvalidRequestError
        s = NaivePeckingScheduler()
        with pytest.raises(InvalidRequestError):
            s.insert(Job("a", Window(1, 3)))

    def test_random_aligned_churn(self):
        cfg = AlignedWorkloadConfig(num_requests=150, horizon=512,
                                    max_span=512, gamma=4, delete_fraction=0.35)
        seq = random_aligned_sequence(cfg, seed=6)
        s = NaivePeckingScheduler()
        drive(s, seq, 1)


class TestMinChangeMatching:
    def test_zero_cost_when_room(self):
        s = MinChangeMatchingScheduler(1)
        s.insert(Job("a", Window(0, 4)))
        cost = s.insert(Job("b", Window(0, 4)))
        assert cost.reallocation_cost == 0

    def test_minimal_moves(self):
        s = MinChangeMatchingScheduler(1)
        s.insert(Job("a", Window(0, 2)))
        s.insert(Job("b", Window(1, 3)))
        # c must take slot 0; if a sat at 0 and b at 1 the optimal chain
        # is a->1, b->2 (2 moves); never more.
        cost = s.insert(Job("c", Window(0, 1)))
        assert cost.reallocation_cost <= 2
        verify_schedule(s.jobs, s.placements, 1)

    def test_minimal_moves_with_slack(self):
        s = MinChangeMatchingScheduler(1)
        s.insert(Job("a", Window(0, 4)))
        s.insert(Job("b", Window(0, 4)))
        # With slack, displacing at most the slot-0 occupant suffices.
        cost = s.insert(Job("c", Window(0, 1)))
        assert cost.reallocation_cost <= 1
        verify_schedule(s.jobs, s.placements, 1)

    def test_staircase_intruder_moves_everything(self):
        """Even the optimal scheduler pays Omega(n) on the Lemma 12 pattern."""
        s = MinChangeMatchingScheduler(1)
        n = 10
        for i in range(n):
            s.insert(Job(f"j{i}", Window(i, i + 2)))
        c1 = s.insert(Job("front", Window(0, 1)))
        verify_schedule(s.jobs, s.placements, 1)
        s.delete("front")
        c2 = s.insert(Job("back", Window(n, n + 1)))
        verify_schedule(s.jobs, s.placements, 1)
        # one of the two toggles forces a full shift
        assert max(c1.reallocation_cost, c2.reallocation_cost) >= n - 1

    def test_migration_penalty_prefers_same_machine(self):
        s = MinChangeMatchingScheduler(2)
        for i in range(4):
            s.insert(Job(i, Window(0, 4)))
        cost = s.insert(Job("x", Window(0, 4)))
        assert cost.migration_cost == 0

    def test_infeasible(self):
        s = MinChangeMatchingScheduler(1)
        s.insert(Job("a", Window(0, 1)))
        with pytest.raises(InfeasibleError):
            s.insert(Job("b", Window(0, 1)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_never_beaten_by_reservation_per_request(self, seed):
        """Matching's per-request cost is a local lower bound."""
        cfg = AlignedWorkloadConfig(num_requests=40, horizon=128,
                                    max_span=64, gamma=8, delete_fraction=0.3)
        seq = random_aligned_sequence(cfg, seed=seed)
        s = MinChangeMatchingScheduler(1)
        for req in seq:
            s.apply(req)
            verify_schedule(s.jobs, s.placements, 1)


class TestSizedGreedy:
    def test_mixed_sizes(self):
        s = SizedGreedyScheduler(1)
        s.insert(Job("big", Window(0, 8), size=4))
        s.insert(Job("u1", Window(0, 8)))
        s.insert(Job("u2", Window(0, 8)))
        verify_schedule(s.jobs, s.placements, 1)

    def test_first_fit_order(self):
        placements = sized_first_fit({
            "tight": Job("tight", Window(0, 2), size=2),
            "loose": Job("loose", Window(0, 8)),
        }, 1)
        assert placements["tight"].slot == 0
        assert placements["loose"].slot >= 2

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleError):
            sized_first_fit({
                "a": Job("a", Window(0, 2), size=2),
                "b": Job("b", Window(0, 2), size=2),
            }, 1)

    def test_observation13_shape(self):
        """One size-k job toggling across a window of unit jobs."""
        k = 4
        m_horizon = 2 * 2 * k  # 2*gamma*k with gamma=2
        s = SizedGreedyScheduler(1)
        for i in range(k):
            s.insert(Job(f"u{i}", Window(0, m_horizon)))
        s.insert(Job("big", Window(0, k), size=k))
        verify_schedule(s.jobs, s.placements, 1)
        c_del = s.delete("big")
        c_ins = s.insert(Job("big2", Window(k, 2 * k), size=k))
        verify_schedule(s.jobs, s.placements, 1)
        # relocating the big job forces unit jobs out of its way; the
        # cost may land on the delete-rebuild or the insert-rebuild.
        assert c_del.reallocation_cost + c_ins.reallocation_cost >= 1
