"""Tests for the interprocedural call-graph engine (``callgraph.py``).

Unit tests drive :func:`build_program` over small fixture programs;
the suite closes with the *soundness differential*: a real engine
scenario runs under ``sys.setprofile`` and every observed runtime call
edge between ``src/repro`` functions must be accepted by the static
graph's :meth:`Program.has_edge` — the static analysis may overtag,
but it must never miss a hot call path the interpreter actually takes.
"""

from __future__ import annotations

import os
import sys
import textwrap
from pathlib import Path

import repro
from repro.analysis.staticcheck import SourceFile, build_program, scope_of
from repro.analysis.staticcheck.callgraph import module_name_of

SRC_ROOT = Path(repro.__file__).resolve().parent


def program_of(*files: tuple[str, str]):
    """Build a Program from (scope, source) pairs."""
    sfs = [SourceFile(textwrap.dedent(src), scope, scope)
           for scope, src in files]
    return build_program(sfs)


# ---------------------------------------------------------------------------
# call-edge resolution
# ---------------------------------------------------------------------------

class TestEdges:
    def test_self_method_edge(self):
        p = program_of(("core/m.py", """
        class S:
            def apply(self, r):
                return self._helper(r)

            def _helper(self, r):
                return r
        """))
        assert p.has_edge("core/m.py::S.apply", "core/m.py::S._helper")

    def test_virtual_dispatch_reaches_subclass_override(self):
        p = program_of(("core/m.py", """
        class Base:
            def apply(self, r):
                return self.handle(r)

            def handle(self, r):
                return r

        class Impl(Base):
            def handle(self, r):
                return r + 1
        """))
        assert p.has_edge("core/m.py::Base.apply", "core/m.py::Base.handle")
        assert p.has_edge("core/m.py::Base.apply", "core/m.py::Impl.handle")

    def test_super_call_resolves_to_base_only(self):
        p = program_of(("core/m.py", """
        class Base:
            def setup(self):
                return 1

        class Impl(Base):
            def setup(self):
                return super().setup() + 1
        """))
        assert p.has_edge("core/m.py::Impl.setup", "core/m.py::Base.setup")

    def test_constructor_edge_covers_init_and_factories(self):
        p = program_of(("core/m.py", """
        from dataclasses import dataclass, field

        def default_table():
            return {}

        @dataclass
        class Row:
            table: dict = field(default_factory=default_table)

            def __post_init__(self):
                pass

        class Plain:
            def __init__(self):
                pass

        def make():
            return Plain(), Row()
        """))
        assert p.has_edge("core/m.py::make", "core/m.py::Plain.__init__")
        assert p.has_edge("core/m.py::make", "core/m.py::Row.__post_init__")
        assert p.has_edge("core/m.py::make", "core/m.py::default_table")

    def test_unknown_receiver_falls_back_by_name(self):
        p = program_of(
            ("core/a.py", """
            class Outer:
                def apply(self, r):
                    return self.inner.refresh(r)
            """),
            ("core/b.py", """
            class Inner:
                def refresh(self, r):
                    return r
            """),
        )
        assert p.has_edge("core/a.py::Outer.apply", "core/b.py::Inner.refresh")

    def test_reference_without_call_is_address_taken(self):
        p = program_of(("core/m.py", """
        class S:
            def apply(self, xs):
                return sorted(xs, key=self._key)

            def _key(self, x):
                return x
        """))
        assert "core/m.py::S._key" in p.address_taken
        assert p.has_edge("core/m.py::S.apply", "core/m.py::S._key")

    def test_dynamic_caller_reaches_address_taken(self):
        p = program_of(("core/m.py", """
        class S:
            def apply(self, cb):
                return cb(1)

            def register(self):
                return self._hook

            def _hook(self, x):
                return x

            def _never_referenced(self):
                return 0
        """))
        apply_ = p.functions["core/m.py::S.apply"]
        assert apply_.makes_dynamic_calls
        assert p.has_edge("core/m.py::S.apply", "core/m.py::S._hook")
        assert not p.has_edge("core/m.py::S.apply",
                              "core/m.py::S._never_referenced")

    def test_generator_and_dunder_edges_are_implicit(self):
        p = program_of(("core/m.py", """
        class S:
            def __len__(self):
                return 0

            def stream(self):
                yield 1

            def unrelated(self):
                return 2
        """))
        assert p.has_edge("core/m.py::S.unrelated", "core/m.py::S.__len__")
        assert p.has_edge("core/m.py::S.unrelated", "core/m.py::S.stream")
        assert not p.has_edge("core/m.py::S.__len__",
                              "core/m.py::S.unrelated")

    def test_property_read_edges_to_getter(self):
        p = program_of(("core/m.py", """
        class S:
            @property
            def load(self):
                return self._load

            def apply(self, other):
                return other.load + 1
        """))
        assert p.has_edge("core/m.py::S.apply", "core/m.py::S.load")


# ---------------------------------------------------------------------------
# hot propagation
# ---------------------------------------------------------------------------

class TestHotPropagation:
    FIXTURE = ("reservation/m.py", """
    class S:
        def insert(self, job):
            return self._place(job)

        def _place(self, job):
            def probe(slot):
                return slot
            return probe(job)

        def report(self):
            return "cold"
    """)

    def test_entry_points_and_callees_are_hot(self):
        p = program_of(self.FIXTURE)
        assert p.functions["reservation/m.py::S.insert"].hot
        assert p.functions["reservation/m.py::S._place"].hot
        assert not p.functions["reservation/m.py::S.report"].hot

    def test_nested_functions_inherit_hotness(self):
        p = program_of(self.FIXTURE)
        assert p.functions["reservation/m.py::S._place.probe"].hot

    def test_hot_path_to_reconstructs_the_chain(self):
        p = program_of(self.FIXTURE)
        path = p.hot_path_to("reservation/m.py::S._place")
        assert path == ["entry:insert", "reservation/m.py::S.insert",
                        "reservation/m.py::S._place"]


# ---------------------------------------------------------------------------
# frame mapping and module imports
# ---------------------------------------------------------------------------

class TestMapping:
    def test_function_at_picks_innermost(self):
        p = program_of(("core/m.py", """
        class S:
            def outer(self):
                x = 1

                def inner(y):
                    return y + x
                return inner(2)
        """))
        inner = p.function_at("core/m.py", 6)
        assert inner is not None and inner.qualname == "S.outer.inner"
        outer = p.function_at("core/m.py", 3)
        assert outer is not None and outer.qualname == "S.outer"
        assert p.function_at("core/m.py", 999) is None

    def test_module_name_of(self):
        assert (module_name_of("reservation/scheduler.py")
                == "repro.reservation.scheduler")
        assert module_name_of("core/__init__.py") == "repro.core"

    def test_live_tree_module_imports_resolve(self):
        files = [SourceFile(f.read_text(), scope_of(f), str(f))
                 for f in sorted(SRC_ROOT.rglob("*.py"))]
        p = build_program(files)
        imports = p.module_imports["repro.reservation.scheduler"]
        assert "repro.reservation.interval" in imports
        assert any(m.startswith("repro.core") for m in imports)


# ---------------------------------------------------------------------------
# the soundness differential: runtime edges vs the static graph
# ---------------------------------------------------------------------------

class TestSoundness:
    def test_profiled_scenario_edges_are_in_static_graph(self):
        from repro.core.api import ReservationScheduler
        from repro.workloads import (
            AlignedWorkloadConfig, random_aligned_sequence,
        )

        files = [SourceFile(f.read_text(), scope_of(f), str(f))
                 for f in sorted(SRC_ROOT.rglob("*.py"))]
        program = build_program(files)
        prefix = str(SRC_ROOT) + os.sep

        def scope_for(frame):
            filename = frame.f_code.co_filename
            if not filename.startswith(prefix):
                return None
            return filename[len(prefix):].replace(os.sep, "/")

        edges: set[tuple[str, str]] = set()

        def profiler(frame, event, arg):
            if event != "call":
                return
            callee_scope = scope_for(frame)
            if callee_scope is None:
                return
            caller = frame.f_back
            # skip synthetic frames (exec'd dataclass code, etc.)
            while (caller is not None
                   and caller.f_code.co_filename.startswith("<")):
                caller = caller.f_back
            if caller is None:
                return
            caller_scope = scope_for(caller)
            if caller_scope is None:
                return  # called from the test or the stdlib
            callee = program.function_at(
                callee_scope, frame.f_code.co_firstlineno)
            caller_fn = program.function_at(caller_scope, caller.f_lineno)
            if callee is None or caller_fn is None:
                return  # module-level frames
            if caller_fn.node_id != callee.node_id:
                edges.add((caller_fn.node_id, callee.node_id))

        cfg = AlignedWorkloadConfig(num_requests=150, num_machines=2)
        seq = random_aligned_sequence(cfg, seed=11)
        sys.setprofile(profiler)
        try:
            sched = ReservationScheduler(2, gamma=8)
            for req in seq:
                sched.apply(req)
        finally:
            sys.setprofile(None)

        assert len(edges) > 50, "scenario too small to be meaningful"
        missing = sorted(
            f"{caller} -> {callee}"
            for caller, callee in edges
            if not program.has_edge(caller, callee)
        )
        assert missing == [], (
            f"{len(missing)} runtime call edge(s) invisible to the static "
            "call graph:\n" + "\n".join(missing)
        )
