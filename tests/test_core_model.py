"""Unit tests for jobs, placements, requests, schedules, and cost accounting."""

import pytest

from repro.core import (
    CostLedger,
    InvalidRequestError,
    Job,
    Placement,
    RequestSequence,
    ValidationError,
    Window,
    diff_placements,
    insert,
    delete,
    verify_schedule,
    is_feasible_schedule,
    machine_loads,
    format_schedule,
)
from repro.core.costs import bucket_max_by_n, merge_ledgers


class TestJob:
    def test_basic(self):
        j = Job("a", Window(0, 4))
        assert j.span == 4 and j.size == 1
        assert j.release == 0 and j.deadline == 4

    def test_size_must_fit(self):
        with pytest.raises(ValueError):
            Job("a", Window(0, 2), size=3)

    def test_size_positive(self):
        with pytest.raises(ValueError):
            Job("a", Window(0, 4), size=0)

    def test_with_window(self):
        j = Job("a", Window(0, 8)).with_window(Window(0, 4))
        assert j.window == Window(0, 4) and j.id == "a"

    def test_admissible_start_unit(self):
        j = Job("a", Window(2, 5))
        assert j.admissible_start(2) and j.admissible_start(4)
        assert not j.admissible_start(1) and not j.admissible_start(5)

    def test_admissible_start_sized(self):
        j = Job("a", Window(0, 10), size=4)
        assert j.admissible_start(0) and j.admissible_start(6)
        assert not j.admissible_start(7)

    def test_placement_validation(self):
        with pytest.raises(ValueError):
            Placement(-1, 0)


class TestRequestSequence:
    def test_build_and_active(self):
        seq = RequestSequence()
        seq.insert("a", 0, 4)
        seq.insert("b", 0, 2)
        seq.delete("a")
        assert len(seq) == 3
        assert set(seq.final_active_jobs) == {"b"}
        assert seq.max_active == 2

    def test_double_insert_rejected(self):
        seq = RequestSequence([insert("a", 0, 4)])
        with pytest.raises(InvalidRequestError):
            seq.insert("a", 0, 8)

    def test_delete_unknown_rejected(self):
        with pytest.raises(InvalidRequestError):
            RequestSequence([delete("ghost")])

    def test_reinsert_after_delete_ok(self):
        seq = RequestSequence()
        seq.insert("a", 0, 4)
        seq.delete("a")
        seq.insert("a", 8, 16)
        assert seq.final_active_jobs["a"].window == Window(8, 16)

    def test_active_after_prefix(self):
        seq = RequestSequence()
        seq.insert("a", 0, 4)
        seq.insert("b", 0, 4)
        seq.delete("a")
        assert set(seq.active_after(0)) == set()
        assert set(seq.active_after(2)) == {"a", "b"}
        assert set(seq.active_after(3)) == {"b"}

    def test_active_sets_stream(self):
        seq = RequestSequence()
        seq.insert("a", 0, 4)
        seq.delete("a")
        sets = list(seq.active_sets())
        assert list(map(set, sets)) == [{"a"}, set()]

    def test_max_span_and_horizon(self):
        seq = RequestSequence()
        seq.insert("a", 0, 4)
        seq.insert("b", 8, 24)
        assert seq.max_span() == 16
        assert seq.time_horizon() == 24

    def test_json_roundtrip(self):
        seq = RequestSequence()
        seq.insert("a", 0, 4, size=2)
        seq.insert("b", 4, 8)
        seq.delete("a")
        again = RequestSequence.from_json(seq.to_json())
        assert len(again) == 3
        assert again.final_active_jobs.keys() == seq.final_active_jobs.keys()
        assert again.final_active_jobs["b"].window == Window(4, 8)


class TestScheduleVerification:
    def jobs(self):
        return {
            "a": Job("a", Window(0, 4)),
            "b": Job("b", Window(0, 2)),
        }

    def test_valid(self):
        placements = {"a": Placement(0, 3), "b": Placement(0, 1)}
        verify_schedule(self.jobs(), placements, 1)

    def test_missing_job(self):
        with pytest.raises(ValidationError, match="without placement"):
            verify_schedule(self.jobs(), {"a": Placement(0, 0)}, 1)

    def test_phantom(self):
        placements = {"a": Placement(0, 0), "b": Placement(0, 1),
                      "c": Placement(0, 2)}
        with pytest.raises(ValidationError, match="unknown jobs"):
            verify_schedule(self.jobs(), placements, 1)

    def test_out_of_window(self):
        placements = {"a": Placement(0, 4), "b": Placement(0, 1)}
        with pytest.raises(ValidationError, match="outside window"):
            verify_schedule(self.jobs(), placements, 1)

    def test_double_booking(self):
        placements = {"a": Placement(0, 1), "b": Placement(0, 1)}
        with pytest.raises(ValidationError, match="double-booked"):
            verify_schedule(self.jobs(), placements, 1)

    def test_bad_machine(self):
        placements = {"a": Placement(1, 0), "b": Placement(0, 1)}
        with pytest.raises(ValidationError, match="machine"):
            verify_schedule(self.jobs(), placements, 1)

    def test_sized_overlap(self):
        jobs = {"big": Job("big", Window(0, 8), size=4),
                "u": Job("u", Window(0, 8))}
        bad = {"big": Placement(0, 0), "u": Placement(0, 2)}
        with pytest.raises(ValidationError, match="double-booked"):
            verify_schedule(jobs, bad, 1)
        good = {"big": Placement(0, 0), "u": Placement(0, 5)}
        verify_schedule(jobs, good, 1)

    def test_boolean_form(self):
        assert is_feasible_schedule(self.jobs(), {"a": Placement(0, 2), "b": Placement(0, 0)}, 1)
        assert not is_feasible_schedule(self.jobs(), {}, 1)

    def test_machine_loads(self):
        jobs = {"a": Job("a", Window(0, 4)), "b": Job("b", Window(0, 8), size=3)}
        placements = {"a": Placement(0, 0), "b": Placement(1, 0)}
        assert machine_loads(jobs, placements, 2) == [1, 3]

    def test_format_schedule_smoke(self):
        text = format_schedule(self.jobs(), {"a": Placement(0, 2), "b": Placement(0, 0)}, 1)
        assert "m0:" in text and "slots" in text
        assert format_schedule({}, {}, 1) == "(empty schedule)"


class TestCostAccounting:
    def test_diff_counts_moves_not_subject(self):
        before = {"a": Placement(0, 0), "b": Placement(0, 1)}
        after = {"a": Placement(0, 2), "b": Placement(0, 1), "new": Placement(0, 3)}
        cost = diff_placements(before, after, kind="insert", subject="new",
                               n_active=3, max_span=8)
        assert cost.rescheduled == {"a"}
        assert cost.migrated == frozenset()
        assert cost.reallocation_cost == 1 and cost.migration_cost == 0

    def test_diff_detects_migration(self):
        before = {"a": Placement(0, 0)}
        after = {"a": Placement(1, 0)}
        cost = diff_placements(before, after, kind="delete", subject="x",
                               n_active=1, max_span=2)
        assert cost.migrated == {"a"}
        assert cost.rescheduled == {"a"}

    def test_deleted_job_not_counted(self):
        before = {"a": Placement(0, 0), "gone": Placement(0, 1)}
        after = {"a": Placement(0, 0)}
        cost = diff_placements(before, after, kind="delete", subject="gone",
                               n_active=2, max_span=2)
        assert cost.reallocation_cost == 0

    def test_ledger_aggregates(self):
        ledger = CostLedger()
        for realloc, migr, n in [(0, 0, 1), (3, 1, 2), (1, 0, 3)]:
            ledger.record(diff_placements(
                {f"j{i}": Placement(0, i) for i in range(realloc)}
                | {f"m{i}": Placement(0, 100 + i) for i in range(migr)},
                {f"j{i}": Placement(0, i + 50) for i in range(realloc)}
                | {f"m{i}": Placement(1, 100 + i) for i in range(migr)},
                kind="insert", subject="s", n_active=n, max_span=4,
            ))
        assert ledger.total_reallocations == 0 + 4 + 1
        assert ledger.total_migrations == 1
        assert ledger.max_reallocation == 4
        assert ledger.mean_migration == pytest.approx(1 / 3)
        assert ledger.percentile_reallocation(100) == 4
        assert ledger.percentile_reallocation(0) == 0
        summary = ledger.summary()
        assert summary["requests"] == 3
        assert summary["max_realloc"] == 4

    def test_ledger_empty(self):
        ledger = CostLedger()
        assert ledger.max_reallocation == 0
        assert ledger.mean_reallocation == 0.0
        assert ledger.percentile_reallocation(50) == 0
        assert ledger.worst_requests() == []

    def test_bucket_max_by_n(self):
        ledger = CostLedger()
        data = [(1, 0), (2, 1), (3, 2), (4, 1), (7, 5), (8, 0)]
        for n, realloc in data:
            before = {f"j{i}": Placement(0, i) for i in range(realloc)}
            after = {f"j{i}": Placement(0, i + 10) for i in range(realloc)}
            ledger.record(diff_placements(before, after, kind="insert",
                                          subject="s", n_active=n, max_span=4))
        buckets = bucket_max_by_n(ledger.entries)
        assert buckets[1] == 0
        assert buckets[2] == 2   # n in [2,4): max(1, 2)
        assert buckets[4] == 5   # n in [4,8): max(1, 5)
        assert buckets[8] == 0

    def test_merge_ledgers(self):
        l1, l2 = CostLedger(), CostLedger()
        c = diff_placements({}, {}, kind="insert", subject="s", n_active=1, max_span=1)
        l1.record(c)
        l2.record(c)
        l2.record(c)
        merged = merge_ledgers([l1, l2])
        assert len(merged) == 3
