"""Tests for the elastic-machines extension (Section 7 open question)."""

import pytest

from repro.core import Job, Window, verify_schedule
from repro.multimachine import ElasticScheduler, balanced_targets
from repro.reservation import AlignedReservationScheduler
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def make(m=2):
    return ElasticScheduler(m, lambda: AlignedReservationScheduler())


class TestBalancedTargets:
    def test_even(self):
        assert balanced_targets(6, 3) == [2, 2, 2]

    def test_extras_leftmost(self):
        assert balanced_targets(7, 3) == [3, 2, 2]
        assert balanced_targets(1, 4) == [1, 0, 0, 0]
        assert balanced_targets(0, 2) == [0, 0]


class TestAddMachine:
    def test_rebalances_single_window(self):
        s = make(2)
        for i in range(6):
            s.insert(Job(i, Window(0, 64)))
        cost = s.add_machine()
        assert s.num_machines == 3
        verify_schedule(s.jobs, s.placements, 3)
        s.check_balance()
        # 6 jobs over 3 machines: new machine gets 2 -> 2 migrations.
        assert cost.migration_cost == 2
        machines = [s.placements[i].machine for i in range(6)]
        assert machines.count(2) == 2

    def test_cost_theta_n_over_m(self):
        """Adding a machine moves ~n/(m+1) jobs — the inherent cost."""
        s = make(4)
        n = 40
        for i in range(n):
            s.insert(Job(i, Window(0, 1024)))
        cost = s.add_machine()
        assert n // 5 - 2 <= cost.migration_cost <= n // 5 + 2

    def test_add_with_many_windows(self):
        s = make(2)
        jid = 0
        for w in (Window(0, 64), Window(64, 128), Window(0, 256)):
            for _ in range(5):
                s.insert(Job(jid, w))
                jid += 1
        s.add_machine()
        verify_schedule(s.jobs, s.placements, 3)
        s.check_balance()

    def test_empty_scheduler(self):
        s = make(2)
        cost = s.add_machine()
        assert cost.reallocation_cost == 0
        assert s.num_machines == 3


class TestRemoveMachine:
    def test_evicted_jobs_reland(self):
        s = make(3)
        for i in range(9):
            s.insert(Job(i, Window(0, 64)))
        cost = s.remove_machine(1)
        assert s.num_machines == 2
        verify_schedule(s.jobs, s.placements, 2)
        s.check_balance()
        # the dropped machine's 3 jobs all migrated
        assert cost.migration_cost >= 3

    def test_remove_then_operate(self):
        s = make(3)
        for i in range(9):
            s.insert(Job(i, Window(0, 128)))
        s.remove_machine(0)
        # normal operations continue correctly afterwards
        s.insert(Job("new", Window(0, 128)))
        s.delete(3)
        verify_schedule(s.jobs, s.placements, 2)
        s.check_balance()
        assert s.ledger.max_migration <= max(
            e.migration_cost for e in s.ledger)

    def test_cannot_remove_last(self):
        s = make(1)
        with pytest.raises(ValueError):
            s.remove_machine(0)

    def test_bad_index(self):
        s = make(2)
        with pytest.raises(ValueError):
            s.remove_machine(5)


class TestElasticChurn:
    def test_mixed_elasticity_and_requests(self):
        s = make(2)
        cfg = AlignedWorkloadConfig(
            num_requests=150, num_machines=2, gamma=16,
            horizon=1 << 10, max_span=1 << 10, delete_fraction=0.3,
        )
        seq = random_aligned_sequence(cfg, seed=7)
        for i, req in enumerate(seq):
            s.apply(req)
            if i == 50:
                s.add_machine()
            elif i == 100:
                s.add_machine()
            elif i == 120:
                s.remove_machine(1)
            verify_schedule(s.jobs, s.placements, s.num_machines)
            s.check_balance()
        assert s.num_machines == 3

    def test_insert_delete_costs_unaffected(self):
        """Elasticity doesn't degrade regular request guarantees."""
        s = make(2)
        for i in range(12):
            s.insert(Job(i, Window(0, 256)))
        s.add_machine()
        regular = []
        for i in range(12, 24):
            regular.append(s.insert(Job(i, Window(0, 256))).migration_cost)
        for i in range(6):
            regular.append(s.delete(i).migration_cost)
        assert max(regular) <= 1  # the Section 3 guarantee still holds
