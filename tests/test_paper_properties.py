"""Property-based tests tying the implementation to the paper's lemmas.

Each test class encodes one formal statement and checks it on generated
instances — these are the reproduction's 'proof by testing' layer.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.alignment import align_jobs
from repro.core import Job, Window
from repro.core.costs import RequestCost
from repro.feasibility import (
    LaminarLoadTree,
    check_feasible,
    check_gamma_underallocated,
    underallocation_factor,
)
from repro.sim.driver import max_cost_series, RunResult
from repro.core.costs import CostLedger, diff_placements
from repro.core.job import Placement


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def laminar_jobs(max_log_span=6, horizon_log=8, max_jobs=40):
    """Aligned jobs within a 2**horizon_log horizon."""
    @st.composite
    def build(draw):
        n = draw(st.integers(0, max_jobs))
        jobs = {}
        for i in range(n):
            log_span = draw(st.integers(0, max_log_span))
            span = 1 << log_span
            idx = draw(st.integers(0, (1 << horizon_log) // span - 1))
            jobs[i] = Job(i, Window(idx * span, (idx + 1) * span))
        return jobs
    return build()


class TestLemma2Density:
    """Lemma 2 and its converse for recursively aligned instances:
    density condition at gamma=1  <=>  feasibility."""

    @settings(max_examples=60, deadline=None)
    @given(laminar_jobs(), st.integers(1, 3))
    def test_density_iff_feasible_laminar(self, jobs, m):
        density_ok = all(
            sum(1 for j in jobs.values() if w.contains_window(j.window))
            <= m * w.span
            for w in {j.window for j in jobs.values()}
            for w in [w]  # windows of the instance suffice for laminar
        )
        # Full density check over all aligned windows via the factor:
        factor = underallocation_factor(jobs.values(), m)
        feasible = check_feasible(jobs, m)
        assert (factor >= 1) == feasible
        if density_ok is False:
            assert not feasible

    @settings(max_examples=40, deadline=None)
    @given(laminar_jobs(max_jobs=25), st.integers(1, 2), st.integers(1, 4))
    def test_coarse_certificate_implies_density(self, jobs, m, gamma):
        if check_gamma_underallocated(jobs, m, gamma):
            assert underallocation_factor(jobs.values(), m) >= gamma


class TestLemma10Alignment:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 200), st.integers(1, 64)),
        min_size=1, max_size=20,
    ), st.integers(1, 2))
    def test_alignment_keeps_quarter_slack(self, specs, m):
        jobs = {i: Job(i, Window(r, r + s)) for i, (r, s) in enumerate(specs)}
        before = underallocation_factor(jobs.values(), m)
        after = underallocation_factor(align_jobs(jobs).values(), m)
        assert after * 4 >= before

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 500), st.integers(1, 300))
    def test_aligned_core_nests(self, release, span):
        w = Window(release, release + span)
        a = w.aligned_within()
        assert w.contains_window(a) and a.is_aligned


class TestLoadTreeMatchesBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(laminar_jobs(max_log_span=4, horizon_log=6, max_jobs=20),
           st.integers(1, 2), st.integers(1, 8))
    def test_would_fit_agrees_with_recount(self, jobs, m, gamma):
        tree = LaminarLoadTree(1 << 6)
        for job_id, job in jobs.items():
            tree.add(job_id, job.window)
        probe = Window(0, 4)
        # brute force the Lemma 2 condition for probe + ancestors
        def brute(w):
            load = sum(1 for j in jobs.values() if w.contains_window(j.window))
            return gamma * (load + 1) <= m * w.span
        expected = all(brute(w) for w in
                       [probe, *probe.aligned_ancestors(1 << 6)])
        assert tree.would_fit(probe, m, gamma) == expected


class TestCostModelProperties:
    def test_max_cost_series(self):
        ledger = CostLedger()
        ledger.record(diff_placements(
            {"a": Placement(0, 0)}, {"a": Placement(0, 1)},
            kind="insert", subject="x", n_active=1, max_span=2))
        r = RunResult("s", ledger, 1, 0.1)
        series = max_cost_series([r])
        assert series == [("s", 1)]

    def test_cost_vs_n_series(self):
        ledger = CostLedger()
        for n in (1, 2, 3):
            ledger.record(diff_placements({}, {}, kind="insert",
                                          subject="x", n_active=n, max_span=2))
        assert ledger.cost_vs_n() == [(1, 0), (2, 0), (3, 0)]

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(st.text(min_size=1, max_size=3),
                           st.tuples(st.integers(0, 3), st.integers(0, 50)),
                           max_size=10))
    def test_diff_is_antisymmetric_in_identity(self, placements):
        pls = {k: Placement(m, s) for k, (m, s) in placements.items()}
        cost = diff_placements(pls, pls, kind="insert", subject="q",
                               n_active=len(pls), max_span=4)
        assert cost.reallocation_cost == 0
        assert cost.migration_cost == 0
