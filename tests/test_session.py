"""The unified execution API: Session, drive backends, traces, resume.

The contract under test (sim/session.py module docstring): one shared
drive loop with pluggable backends, where SequentialBackend,
BatchedBackend, and ShardedBackend produce identical placements, ledger
entries, and max-span tracking on the same sequence; run_sequence /
run_engine / run_sweep are thin adapters over it; traces make runs
resumable via deterministic prefix replay.
"""

from __future__ import annotations

import inspect
import json

import pytest

from repro.core.api import ReservationScheduler
from repro.core.exceptions import InvalidRequestError
from repro.core.job import Job
from repro.core.requests import Batch, DeleteJob, InsertJob, insert, iter_batches
from repro.core.window import Window
from repro.multimachine.delegation import DelegatingScheduler
from repro.reservation import AlignedReservationScheduler
from repro.reservation.scheduler import AlignedReservationScheduler as _ARS
from repro.reservation.trimming import TrimmedReservationScheduler
from repro.sim import run_engine, run_sequence, run_sweep
from repro.sim.session import (
    DEFAULT_FULL_AUDIT_EVERY,
    ExecutionPlan,
    Session,
    SessionTrace,
)
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence
from repro.workloads.scenarios import churn_storm_sequence


def make_workload(num_requests=600, seed=0, machines=1):
    cfg = AlignedWorkloadConfig(
        num_requests=num_requests, num_machines=machines, gamma=8,
        horizon=1 << 11, max_span=1 << 11, delete_fraction=0.35,
    )
    return random_aligned_sequence(cfg, seed=seed)


def assert_equivalent(a, b):
    assert dict(a.placements) == dict(b.placements)
    assert a.ledger.entries == b.ledger.entries
    assert a._max_span_cache == b._max_span_cache
    assert a.jobs == b.jobs


# ----------------------------------------------------------------------
# backend equivalence (the acceptance property)
# ----------------------------------------------------------------------
BACKEND_PLANS = [
    ("sequential", dict(backend="sequential")),
    ("batched", dict(backend="batched", batch_size=32)),
    ("batched-atomic", dict(backend="batched", batch_size=32,
                            atomic_batches=True)),
    ("sharded", dict(backend="sharded", batch_size=32)),
    ("sharded-parallel", dict(backend="sharded", batch_size=32,
                              shard_parallel=True)),
]


@pytest.mark.filterwarnings("ignore::DeprecationWarning")  # sharded-parallel case
@pytest.mark.parametrize("machines", [1, 3])
def test_all_backends_identical_on_theorem1(machines):
    """Sequential, batched, and sharded backends produce identical
    placements, ledger entries, and max-span on the same sequence."""
    for seed in (0, 2):
        seq = make_workload(500, seed=seed, machines=machines)
        reference = None
        for label, kwargs in BACKEND_PLANS:
            sched = ReservationScheduler(machines, gamma=8)
            plan = ExecutionPlan(verify="incremental", **kwargs)
            result = Session(sched, seq, plan).run()
            assert not result.failed, (label, result.failure)
            assert result.requests_processed == len(seq)
            if reference is None:
                reference = sched
            else:
                assert_equivalent(sched, reference)
            sched.check_balance()


def test_sharded_matches_sequential_on_raw_delegating_m3():
    """Exact placement/ledger/max-span equality for sharded vs
    sequential on a bare DelegatingScheduler with m >= 3 (acceptance
    criterion), across batch sizes that cut bursts mid-stream."""
    for seed, batch_size in ((0, 7), (1, 64), (2, 3)):
        seq = make_workload(400, seed=seed, machines=3)
        sequential = DelegatingScheduler(3, AlignedReservationScheduler)
        for r in seq:
            sequential.apply(r)
        sharded = DelegatingScheduler(3, AlignedReservationScheduler)
        for batch in iter_batches(seq, batch_size):
            result = sharded.apply_batch_sharded(batch)
            assert not result.failed, result.failure
            assert result.processed == len(batch)
        assert_equivalent(sharded, sequential)
        sharded.check_balance()


def test_sharded_net_diff_matches_batched():
    seq = list(make_workload(300, seed=5, machines=3))
    batched = DelegatingScheduler(3, AlignedReservationScheduler)
    sharded = DelegatingScheduler(3, AlignedReservationScheduler)
    for r in seq[:200]:
        batched.apply(r)
        sharded.apply(r)
    burst = Batch(seq[200:260])
    rb = batched.apply_batch(burst)
    rs = sharded.apply_batch_sharded(burst)
    assert rs.net.rescheduled == rb.net.rescheduled
    assert rs.net.migrated == rb.net.migrated
    assert rs.net.kind == "batch"
    assert [c for c in rs.costs] == [c for c in rb.costs]


def test_machine_sub_batches_tracks_in_batch_migrations():
    """A delete that migrates a job must route that job's later delete
    to the machine it migrated to (the pre-plan-refactor code read the
    live balancer and would answer with the stale machine)."""
    sched = DelegatingScheduler(2, AlignedReservationScheduler)
    w = Window(0, 64)
    sched.insert(Job("a", w))   # machine 0
    sched.insert(Job("b", w))   # machine 1
    requests = [DeleteJob("a"), DeleteJob("b")]
    # deleting a (m0): donor is machine (2-1)%2=1, so b migrates to m0;
    # the subsequent delete of b must therefore go to machine 0
    plan = sched.machine_sub_batches(Batch(requests))
    assert requests[0] in plan[0]
    assert requests[1] in plan[0]
    result = sched.apply_batch_sharded(Batch(requests))
    assert not result.failed
    assert sched.jobs == {}


def test_sharded_burst_rolls_back_wholesale():
    """Sharded bursts are transactional: a failing request aborts every
    shard and restores the exact pre-burst state; the scheduler stays
    usable and future behavior matches one that never saw the burst."""
    seq = make_workload(400, seed=9, machines=3)
    prefix, inside, after = list(seq)[:200], list(seq)[200:260], list(seq)[260:]
    sched = ReservationScheduler(3, gamma=8)
    for r in prefix:
        sched.apply(r)
    pre_placements = dict(sched.placements)
    pre_jobs = dict(sched.jobs)
    pre_ledger = len(sched.ledger.entries)
    pre_max_span = sched._max_span_cache

    bad = inside + [insert("dup", 0, 64), insert("dup", 0, 64)]
    result = sched.apply_batch_sharded(bad)
    assert result.failed and result.rolled_back
    assert result.processed == 0 and result.net is None
    assert dict(sched.placements) == pre_placements
    assert sched.jobs == pre_jobs
    assert len(sched.ledger.entries) == pre_ledger
    assert sched._max_span_cache == pre_max_span

    reference = ReservationScheduler(3, gamma=8)
    for r in prefix:
        reference.apply(r)
    for r in inside + after:
        sched.apply(r)
        reference.apply(r)
    assert_equivalent(sched, reference)
    sched.check_balance()


def test_sharded_rejects_unsupported_schedulers():
    from repro.baselines import EDFRebuildScheduler

    # no per-machine decomposition at all
    sched = AlignedReservationScheduler()
    with pytest.raises(InvalidRequestError):
        sched.apply_batch_sharded(list(make_workload(8))[:4])
    # delegating, but subs cannot abort an atomic batch context
    delegating = DelegatingScheduler(2, lambda: EDFRebuildScheduler(1))
    assert not delegating.supports_sharded_batches()
    with pytest.raises(InvalidRequestError):
        delegating.apply_batch_sharded(list(make_workload(8))[:4])
    # the session routes it through the normal failure policy: a bad
    # cell fails gracefully (sweeps keep going) or raises on demand
    result = Session(AlignedReservationScheduler(), make_workload(8),
                     ExecutionPlan(backend="sharded", batch_size=4)).run()
    assert result.failed and "sharded" in result.failure
    assert result.requests_processed == 0
    with pytest.raises(InvalidRequestError):
        Session(AlignedReservationScheduler(), make_workload(8),
                ExecutionPlan(backend="sharded", batch_size=4,
                              stop_on_error=True)).run()


def test_sharded_invalid_request_reports_without_mutation():
    sched = DelegatingScheduler(2, AlignedReservationScheduler)
    sched.insert(Job("x", Window(0, 64)))
    result = sched.apply_batch_sharded([insert("x", 0, 64)])
    assert result.failed and result.rolled_back
    assert "InvalidRequestError" in result.failure
    result = sched.apply_batch_sharded([DeleteJob("ghost")])
    assert result.failed and result.rolled_back
    assert sched.jobs.keys() == {"x"}


# ----------------------------------------------------------------------
# the one full-audit default (satellite)
# ----------------------------------------------------------------------
def test_full_audit_default_defined_once_on_the_plan():
    assert ExecutionPlan().full_audit_every == DEFAULT_FULL_AUDIT_EVERY == 1024
    # the adapters no longer carry their own (previously drifted 256 vs
    # 1024) defaults — both defer to the plan
    for fn in (run_sequence, run_engine):
        default = inspect.signature(fn).parameters["full_audit_every"].default
        assert default is None, fn.__name__


# ----------------------------------------------------------------------
# trace + resume (satellite)
# ----------------------------------------------------------------------
def test_resume_round_trip_matches_uninterrupted(tmp_path):
    seq = churn_storm_sequence(requests=2500, seed=3, num_machines=3)
    trace = tmp_path / "run.jsonl"

    full_sched = ReservationScheduler(3, gamma=8)
    full = run_engine(full_sched, seq, batch_size=64, backend="sharded",
                      checkpoint_every=500)

    part_sched = ReservationScheduler(3, gamma=8)
    partial = run_engine(part_sched, seq, batch_size=64, backend="sharded",
                         checkpoint_every=500, trace_path=trace,
                         stop_after=1000)
    assert partial.interrupted and partial.requests_processed < len(seq)
    records = SessionTrace.read_records(trace)
    assert records[0]["type"] == "header"
    assert SessionTrace.final_record(records) is None  # killed mid-run

    res_sched = ReservationScheduler(3, gamma=8)
    resumed = run_engine(res_sched, seq, batch_size=64, backend="sharded",
                         checkpoint_every=500, trace_path=trace, resume=True)
    assert resumed.resumed_from == partial.requests_processed
    assert resumed.requests_processed == len(seq)
    assert not resumed.interrupted
    assert resumed.ledger_summary == full.ledger_summary
    assert_equivalent(res_sched, full_sched)
    final = SessionTrace.final_record(SessionTrace.read_records(trace))
    assert final is not None and final["processed"] == len(seq)


def test_resume_refuses_a_different_sequence(tmp_path):
    trace = tmp_path / "run.jsonl"
    seq_a = make_workload(300, seed=1)
    seq_b = make_workload(300, seed=2)
    run_engine(ReservationScheduler(1, gamma=8), seq_a, batch_size=32,
               checkpoint_every=100, trace_path=trace, stop_after=100)
    with pytest.raises(ValueError, match="fingerprint"):
        run_engine(ReservationScheduler(1, gamma=8), seq_b, batch_size=32,
                   trace_path=trace, resume=True)


def test_resume_restarts_on_burst_boundaries(tmp_path):
    """A recorded offset that is not a multiple of the batch size (the
    trailing partial burst) must floor to the last burst boundary."""
    trace = tmp_path / "run.jsonl"
    seq = make_workload(300, seed=4)
    run_engine(ReservationScheduler(1, gamma=8), seq, batch_size=64,
               checkpoint_every=50, trace_path=trace, stop_after=150)
    records = SessionTrace.read_records(trace)
    assert SessionTrace.resume_offset(records) % 64 == 0
    resumed = run_engine(ReservationScheduler(1, gamma=8), seq,
                         batch_size=64, trace_path=trace, resume=True)
    assert resumed.requests_processed == len(seq)


def test_sweep_resumes_per_cell(tmp_path):
    scenarios = {
        "a": make_workload(240, seed=1),
        "b": make_workload(240, seed=2),
    }
    factories = {"reservation": lambda: ReservationScheduler(1, gamma=8)}
    first = run_sweep(scenarios, factories, batch_size=32,
                      checkpoint_every=64, trace_dir=tmp_path, stop_after=96)
    assert all(r.interrupted for r in first.values())
    second = run_sweep(scenarios, factories, batch_size=32,
                       checkpoint_every=64, trace_dir=tmp_path, resume=True)
    assert all(r.requests_processed == 240 for r in second.values())
    # a third resume reconstructs completed cells from their traces,
    # including the resume offset (throughput must cover only the
    # session that actually ran, not the replayed prefix)
    third = run_sweep(scenarios, factories, batch_size=32,
                      trace_dir=tmp_path, resume=True)
    for key, r in third.items():
        assert r.ledger_summary == second[key].ledger_summary
        assert r.resumed_from == second[key].resumed_from > 0
        assert r.requests_per_second == pytest.approx(
            (r.requests_processed - r.resumed_from) / r.scheduler_time_s)
    reference = run_sweep(scenarios, factories)
    for key, r in second.items():
        assert r.ledger_summary == reference[key].ledger_summary


def test_sweep_survives_an_incompatible_cell(tmp_path):
    """One scheduler that cannot run the chosen backend fails its cells
    gracefully; the rest of the sweep still completes."""
    from repro.baselines import EDFRebuildScheduler

    scenarios = {"a": make_workload(120, seed=1)}
    factories = {
        "reservation": lambda: ReservationScheduler(1, gamma=8),
        "edf": lambda: EDFRebuildScheduler(1),
    }
    results = run_sweep(scenarios, factories, batch_size=32,
                        backend="sharded")
    assert not results[("a", "reservation")].failed
    bad = results[("a", "edf")]
    assert bad.failed and "sharded" in bad.failure
    assert bad.requests_processed == 0


def test_traced_run_accepts_a_one_shot_iterator(tmp_path):
    """Fingerprinting must not exhaust generator-shaped sequences."""
    trace = tmp_path / "run.jsonl"
    requests = list(make_workload(200, seed=0))
    result = run_engine(ReservationScheduler(1, gamma=8), iter(requests),
                        batch_size=32, trace_path=trace)
    assert not result.failed
    assert result.requests_processed == 200


def test_sweep_resume_reruns_stale_cell_traces(tmp_path):
    """A completed cell trace recorded for *different* scenario content
    (e.g. a new --requests) must not be served back as current — the
    cell re-runs from scratch against the new sequence."""
    factories = {"reservation": lambda: ReservationScheduler(1, gamma=8)}
    small = {"a": make_workload(120, seed=1)}
    run_sweep(small, factories, batch_size=32, trace_dir=tmp_path)
    bigger = {"a": make_workload(240, seed=1)}
    redo = run_sweep(bigger, factories, batch_size=32,
                     trace_dir=tmp_path, resume=True)
    assert redo[("a", "reservation")].requests_processed == 240
    # and the fresh trace now resumes cleanly as the bigger sequence
    again = run_sweep(bigger, factories, batch_size=32,
                      trace_dir=tmp_path, resume=True)
    assert again[("a", "reservation")].requests_processed == 240


def test_trace_records_are_json_lines(tmp_path):
    trace = tmp_path / "run.jsonl"
    seq = make_workload(200, seed=0)
    run_sequence_result = run_engine(
        ReservationScheduler(1, gamma=8), seq,
        checkpoint_every=50, trace_path=trace)
    assert not run_sequence_result.failed
    with open(trace) as fh:
        records = [json.loads(line) for line in fh]
    assert records[0]["type"] == "header"
    assert records[0]["fingerprint"]
    kinds = {r["type"] for r in records}
    assert kinds == {"header", "checkpoint", "final"}
    final = records[-1]
    assert final["processed"] == len(seq)
    assert final["ledger"]["requests"] == len(seq)
    assert final["placements"]


# ----------------------------------------------------------------------
# journal diet (satellite): sequential rebuilds skip the undo journal
# ----------------------------------------------------------------------
def test_sequential_rebuild_runs_journal_free(monkeypatch):
    engaged = []
    orig = _ARS._apply_insert

    def spy(self, job):
        engaged.append(self._abatch is None and self._journal_enabled)
        return orig(self, job)

    monkeypatch.setattr(_ARS, "_apply_insert", spy)
    sched = TrimmedReservationScheduler(gamma=8)
    seq = make_workload(400, seed=6)
    for r in seq:
        sched.apply(r)
    assert sched.rebuilds > 0
    # some inserts ran journal-free (rebuild survivors), some journaled
    # (the live per-request path)
    assert not all(engaged) and any(engaged)
    assert sched.inner._journal_enabled  # diet scoped to the rebuild loop


def test_rebuild_journal_diet_is_pure_bookkeeping():
    """The diet changes allocation work only: placements, ledger, and
    trim state stay identical to the journaled oracle."""
    seq = make_workload(600, seed=7)
    diet = TrimmedReservationScheduler(gamma=8)
    oracle = TrimmedReservationScheduler(gamma=8)
    oracle.rebuild_journal_diet = False
    for r in seq:
        diet.apply(r)
        oracle.apply(r)
    assert_equivalent(diet, oracle)
    assert diet.rebuilds == oracle.rebuilds and diet.rebuilds > 0
    assert diet.n_star == oracle.n_star


# ----------------------------------------------------------------------
# session surface
# ----------------------------------------------------------------------
def test_plan_validation():
    with pytest.raises(ValueError):
        ExecutionPlan(verify="sometimes")
    with pytest.raises(ValueError):
        ExecutionPlan(backend="quantum")
    with pytest.raises(ValueError):
        ExecutionPlan(batch_size=0)


def test_auto_backend_resolution():
    seq = make_workload(60, seed=0)
    r1 = Session(ReservationScheduler(1, gamma=8), seq,
                 ExecutionPlan()).run()
    assert r1.backend == "sequential"
    r2 = Session(ReservationScheduler(1, gamma=8), seq,
                 ExecutionPlan(batch_size=16)).run()
    assert r2.backend == "batched"
    assert r1.ledger.entries == r2.ledger.entries


def test_adapters_share_the_session_loop():
    """run_sequence and run_engine are adapters: same sequence, same
    ledger, same processed counts, phase timing split preserved."""
    seq = make_workload(300, seed=8)
    rs = run_sequence(ReservationScheduler(1, gamma=8), seq)
    re_ = run_engine(ReservationScheduler(1, gamma=8), seq)
    assert rs.ledger.summary() == re_.ledger_summary
    assert rs.requests_processed == re_.requests_processed == len(seq)
    assert rs.audit_time_s >= 0 and re_.audit_time_s >= 0
