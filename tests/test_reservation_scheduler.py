"""Integration tests for the aligned single-machine reservation scheduler.

Every scenario validates the complete internal state (all paper
invariants) after every request, plus schedule feasibility.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    EventTracer,
    InfeasibleError,
    Job,
    UnderallocationError,
    Window,
    verify_schedule,
)
from repro.core.requests import InsertJob
from repro.levels import PAPER_POLICY
from repro.reservation import AlignedReservationScheduler, validate_scheduler
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def checked(sched):
    """Validate everything after an operation."""
    validate_scheduler(sched)
    verify_schedule(sched.jobs, sched.placements, 1)


def run_sequence(sched, seq, *, validate_each=True):
    for req in seq:
        sched.apply(req)
        if validate_each:
            checked(sched)


class TestBaseLevelOnly:
    """Spans <= 32: the naive pecking-order base case."""

    def test_single_job(self):
        s = AlignedReservationScheduler()
        s.insert(Job("a", Window(0, 4)))
        checked(s)
        assert s.level_of("a") == 0
        assert s.placements["a"].slot in Window(0, 4)

    def test_fill_window_exactly(self):
        s = AlignedReservationScheduler()
        for i in range(4):
            s.insert(Job(i, Window(0, 4)))
            checked(s)
        slots = {s.placements[i].slot for i in range(4)}
        assert slots == {0, 1, 2, 3}

    def test_overfull_window_infeasible(self):
        s = AlignedReservationScheduler()
        for i in range(4):
            s.insert(Job(i, Window(0, 4)))
        with pytest.raises(InfeasibleError):
            s.insert(Job("x", Window(0, 4)))
        assert s.poisoned

    def test_nested_displacement_cascade(self):
        # A span-1 job forces a cascade through span-2 and span-4 jobs.
        s = AlignedReservationScheduler()
        s.insert(Job("w4a", Window(0, 4)))
        s.insert(Job("w4b", Window(0, 4)))
        s.insert(Job("w2a", Window(0, 2)))
        checked(s)
        # [0,2) is now fully held by level-0 jobs (w2a plus one span-4 job).
        cost = s.insert(Job("w1", Window(0, 1)))
        checked(s)
        assert s.placements["w1"].slot == 0
        # Cascade: w1 evicts the slot-0 job, which evicts a span-4 job.
        assert 1 <= cost.reallocation_cost <= 2

    def test_overnested_detected_infeasible(self):
        # w1 in [0,1) plus two jobs in [0,2) = 3 jobs nested in 2 slots.
        s = AlignedReservationScheduler()
        s.insert(Job("w2a", Window(0, 2)))
        s.insert(Job("w2b", Window(0, 2)))
        with pytest.raises(InfeasibleError):
            s.insert(Job("w1", Window(0, 1)))

    def test_delete_and_reuse(self):
        s = AlignedReservationScheduler()
        for i in range(4):
            s.insert(Job(i, Window(0, 4)))
        s.delete(2)
        checked(s)
        s.insert(Job("new", Window(0, 4)))
        checked(s)
        assert len(s.jobs) == 4

    def test_deterministic(self):
        def build():
            s = AlignedReservationScheduler()
            for i in range(8):
                s.insert(Job(i, Window(0, 16)))
            s.delete(3)
            s.insert(Job("z", Window(8, 16)))
            return dict(s.placements)
        assert build() == build()


class TestLevelOneReservations:
    """Spans 64..256: one reservation level."""

    def test_single_level1_job(self):
        s = AlignedReservationScheduler()
        s.insert(Job("a", Window(0, 64)))
        checked(s)
        assert s.level_of("a") == 1
        # Its window has 2 intervals materialized with assignments.
        assert len(s.intervals[1]) >= 1

    def test_many_jobs_same_window(self):
        s = AlignedReservationScheduler()
        # gamma=8 budget for span 64 on 1 machine: 8 jobs.
        for i in range(8):
            s.insert(Job(i, Window(0, 64)))
            checked(s)
        for i in range(0, 8, 2):
            s.delete(i)
            checked(s)
        for i in range(20, 24):
            s.insert(Job(i, Window(0, 64)))
            checked(s)

    def test_mixed_windows_level1(self):
        s = AlignedReservationScheduler()
        jobs = [
            Job("a64", Window(0, 64)), Job("b64", Window(64, 128)),
            Job("c128", Window(0, 128)), Job("d256", Window(0, 256)),
            Job("e64", Window(128, 192)),
        ]
        for j in jobs:
            s.insert(j)
            checked(s)
        for j in jobs:
            s.delete(j.id)
            checked(s)
        assert not s.jobs

    def test_base_jobs_displace_level1(self):
        s = AlignedReservationScheduler()
        s.insert(Job("big", Window(0, 64)))
        checked(s)
        big_slot = s.placements["big"].slot
        # Fill the aligned span-4 window around big's slot with base jobs;
        # one of them lands on big's slot, displacing it.
        base = (big_slot // 4) * 4
        for i in range(4):
            s.insert(Job(f"small{i}", Window(base, base + 4)))
            checked(s)
        assert s.placements["big"].slot != big_slot
        small_slots = {s.placements[f"small{i}"].slot for i in range(4)}
        assert small_slots == set(range(base, base + 4))

    def test_reservation_contention_moves_are_bounded(self):
        # Two span-64 windows sharing a 256 window, filled to the gamma=8
        # density budget; per-request costs must stay tiny.
        s = AlignedReservationScheduler()
        max_cost = 0
        jid = 0
        for w in (Window(0, 64), Window(64, 128), Window(0, 256)):
            budget = w.span // 8 - (4 if w.span == 256 else 0)
            for _ in range(max(budget, 1)):
                cost = s.insert(Job(jid, w))
                checked(s)
                max_cost = max(max_cost, cost.reallocation_cost)
                jid += 1
        assert max_cost <= 4


class TestLevelTwo:
    def test_level2_job(self):
        s = AlignedReservationScheduler()
        s.insert(Job("huge", Window(0, 1024)))
        checked(s)
        assert s.level_of("huge") == 2

    def test_three_level_stack(self):
        s = AlignedReservationScheduler()
        s.insert(Job("l2", Window(0, 512)))
        s.insert(Job("l1", Window(0, 64)))
        s.insert(Job("l0", Window(0, 8)))
        checked(s)
        assert s.active_levels() == {0: 1, 1: 1, 2: 1}
        # Cross-level displacement: fill the base window where l1/l2 sit
        # (7 more span-8 jobs join l0, saturating [0, 8)).
        for i in range(7):
            s.insert(Job(f"b{i}", Window(0, 8)))
            checked(s)

    def test_cascading_displacement_cost_bounded(self):
        s = AlignedReservationScheduler()
        s.insert(Job("l2", Window(0, 512)))
        s.insert(Job("l1", Window(0, 64)))
        costs = []
        for i in range(7):
            c = s.insert(Job(f"l0_{i}", Window(0, 8)))
            checked(s)
            costs.append(c.reallocation_cost)
        # Each insert displaces at most one job per level above.
        assert max(costs) <= 2 * PAPER_POLICY.num_reservation_levels + 2


class TestInputValidation:
    def test_rejects_unaligned(self):
        s = AlignedReservationScheduler()
        from repro.core import InvalidRequestError
        with pytest.raises(InvalidRequestError):
            s.insert(Job("a", Window(1, 3)))

    def test_rejects_sized(self):
        s = AlignedReservationScheduler()
        from repro.core import InvalidRequestError
        with pytest.raises(InvalidRequestError):
            s.insert(Job("a", Window(0, 4), size=2))

    def test_poisoned_refuses_work(self):
        s = AlignedReservationScheduler()
        for i in range(4):
            s.insert(Job(i, Window(0, 4)))
        with pytest.raises(InfeasibleError):
            s.insert(Job("x", Window(0, 4)))
        with pytest.raises(UnderallocationError):
            s.insert(Job("y", Window(0, 4)))


class TestRandomizedChurn:
    """Random gamma-underallocated churn with full validation."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_small_horizon_churn(self, seed):
        cfg = AlignedWorkloadConfig(
            num_requests=120, gamma=8, horizon=256, max_span=256,
            delete_fraction=0.35,
        )
        seq = random_aligned_sequence(cfg, seed=seed)
        s = AlignedReservationScheduler()
        run_sequence(s, seq)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_two_level_churn(self, seed):
        cfg = AlignedWorkloadConfig(
            num_requests=150, gamma=8, horizon=2048, max_span=2048,
            delete_fraction=0.4,
        )
        seq = random_aligned_sequence(cfg, seed=seed)
        s = AlignedReservationScheduler()
        run_sequence(s, seq)

    def test_insert_only_saturation(self):
        cfg = AlignedWorkloadConfig(
            num_requests=100, gamma=8, horizon=512, max_span=512,
            delete_fraction=0.0,
        )
        seq = random_aligned_sequence(cfg, seed=11)
        s = AlignedReservationScheduler()
        run_sequence(s, seq)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_hypothesis_seeds(self, seed):
        cfg = AlignedWorkloadConfig(
            num_requests=60, gamma=8, horizon=512, max_span=256,
            delete_fraction=0.3,
        )
        seq = random_aligned_sequence(cfg, seed=seed)
        s = AlignedReservationScheduler()
        run_sequence(s, seq)


class TestCostProperties:
    def test_costs_stay_constant_ish(self):
        """The log* bound at this scale means every request costs O(1)."""
        cfg = AlignedWorkloadConfig(
            num_requests=400, gamma=8, horizon=4096, max_span=4096,
            delete_fraction=0.35,
        )
        seq = random_aligned_sequence(cfg, seed=5)
        s = AlignedReservationScheduler()
        run_sequence(s, seq, validate_each=False)
        checked(s)
        # 2 levels above base: each request moves O(1) jobs per level.
        assert s.ledger.max_reallocation <= 12
        assert s.ledger.mean_reallocation < 2.0

    def test_no_migrations_single_machine(self):
        cfg = AlignedWorkloadConfig(num_requests=100, horizon=256, max_span=256)
        seq = random_aligned_sequence(cfg, seed=3)
        s = AlignedReservationScheduler()
        run_sequence(s, seq, validate_each=False)
        assert s.ledger.total_migrations == 0


class TestEventTracing:
    def test_tracer_sees_places(self):
        tracer = EventTracer()
        s = AlignedReservationScheduler(tracer=tracer)
        s.insert(Job("a", Window(0, 64)))
        s.insert(Job("b", Window(0, 4)))
        s.delete("a")
        actions = set(tracer.breakdown())
        assert "place" in actions or "base-place" in actions
        assert "reserve" in actions
        assert "delete" in actions


class TestHistoryIndependence:
    """Observation 7: fulfilled reservation sets are history independent."""

    def fulfilled_map(self, sched):
        out = {}
        for level, table in sched.intervals.items():
            for idx, iv in table.items():
                t = {w: c for w, c in iv.target_fulfilled().items() if c}
                out[(level, idx)] = t
        return out

    def test_same_active_set_same_fulfillment(self):
        jobs = [Job(i, Window(0, 64)) for i in range(4)] + \
               [Job(10 + i, Window(64, 128)) for i in range(4)]
        s1 = AlignedReservationScheduler()
        for j in jobs:
            s1.insert(j)
        s2 = AlignedReservationScheduler()
        # Different history: insert extras then remove them, reverse order.
        extras = [Job(f"x{i}", Window(128, 192)) for i in range(3)]
        for j in extras:
            s2.insert(j)
        for j in reversed(jobs):
            s2.insert(j)
        for j in extras:
            s2.delete(j.id)
        f1, f2 = self.fulfilled_map(s1), self.fulfilled_map(s2)
        shared = set(f1) & set(f2)
        assert shared
        for key in shared:
            assert f1[key] == f2[key]
