"""Tests for the Section 6 lower-bound adversaries."""

import pytest

from repro.adversaries import (
    MigrationAdversaryResult,
    ReallocLowerBound,
    SizedLowerBound,
    run_migration_adversary,
    sized_pump_sequence,
    staircase_toggle_sequence,
)
from repro.baselines import (
    EDFRebuildScheduler,
    MinChangeMatchingScheduler,
    SizedGreedyScheduler,
)
from repro.core import verify_schedule


class TestMigrationAdversary:
    @pytest.mark.parametrize("m", [2, 4])
    def test_forces_migrations_on_edf(self, m):
        sched = EDFRebuildScheduler(m)
        result = run_migration_adversary(sched, rounds=4)
        # Lemma 11: >= m/2 migrations per round.
        assert result.total_migrations >= 4 * (m // 2)
        assert result.requests == 4 * 6 * m

    def test_forces_migrations_on_minchange(self):
        """Even the per-request-optimal scheduler must migrate."""
        sched = MinChangeMatchingScheduler(2)
        result = run_migration_adversary(sched, rounds=3)
        assert result.total_migrations >= 3  # m/2 = 1 per round

    def test_rejects_odd_machines(self):
        with pytest.raises(ValueError):
            run_migration_adversary(EDFRebuildScheduler(3), rounds=1)
        with pytest.raises(ValueError):
            run_migration_adversary(EDFRebuildScheduler(1), rounds=1)

    def test_result_accessors(self):
        r = MigrationAdversaryResult(requests=120, rounds=10,
                                     total_migrations=12, total_reallocations=50)
        assert r.migrations_per_request == pytest.approx(0.1)
        assert r.lower_bound == pytest.approx(10.0)


class TestStaircaseToggle:
    def test_sequence_shape(self):
        seq = staircase_toggle_sequence(5, toggles=4)
        assert len(seq) == 5 + 2 * 4
        # staircase jobs stay active throughout
        assert len(seq.final_active_jobs) == 5

    def test_quadratic_cost_on_edf(self):
        eta = 12
        seq = staircase_toggle_sequence(eta)
        sched = EDFRebuildScheduler(1)
        for req in seq:
            sched.apply(req)
            verify_schedule(sched.jobs, sched.placements, 1)
        bound = ReallocLowerBound(eta, eta)
        assert sched.ledger.total_reallocations >= bound.min_total_reallocations

    def test_quadratic_cost_on_minchange(self):
        """The bound holds for ANY scheduler, including per-request optimal."""
        eta = 8
        seq = staircase_toggle_sequence(eta)
        sched = MinChangeMatchingScheduler(1)
        for req in seq:
            sched.apply(req)
        bound = ReallocLowerBound(eta, eta)
        assert sched.ledger.total_reallocations >= bound.min_total_reallocations

    def test_validation(self):
        with pytest.raises(ValueError):
            staircase_toggle_sequence(0)


class TestSizedPump:
    def test_sequence_valid(self):
        seq = sized_pump_sequence(k=4, gamma=2, sweeps=2)
        sched = SizedGreedyScheduler(1)
        for req in seq:
            sched.apply(req)
            verify_schedule(sched.jobs, sched.placements, 1)

    def test_omega_kn_cost(self):
        k, gamma, sweeps = 4, 2, 3
        seq = sized_pump_sequence(k=k, gamma=gamma, sweeps=sweeps)
        sched = SizedGreedyScheduler(1)
        for req in seq:
            sched.apply(req)
        bound = SizedLowerBound(k, gamma, sweeps)
        assert sched.ledger.total_reallocations >= bound.min_total_reallocations

    def test_cost_scales_with_k(self):
        totals = {}
        for k in (2, 4, 8):
            seq = sized_pump_sequence(k=k, gamma=2, sweeps=2)
            sched = SizedGreedyScheduler(1)
            for req in seq:
                sched.apply(req)
            totals[k] = sched.ledger.total_reallocations
        assert totals[8] > totals[4] > totals[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            sized_pump_sequence(k=1, gamma=2, sweeps=1)
        with pytest.raises(ValueError):
            sized_pump_sequence(k=4, gamma=0, sweeps=1)
