"""Process-resident shard workers: lifecycle, crashes, CLI mapping.

What the tentpole must guarantee (procworkers module docstring):

- process-sharded bursts are bit-identical to sequential execution
  while the per-machine sub-schedulers stay resident in worker
  processes (state never ships per burst);
- a worker process dying mid-burst rolls the WHOLE burst back, leaves
  the scheduler usable and equivalent to one that never saw the burst,
  and re-seeds the worker from its last state snapshot (so the very
  same burst succeeds on retry);
- any in-memory entry point syncs worker state back transparently;
- a traced session survives worker restarts: a crash fails the burst
  through the session's normal failure policy, and a resume continues
  from the last checkpoint to a bit-identical final state.

Plus the CLI satellite: ``--shard-workers {serial,threads,processes}``
with ``--shard-parallel`` as a deprecated alias.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, resolve_shard_workers
from repro.core.api import ReservationScheduler
from repro.core.exceptions import WorkerCrashError
from repro.core.requests import iter_batches
from repro.multimachine.delegation import DelegatingScheduler
from repro.reservation import AlignedReservationScheduler
from repro.sim import run_engine
from repro.sim.session import ExecutionPlan, Session, SessionTrace
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def make_workload(num_requests=600, seed=0, machines=3):
    cfg = AlignedWorkloadConfig(
        num_requests=num_requests, num_machines=machines, gamma=8,
        horizon=1 << 11, max_span=1 << 11, delete_fraction=0.35,
    )
    return list(random_aligned_sequence(cfg, seed=seed))


def assert_equivalent(a, b):
    assert dict(a.placements) == dict(b.placements)
    assert a.ledger.entries == b.ledger.entries
    assert a._max_span_cache == b._max_span_cache
    assert a.jobs == b.jobs


def drive_process_bursts(sched, requests, batch_size=32):
    for burst in iter_batches(requests, batch_size):
        result = sched.apply_batch_sharded(burst, workers="processes")
        assert not result.failed, result.failure


# ----------------------------------------------------------------------
# worker-resident lifecycle
# ----------------------------------------------------------------------
def test_workers_stay_resident_across_bursts():
    """One pool (same worker processes) serves many bursts; the
    in-memory sub-schedulers stay untouched until the sync-back."""
    seq = make_workload(400, seed=0)
    sched = ReservationScheduler(3, gamma=8)
    deleg = sched.delegator
    drive_process_bursts(sched, seq[:64], batch_size=32)
    pool = deleg._shard_pool
    assert pool is not None
    pids = [w.process.pid for w in pool.workers]
    assert all(w.process.is_alive() for w in pool.workers)
    # in-memory subs are stale while the pool is open (state lives in
    # the workers); the merged parent-level map is live
    assert sum(len(s.jobs) for s in deleg.machines) == 0
    assert len(deleg.placements) > 0
    drive_process_bursts(sched, seq[64:128], batch_size=32)
    assert deleg._shard_pool is pool
    assert [w.process.pid for w in pool.workers] == pids
    sched.close_shard_workers()
    assert deleg._shard_pool is None
    # state synced back: in-memory subs now hold the active jobs
    assert sum(len(s.jobs) for s in deleg.machines) == len(sched.jobs)


def test_process_bursts_then_in_memory_use_is_seamless():
    """An in-memory entry point (plain apply) after process bursts
    syncs the worker state back implicitly; the final state matches a
    scheduler that ran everything sequentially."""
    seq = make_workload(500, seed=1)
    reference = ReservationScheduler(3, gamma=8)
    for r in seq:
        reference.apply(r)
    sched = ReservationScheduler(3, gamma=8)
    drive_process_bursts(sched, seq[:256], batch_size=32)
    assert sched.delegator._shard_pool is not None
    for r in seq[256:]:  # plain apply -> implicit sync + pool close
        sched.apply(r)
    assert sched.delegator._shard_pool is None
    assert_equivalent(sched, reference)
    sched.check_balance()


def test_machine_schedulers_sync_back():
    seq = make_workload(200, seed=2)
    sched = ReservationScheduler(3, gamma=8)
    drive_process_bursts(sched, seq, batch_size=32)
    subs = sched.machine_schedulers()  # syncs implicitly
    assert sched.delegator._shard_pool is None
    assert sum(len(s.jobs) for s in subs) == len(sched.jobs)


def test_snapshot_cadence_bounds_replay_log():
    """Every snapshot_every committed bursts the worker re-snapshots
    and the crash-replay log resets — state ships on the cadence, not
    per burst."""
    seq = make_workload(600, seed=3)
    sched = DelegatingScheduler(3, AlignedReservationScheduler)
    pool = None
    for i, burst in enumerate(iter_batches(seq, 16)):
        result = sched.apply_batch_sharded(burst, workers="processes")
        assert not result.failed, result.failure
        if pool is None:
            pool = sched._shard_pool
            pool.snapshot_every = 4
    assert pool is not None
    assert all(w.bursts_since_snapshot < 4 for w in pool.workers)
    assert all(len(w.replay) < 4 for w in pool.workers)
    sched.close_shard_workers()


# ----------------------------------------------------------------------
# crash injection
# ----------------------------------------------------------------------
def test_worker_crash_mid_burst_rolls_back_and_recovers():
    """Kill a worker mid-burst: the whole burst rolls back, the
    scheduler stays usable and equivalent to never having applied the
    burst, the worker is re-seeded, and the SAME burst then succeeds."""
    seq = make_workload(700, seed=4)
    prefix, burst, rest = seq[:320], seq[320:352], seq[352:]

    sched = ReservationScheduler(3, gamma=8)
    drive_process_bursts(sched, prefix, batch_size=32)
    pool = sched.delegator._shard_pool
    victim = pool.workers[1].process.pid

    # reference that never saw the burst
    untouched = ReservationScheduler(3, gamma=8)
    for r in prefix:
        untouched.apply(r)

    pool.crash_worker_after(1, 2)  # hard-exit after 2 ops of next burst
    result = sched.apply_batch_sharded(burst, workers="processes")
    assert result.failed and result.rolled_back
    assert isinstance(result.error, WorkerCrashError)
    assert result.processed == 0

    # pre-burst state is exactly restored (compare via sync-less parent
    # state first, then full equivalence after closing the pool)
    assert pool.workers[1].process.pid != victim  # re-seeded worker
    snapshot = ReservationScheduler(3, gamma=8)
    for r in prefix:
        snapshot.apply(r)
    assert dict(sched.placements) == dict(snapshot.placements)
    assert sched.jobs == snapshot.jobs

    # the same burst now succeeds on the re-seeded worker, and the full
    # run matches a sequential reference bit for bit
    result = sched.apply_batch_sharded(burst, workers="processes")
    assert not result.failed, result.failure
    drive_process_bursts(sched, rest, batch_size=32)
    sched.close_shard_workers()
    reference = ReservationScheduler(3, gamma=8)
    for r in seq:
        reference.apply(r)
    assert_equivalent(sched, reference)
    sched.check_balance()
    untouched.close_shard_workers()


def test_external_kill_between_bursts_recovers():
    """A worker killed from outside (not mid-protocol) fails the next
    burst with rollback; the burst after that succeeds."""
    seq = make_workload(500, seed=5)
    sched = DelegatingScheduler(3, AlignedReservationScheduler)
    chunks = list(iter_batches(seq, 32))
    for burst in chunks[:6]:
        result = sched.apply_batch_sharded(burst, workers="processes")
        assert not result.failed, result.failure
    pool = sched._shard_pool
    pool.kill_worker(0)
    result = sched.apply_batch_sharded(chunks[6], workers="processes")
    assert result.failed and result.rolled_back
    assert isinstance(result.error, WorkerCrashError)
    for burst in chunks[6:]:
        result = sched.apply_batch_sharded(burst, workers="processes")
        assert not result.failed, result.failure
    sched.close_shard_workers()
    reference = DelegatingScheduler(3, AlignedReservationScheduler)
    for r in seq:
        reference.apply(r)
    assert_equivalent(sched, reference)


def test_sync_back_after_worker_death_rebuilds_locally():
    """Closing the pool with a dead worker reconstructs that shard's
    state from snapshot + replay (no worker round trip available)."""
    seq = make_workload(400, seed=6)
    reference = DelegatingScheduler(3, AlignedReservationScheduler)
    for r in seq:
        reference.apply(r)
    sched = DelegatingScheduler(3, AlignedReservationScheduler)
    for burst in iter_batches(seq, 32):
        result = sched.apply_batch_sharded(burst, workers="processes")
        assert not result.failed, result.failure
    sched._shard_pool.kill_worker(2)
    sched.close_shard_workers()  # shard 2 rebuilt from snapshot+replay
    assert_equivalent(sched, reference)
    sched.check_balance()


def test_scheduler_failure_in_worker_rolls_back_all_shards():
    """A scheduler-level failure (duplicate insert reaches a shard) is
    reported with the failing request's index and rolls the burst back;
    the workers survive (no crash, no respawn)."""
    from repro.core.requests import insert

    seq = make_workload(300, seed=7)
    sched = ReservationScheduler(3, gamma=8)
    drive_process_bursts(sched, seq[:128], batch_size=32)
    pool = sched.delegator._shard_pool
    pids = [w.process.pid for w in pool.workers]
    pre_placements = dict(sched.placements)

    bad = list(seq[128:150]) + [insert("dup", 0, 64), insert("dup", 0, 64)]
    result = sched.apply_batch_sharded(bad, workers="processes")
    assert result.failed and result.rolled_back
    assert not isinstance(result.error, WorkerCrashError)
    assert dict(sched.placements) == pre_placements
    # same processes, still alive — failure is not a crash
    assert [w.process.pid for w in pool.workers] == pids
    drive_process_bursts(sched, seq[128:], batch_size=32)
    sched.close_shard_workers()
    sched.check_balance()


# ----------------------------------------------------------------------
# sessions: process backend, crash policy, resume across restart
# ----------------------------------------------------------------------
def test_session_process_backend_matches_sequential_and_releases_pool():
    seq = make_workload(600, seed=8)
    sequential = ReservationScheduler(3, gamma=8)
    ref = Session(sequential, seq, ExecutionPlan(backend="sequential")).run()
    sched = ReservationScheduler(3, gamma=8)
    result = Session(sched, seq, ExecutionPlan(
        backend="sharded", shard_workers="processes", batch_size=32)).run()
    assert not result.failed and not ref.failed
    assert result.requests_processed == len(seq)
    assert_equivalent(sched, sequential)
    # the session's finish hook released the pool and synced state back
    assert sched.delegator._shard_pool is None
    assert (sum(len(s.jobs) for s in sched.delegator.machines)
            == len(sched.jobs))


def test_traced_session_resumes_across_worker_restart(tmp_path):
    """A worker crash mid-session fails that burst through the normal
    failure policy (checkpointed trace intact); resuming the trace —
    with brand-new worker processes — completes the run bit-identical
    to an uninterrupted one."""
    seq = make_workload(900, seed=9)
    trace = tmp_path / "run.jsonl"

    full_sched = ReservationScheduler(3, gamma=8)
    full = run_engine(full_sched, seq, batch_size=32, backend="sharded",
                      shard_workers="processes", checkpoint_every=128)
    assert not full.failed

    sched = ReservationScheduler(3, gamma=8)
    armed = []

    def arm_crash(cp):
        # first checkpoint: arm a deterministic crash in the next burst
        if not armed:
            pool = sched.delegator._shard_pool
            pool.crash_worker_after(0, 1)
            armed.append(cp.processed)

    crashed = run_engine(sched, seq, batch_size=32, backend="sharded",
                         shard_workers="processes", checkpoint_every=128,
                         on_checkpoint=arm_crash, trace_path=trace)
    assert crashed.failed and "WorkerCrashError" in crashed.failure
    assert crashed.requests_processed >= armed[0]
    assert sched.delegator._shard_pool is None  # finish hook ran

    records = SessionTrace.read_records(trace)
    assert SessionTrace.resume_offset(records) >= armed[0]

    resumed_sched = ReservationScheduler(3, gamma=8)
    resumed = run_engine(resumed_sched, seq, batch_size=32,
                         backend="sharded", shard_workers="processes",
                         checkpoint_every=128, trace_path=trace,
                         resume=True)
    assert not resumed.failed
    assert resumed.resumed_from > 0
    assert resumed.requests_processed == len(seq)
    assert resumed.ledger_summary == full.ledger_summary
    assert_equivalent(resumed_sched, full_sched)


def test_stop_and_resume_with_fresh_worker_pool(tmp_path):
    """The plain kill/resume round trip on the process backend: the
    first session's pool dies with it; the resumed session spawns a
    fresh pool and converges to the uninterrupted result."""
    seq = make_workload(600, seed=10)
    trace = tmp_path / "run.jsonl"
    full_sched = ReservationScheduler(3, gamma=8)
    full = run_engine(full_sched, seq, batch_size=32, backend="sharded",
                      shard_workers="processes", checkpoint_every=96)

    part = run_engine(ReservationScheduler(3, gamma=8), seq, batch_size=32,
                      backend="sharded", shard_workers="processes",
                      checkpoint_every=96, trace_path=trace, stop_after=192)
    assert part.interrupted

    resumed_sched = ReservationScheduler(3, gamma=8)
    resumed = run_engine(resumed_sched, seq, batch_size=32,
                         backend="sharded", shard_workers="processes",
                         checkpoint_every=96, trace_path=trace, resume=True)
    assert resumed.requests_processed == len(seq)
    assert resumed.ledger_summary == full.ledger_summary
    assert_equivalent(resumed_sched, full_sched)


# ----------------------------------------------------------------------
# CLI flag mapping (satellite)
# ----------------------------------------------------------------------
def _parse(argv):
    return build_parser().parse_args(argv)


def test_shard_workers_flag_mapping(capsys):
    # default: serial, no warning
    args = _parse(["engine"])
    assert resolve_shard_workers(args) == "serial"
    assert capsys.readouterr().err == ""
    # explicit modes pass through
    for mode in ("serial", "threads", "processes"):
        args = _parse(["engine", "--shard-workers", mode])
        assert resolve_shard_workers(args) == mode
    assert capsys.readouterr().err == ""
    # deprecated alias maps to threads with a warning
    args = _parse(["engine", "--shard-parallel"])
    assert resolve_shard_workers(args) == "threads"
    assert "deprecated" in capsys.readouterr().err
    # explicit flag wins over the alias (and still warns nothing new)
    args = _parse(["engine", "--shard-parallel",
                   "--shard-workers", "processes"])
    assert resolve_shard_workers(args) == "processes"
    assert capsys.readouterr().err == ""


def test_shard_workers_flag_rejects_unknown_mode(capsys):
    with pytest.raises(SystemExit):
        _parse(["engine", "--shard-workers", "fibers"])
    capsys.readouterr()


def test_plan_validates_shard_workers():
    with pytest.raises(ValueError):
        ExecutionPlan(shard_workers="fibers")
    assert ExecutionPlan().resolved_shard_workers == "serial"
    # the deprecated spelling still resolves, and warns toward workers=
    with pytest.deprecated_call():
        assert (ExecutionPlan(shard_parallel=True).resolved_shard_workers
                == "threads")
    # an explicit workers= wins silently
    assert ExecutionPlan(shard_workers="processes",
                         shard_parallel=True).resolved_shard_workers == "processes"
