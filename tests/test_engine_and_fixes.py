"""Regression tests for the fast-path engine PR.

Covers the three driver/scheduler bugfixes (timing contamination,
failed-request partial state, run_comparison dropping validate_each),
the sparse cost accounting, the incremental verifier, the batch engine,
and the Observation 7 history-independence guard for the memoized
fulfillment target.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import ReservationScheduler
from repro.core.exceptions import (
    InfeasibleError,
    UnderallocationError,
    ValidationError,
)
from repro.core.job import Job, Placement
from repro.core.window import Window
from repro.reservation import AlignedReservationScheduler, validate_scheduler
from repro.sim import (
    IncrementalVerifier,
    run_comparison,
    run_engine,
    run_sequence,
    run_sweep,
)
from repro.workloads import (
    SCENARIOS,
    AlignedWorkloadConfig,
    adversarial_span_mix_sequence,
    churn_storm_sequence,
    random_aligned_sequence,
    steady_state_sequence,
)


def small_sequence(n=120, seed=0, **overrides):
    cfg = AlignedWorkloadConfig(
        num_requests=n, gamma=8, horizon=1 << 10, max_span=1 << 10,
        delete_fraction=0.3, **overrides,
    )
    return random_aligned_sequence(cfg, seed=seed)


# ----------------------------------------------------------------------
# Bugfix 1: audit time must not contaminate scheduler_time_s
# ----------------------------------------------------------------------
class TestTimingSplit:
    def test_audit_time_excluded_from_scheduler_time(self):
        seq = small_sequence(40)

        def slow_validator(_sched):
            time.sleep(0.002)

        result = run_sequence(
            AlignedReservationScheduler(), seq,
            verify_each=False, validate_each=slow_validator,
        )
        # ~80ms of validator sleep must land in audit, not scheduler, time
        assert result.audit_time_s >= 0.05
        assert result.scheduler_time_s < result.audit_time_s / 2
        assert result.wall_time_s >= result.scheduler_time_s + result.audit_time_s

    def test_phase_fields_present_and_consistent(self):
        seq = small_sequence(60)
        result = run_sequence(AlignedReservationScheduler(), seq)
        assert result.scheduler_time_s > 0
        assert result.audit_time_s > 0
        assert result.wall_time_s >= result.scheduler_time_s
        summary = result.summary
        assert {"wall_s", "sched_s", "audit_s"} <= set(summary)
        assert result.requests_per_second == pytest.approx(
            result.requests_processed / result.scheduler_time_s)


# ----------------------------------------------------------------------
# Bugfix 2: failed requests roll back to the pre-request state
# ----------------------------------------------------------------------
def scheduler_state(sched: AlignedReservationScheduler) -> dict:
    """Deep snapshot of every mutable structure, for exact comparison."""
    return {
        "slot_job": dict(sched.slot_job),
        "job_slot": dict(sched.job_slot),
        "placements": dict(sched.placements),
        "job_levels": dict(sched._job_levels),
        "window_states": {
            lv: {
                w: (set(ws.jobs), ws.backed_empty.snapshot(),
                    ws.backed_covered.snapshot())
                for w, ws in states.items()
            }
            for lv, states in sched.window_states.items()
        },
        "intervals": {
            lv: {
                idx: (set(iv.lower_occupied), dict(iv.dynamic_res),
                      {w: set(s) for w, s in iv.assigned.items()},
                      dict(iv.slot_owner))
                for idx, iv in table.items()
            }
            for lv, table in sched.intervals.items()
        },
    }


class TestFailedRequestRollback:
    def overfill(self, sched, window, start=0):
        """Insert same-window jobs until the scheduler rejects one."""
        for i in range(start, 4 * window.span):
            job = Job(f"x{i}", window)
            before = scheduler_state(sched)
            try:
                sched.insert(job)
            except UnderallocationError:
                return job, before
        raise AssertionError("scheduler never hit underallocation")

    def test_failed_insert_restores_exact_state(self):
        sched = AlignedReservationScheduler()
        window = Window(0, 64)  # level-1 window
        failing_job, before = self.overfill(sched, window)
        assert sched.poisoned
        assert scheduler_state(sched) == before
        assert failing_job.id not in sched.jobs
        # the rolled-back state is internally consistent: no phantom
        # jobs, indexes intact (lemma-8 slack is legitimately exhausted)
        validate_scheduler(sched, check_lemma8=False)

    def test_failed_insert_with_cascade_restores_state(self):
        sched = AlignedReservationScheduler()
        # occupy base level under the same region to force displacement
        # interactions between levels before exhausting the slack
        for i in range(8):
            sched.insert(Job(f"b{i}", Window(8 * i, 8 * (i + 1))))
        _, before = self.overfill(sched, Window(0, 64), start=100)
        assert sched.poisoned
        assert scheduler_state(sched) == before
        validate_scheduler(sched, check_lemma8=False)

    def test_failed_delete_restores_exact_state(self, monkeypatch):
        sched = AlignedReservationScheduler()
        jobs = [Job(f"d{i}", Window(0, 64)) for i in range(6)]
        for job in jobs:
            sched.insert(job)
        before = scheduler_state(sched)

        def boom(slot, level):
            raise UnderallocationError("injected delete-path failure")

        monkeypatch.setattr(sched, "_notify_raised", boom)
        with pytest.raises(UnderallocationError):
            sched.delete(jobs[2].id)
        monkeypatch.undo()
        assert sched.poisoned
        assert scheduler_state(sched) == before
        assert jobs[2].id in sched.jobs  # the delete did not half-apply
        validate_scheduler(sched, check_lemma8=False)

    def test_poisoned_scheduler_rejects_further_requests(self):
        sched = AlignedReservationScheduler()
        self.overfill(sched, Window(0, 64))
        with pytest.raises(UnderallocationError):
            sched.insert(Job("after", Window(64, 128)))


# ----------------------------------------------------------------------
# Bugfix 3: run_comparison forwards validate_each
# ----------------------------------------------------------------------
class TestRunComparisonValidateEach:
    def test_validator_called_for_every_scheduler_and_request(self):
        seq = small_sequence(30)
        calls = []
        results = run_comparison(
            {"a": AlignedReservationScheduler,
             "b": AlignedReservationScheduler},
            seq,
            validate_each=lambda sched: calls.append(id(sched)),
        )
        assert len(calls) == 2 * len(seq)
        assert len(set(calls)) == 2  # two distinct scheduler instances
        assert all(not r.failed for r in results.values())


# ----------------------------------------------------------------------
# Sparse cost accounting equals the full-snapshot diff
# ----------------------------------------------------------------------
class DenseReservationScheduler(AlignedReservationScheduler):
    """Reference: same scheduler, legacy O(n) full-snapshot costing."""

    _sparse_costing = False


class TestSparseCosting:
    def test_ledger_matches_dense_reference(self):
        seq = small_sequence(150, seed=3)
        sparse = AlignedReservationScheduler()
        dense = DenseReservationScheduler()
        run_sequence(sparse, seq, verify_each=False)
        run_sequence(dense, seq, verify_each=False)
        assert len(sparse.ledger) == len(dense.ledger)
        for got, want in zip(sparse.ledger, dense.ledger):
            assert got.rescheduled == want.rescheduled, got.subject
            assert got.migrated == want.migrated
            assert got.n_active == want.n_active
            assert got.max_span == want.max_span

    def test_theorem1_stack_matches_dense_reference(self):
        seq = small_sequence(150, seed=4)
        fast = ReservationScheduler(2, gamma=8)
        run_sequence(fast, seq, verify_each=True)

        class DenseFacade(ReservationScheduler):
            _sparse_costing = False

        slow = DenseFacade(2, gamma=8)
        run_sequence(slow, seq, verify_each=True)
        for got, want in zip(fast.ledger, slow.ledger):
            assert got.rescheduled == want.rescheduled, got.subject
            assert got.migrated == want.migrated


# ----------------------------------------------------------------------
# Incremental verifier
# ----------------------------------------------------------------------
class TestIncrementalVerifier:
    def test_clean_run_passes_and_audits(self):
        seq = small_sequence(200, seed=5)
        result = run_sequence(
            AlignedReservationScheduler(), seq,
            verify_each=True, verify_mode="incremental", full_audit_every=50,
        )
        assert not result.failed

    def test_detects_out_of_window_placement(self):
        sched = AlignedReservationScheduler()
        verifier = IncrementalVerifier(1)
        cost = sched.insert(Job("ok", Window(0, 32)))
        verifier.observe(sched, cost)
        # corrupt: teleport the job outside its window
        slot = sched.job_slot["ok"]
        sched._placements["ok"] = Placement(0, slot + 64)
        with pytest.raises(ValidationError):
            verifier.full_audit(sched)

    def test_detects_unreported_move_at_full_audit(self):
        sched = AlignedReservationScheduler()
        verifier = IncrementalVerifier(1)
        for i in range(4):
            cost = sched.insert(Job(f"j{i}", Window(0, 32)))
            verifier.observe(sched, cost)
        # move a job without reporting it in any cost: mirror diverges
        sched._placements["j0"] = Placement(0, 30)
        with pytest.raises(ValidationError, match="without being reported"):
            verifier.full_audit(sched)

    def test_detects_double_booking(self):
        sched = AlignedReservationScheduler()
        verifier = IncrementalVerifier(1)
        c1 = sched.insert(Job("a", Window(0, 32)))
        verifier.observe(sched, c1)
        c2 = sched.insert(Job("b", Window(0, 32)))
        # corrupt b onto a's slot, then report b's change
        sched._placements["b"] = sched._placements["a"]
        with pytest.raises(ValidationError, match="double-booked"):
            verifier.observe(sched, c2)


# ----------------------------------------------------------------------
# Engine + scenarios
# ----------------------------------------------------------------------
class TestEngine:
    def test_phase_split_and_checkpoints(self):
        seq = steady_state_sequence(requests=600, horizon=1 << 12,
                                    max_span=1 << 10, target_active=60, seed=1)
        seen = []
        result = run_engine(
            AlignedReservationScheduler(), seq,
            verify="incremental", checkpoint_every=200,
            on_checkpoint=seen.append,
            validator=lambda s: validate_scheduler(s, check_lemma8=False),
            validate_every=100,
        )
        assert not result.failed
        assert result.requests_processed == len(seq)
        assert len(result.checkpoints) == len(seen) == 3
        assert result.scheduler_time_s > 0
        assert result.verify_time_s > 0
        assert result.validate_time_s > 0
        assert result.wall_time_s >= (result.scheduler_time_s
                                      + result.verify_time_s
                                      + result.validate_time_s)
        assert result.requests_per_second > 0

    def test_sweep_runs_all_cells(self):
        scenarios = {
            "storm": churn_storm_sequence(requests=300, horizon=1 << 12,
                                          max_span=1 << 10, seed=2),
            "mix": adversarial_span_mix_sequence(requests=300,
                                                 horizon=1 << 12, seed=2),
        }
        results = run_sweep(
            scenarios,
            {"reservation": lambda: ReservationScheduler(1, gamma=8)},
        )
        assert set(results) == {("storm", "reservation"),
                                ("mix", "reservation")}
        assert all(not r.failed for r in results.values())

    def test_scenario_registry_builds_all(self):
        for name, builder in SCENARIOS.items():
            seq = builder(200, 0, 1)
            assert len(seq) == 200, name


# ----------------------------------------------------------------------
# Observation 7 guard: memoized target == fresh recomputation, always
# ----------------------------------------------------------------------
@st.composite
def churn_ops(draw):
    """A random interleaving of inserts and deletes over aligned windows."""
    ops = []
    alive = []
    n = draw(st.integers(min_value=10, max_value=60))
    uid = 0
    for _ in range(n):
        if alive and draw(st.booleans()):
            ops.append(("delete", alive.pop(draw(
                st.integers(min_value=0, max_value=len(alive) - 1)))))
        else:
            exp = draw(st.integers(min_value=0, max_value=9))
            span = 1 << exp
            start = draw(st.integers(min_value=0,
                                     max_value=(1 << 10) // span - 1)) * span
            ops.append(("insert", f"h{uid}", Window(start, start + span)))
            alive.append(f"h{uid}")
            uid += 1
    return ops


class TestHistoryIndependenceGuard:
    @settings(max_examples=30, deadline=None)
    @given(churn_ops())
    def test_cached_target_always_equals_fresh_recompute(self, ops):
        sched = AlignedReservationScheduler()
        for op in ops:
            try:
                if op[0] == "insert":
                    sched.insert(Job(op[1], op[2]))
                else:
                    sched.delete(op[1])
            except (UnderallocationError, InfeasibleError):
                break  # random churn may exhaust slack or be infeasible
            for table in sched.intervals.values():
                for iv in table.values():
                    assert iv.target_fulfilled() == iv.compute_target_fresh()
        if not sched.poisoned:
            validate_scheduler(sched, check_lemma8=False)
