"""Streaming scenario generators: lazy twins of the materialized ones.

The ROADMAP's engine-scale item: 10^6-request runs used to materialize
full request lists before the first request was served. The ``iter_*``
generators stream instead — their working state is the *active* set
(bounded by the density admission), so peak memory is flat in the
request count — while staying request-for-request identical to the
materialized ``*_sequence`` builders.

The full 10^6-request churn-storm profile (~30 s generation, peak
traced memory under 2 MB) runs with ``REPRO_BIG_TESTS=1``; the always-on
tests pin the same property at sizes that keep tier-1 fast: flat peak
memory across a doubling of the stream length, an order of magnitude
below the materialized form, and exact equivalence at 10^4.
"""

from __future__ import annotations

import os
import tracemalloc

import pytest

from repro.core.api import ReservationScheduler
from repro.sim import run_engine
from repro.workloads.scenarios import (
    SCENARIO_STREAMS,
    SCENARIOS,
    churn_storm_sequence,
    iter_churn_storm,
)


def peak_traced(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def consume(stream) -> int:
    return sum(1 for _ in stream)


# ----------------------------------------------------------------------
# equivalence with the materialized form
# ----------------------------------------------------------------------
def test_streaming_equals_materialized_churn_storm_10k():
    """The ISSUE's pinned size: 10^4 churn-storm, stream == list."""
    materialized = list(churn_storm_sequence(requests=10_000, seed=0,
                                             num_machines=3))
    streamed = list(iter_churn_storm(requests=10_000, seed=0,
                                     num_machines=3))
    assert streamed == materialized
    assert len(streamed) == 10_000


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_scenario_has_an_identical_stream(name):
    materialized = list(SCENARIOS[name](800, 1, 3))
    streamed = list(SCENARIO_STREAMS[name](800, 1, 3))
    assert streamed == materialized


def test_session_consumes_a_stream_directly():
    """A generator feeds the drive loop without materializing; result
    matches the materialized run."""
    n = 2000
    materialized = churn_storm_sequence(requests=n, seed=2, num_machines=3)
    ref_sched = ReservationScheduler(3, gamma=8)
    ref = run_engine(ref_sched, materialized, batch_size=64,
                     backend="sharded")
    sched = ReservationScheduler(3, gamma=8)
    result = run_engine(sched, iter_churn_storm(requests=n, seed=2,
                                                num_machines=3),
                        batch_size=64, backend="sharded")
    assert not result.failed
    assert result.requests_processed == n
    assert result.ledger_summary == ref.ledger_summary
    assert dict(sched.placements) == dict(ref_sched.placements)


# ----------------------------------------------------------------------
# bounded memory
# ----------------------------------------------------------------------
def test_streaming_memory_is_flat_and_far_below_materialized():
    """Peak traced memory of the stream must not grow with the stream
    length (active set is the only state) and must sit an order of
    magnitude below materializing the same prefix."""
    base = peak_traced(lambda: consume(
        iter_churn_storm(requests=15_000, seed=0)))
    doubled = peak_traced(lambda: consume(
        iter_churn_storm(requests=30_000, seed=0)))
    materialized = peak_traced(lambda: churn_storm_sequence(
        requests=15_000, seed=0))
    # flat: doubling the stream adds no growth beyond noise
    assert doubled < base * 1.5 + 100_000
    # bounded well below the materialized list of the same prefix
    assert base * 5 < materialized


@pytest.mark.skipif(not os.environ.get("REPRO_BIG_TESTS"),
                    reason="10^6-request profile (~2 min under "
                           "tracemalloc); set REPRO_BIG_TESTS=1")
def test_streaming_churn_storm_1e6_stays_bounded():
    """The headline claim at full scale: 10^6 requests, bounded peak."""
    peak = peak_traced(lambda: consume(
        iter_churn_storm(requests=1_000_000, seed=0)))
    assert peak < 8_000_000  # measured ~1.4 MB; 8 MB leaves slack
