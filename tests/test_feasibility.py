"""Tests for the offline feasibility substrate (matching, EDF, density)."""

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Job, Window
from repro.feasibility import (
    HopcroftKarp,
    LaminarLoadTree,
    check_feasible,
    check_gamma_underallocated,
    coarse_grid_jobs,
    density_gamma,
    feasible_assignment,
    greedy_edf_feasible,
    interval_density_bound,
    max_matching_size,
    offline_schedule,
    underallocation_factor,
)


def jobs_dict(*specs):
    """specs: (id, release, deadline)"""
    return {s[0]: Job(s[0], Window(s[1], s[2])) for s in specs}


class TestHopcroftKarp:
    def test_trivial(self):
        hk = HopcroftKarp({"a": [1], "b": [2]})
        m = hk.match()
        assert m == {"a": 1, "b": 2}

    def test_contention(self):
        hk = HopcroftKarp({"a": [1], "b": [1]})
        hk.match()
        assert hk.size == 1

    def test_augmenting_path_needed(self):
        # a prefers 1, but must cede it to b via augmentation.
        hk = HopcroftKarp({"a": [1, 2], "b": [1]})
        m = hk.match()
        assert len(m) == 2
        assert m["b"] == 1 and m["a"] == 2

    def test_empty(self):
        assert HopcroftKarp({}).match() == {}

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 9), st.integers(1, 6)),
        min_size=0, max_size=25,
    ))
    def test_against_networkx(self, edges_spec):
        """HK matching size equals networkx's on random bipartite graphs."""
        adjacency = {}
        graph = nx.Graph()
        lefts = set()
        for i, (start, width) in enumerate(edges_spec):
            left = ("L", i)
            rights = [("R", r) for r in range(start, start + width)]
            adjacency[left] = rights
            lefts.add(left)
            graph.add_node(left)
            for r in rights:
                graph.add_edge(left, r)
        hk = HopcroftKarp(adjacency)
        hk.match()
        nx_matching = nx.bipartite.maximum_matching(graph, top_nodes=lefts) if graph.edges else {}
        assert hk.size == len(nx_matching) // 2


class TestFeasibility:
    def test_empty_feasible(self):
        assert check_feasible({}, 1)

    def test_simple_feasible(self):
        jobs = jobs_dict(("a", 0, 2), ("b", 0, 2))
        assert check_feasible(jobs, 1, audit=True)

    def test_simple_infeasible(self):
        jobs = jobs_dict(("a", 0, 1), ("b", 0, 1))
        assert not check_feasible(jobs, 1, audit=True)
        assert check_feasible(jobs, 2, audit=True)

    def test_pigeonhole(self):
        # 5 jobs into a 4-slot window.
        jobs = jobs_dict(*[(f"j{i}", 0, 4) for i in range(5)])
        assert not check_feasible(jobs, 1, audit=True)

    def test_staircase(self):
        # Lemma 12's staircase is feasible (tightly).
        jobs = jobs_dict(*[(f"j{i}", i, i + 2) for i in range(10)])
        assert check_feasible(jobs, 1, audit=True)

    def test_interleaved_multi_machine(self):
        jobs = jobs_dict(*[(f"j{i}", 0, 3) for i in range(6)])
        assert check_feasible(jobs, 2, audit=True)
        jobs["extra"] = Job("extra", Window(0, 3))
        assert not check_feasible(jobs, 2, audit=True)

    def test_feasible_assignment_valid(self):
        jobs = jobs_dict(("a", 0, 2), ("b", 0, 2), ("c", 1, 3), ("d", 2, 4))
        assignment = feasible_assignment(jobs, 2)
        assert assignment is not None
        used = set()
        for job_id, (machine, slot) in assignment.items():
            assert slot in jobs[job_id].window
            assert 0 <= machine < 2
            assert (machine, slot) not in used
            used.add((machine, slot))

    def test_feasible_assignment_none_when_infeasible(self):
        jobs = jobs_dict(("a", 0, 1), ("b", 0, 1))
        assert feasible_assignment(jobs, 1) is None

    def test_offline_schedule_alias(self):
        jobs = jobs_dict(("a", 0, 2))
        assert offline_schedule(jobs, 1) is not None

    def test_max_matching_size(self):
        jobs = jobs_dict(("a", 0, 1), ("b", 0, 1), ("c", 0, 1))
        assert max_matching_size(jobs, 2) == 2

    def test_sized_jobs_rejected(self):
        jobs = {"a": Job("a", Window(0, 4), size=2)}
        with pytest.raises(ValueError):
            check_feasible(jobs, 1)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 20), st.integers(1, 8)),
        min_size=1, max_size=30,
    ), st.integers(1, 3))
    def test_edf_agrees_with_matching(self, specs, m):
        jobs = {i: Job(i, Window(r, r + s)) for i, (r, s) in enumerate(specs)}
        edf = greedy_edf_feasible(jobs.values(), m)
        matching = max_matching_size(jobs, m) == len(jobs)
        assert edf == matching


class TestDensity:
    def test_empty(self):
        assert interval_density_bound([], 1) == 0
        assert underallocation_factor([], 1) > 10**8

    def test_full_window(self):
        jobs = [Job(i, Window(0, 4)) for i in range(4)]
        assert interval_density_bound(jobs, 1) == 1
        assert underallocation_factor(jobs, 1) == 1

    def test_half_full(self):
        jobs = [Job(i, Window(0, 8)) for i in range(2)]
        assert interval_density_bound(jobs, 1) == Fraction(1, 4)
        assert underallocation_factor(jobs, 1) == 4

    def test_multi_machine(self):
        jobs = [Job(i, Window(0, 4)) for i in range(4)]
        assert underallocation_factor(jobs, 2) == 2

    def test_nested_windows_detected(self):
        # A dense inner window inside a sparse outer one.
        jobs = [Job("outer", Window(0, 64))] + [Job(i, Window(8, 12)) for i in range(4)]
        assert interval_density_bound(jobs, 1) == 1

    def test_density_gamma_api(self):
        jobs = {j.id: j for j in (Job(i, Window(0, 16)) for i in range(2))}
        assert density_gamma(jobs, 1) == 8


class TestGammaUnderallocation:
    def test_empty(self):
        assert check_gamma_underallocated({}, 1, 8)

    def test_gamma_one_is_feasibility(self):
        jobs = jobs_dict(("a", 0, 2), ("b", 0, 2))
        assert check_gamma_underallocated(jobs, 1, 1)
        jobs2 = jobs_dict(("a", 0, 1), ("b", 0, 1))
        assert not check_gamma_underallocated(jobs2, 1, 1)

    def test_scaling(self):
        # 2 jobs in a span-16 aligned window: fits gamma = 8 (coarse grid
        # has 2 coarse slots), fails gamma = 16 (1 coarse slot).
        jobs = jobs_dict(("a", 0, 16), ("b", 0, 16))
        assert check_gamma_underallocated(jobs, 1, 8)
        assert not check_gamma_underallocated(jobs, 1, 16)

    def test_narrow_window_fails_large_gamma(self):
        jobs = jobs_dict(("a", 3, 5))  # span 2; no multiple-of-4 slot inside
        assert not check_gamma_underallocated(jobs, 1, 4)

    def test_coarse_grid_jobs(self):
        jobs = jobs_dict(("a", 0, 16))
        coarse = coarse_grid_jobs(jobs, 4)
        assert coarse["a"].window == Window(0, 4)
        jobs2 = jobs_dict(("b", 1, 16))
        assert coarse_grid_jobs(jobs2, 4)["b"].window == Window(1, 4)

    def test_coarse_grid_rejects_too_narrow(self):
        with pytest.raises(ValueError):
            coarse_grid_jobs(jobs_dict(("a", 3, 5)), 4)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            check_gamma_underallocated({}, 1, 0)

    def test_implication_chain(self):
        # coarse-grid gamma-underallocated implies density holds at gamma.
        jobs = jobs_dict(*[(f"j{i}", 0, 64) for i in range(4)])
        for gamma in (1, 2, 4, 8, 16):
            if check_gamma_underallocated(jobs, 1, gamma):
                assert density_gamma(jobs, 1) >= gamma


class TestLaminarLoadTree:
    def test_add_remove(self):
        tree = LaminarLoadTree(16)
        tree.add("a", Window(0, 4))
        tree.add("b", Window(0, 8))
        assert tree.load(Window(0, 4)) == 1
        assert tree.load(Window(0, 8)) == 2
        assert tree.load(Window(0, 16)) == 2
        tree.remove("a")
        assert tree.load(Window(0, 4)) == 0
        assert tree.load(Window(0, 8)) == 1
        assert len(tree) == 1

    def test_rejects_unaligned(self):
        tree = LaminarLoadTree(16)
        with pytest.raises(ValueError):
            tree.add("a", Window(1, 3))

    def test_rejects_duplicate(self):
        tree = LaminarLoadTree(16)
        tree.add("a", Window(0, 4))
        with pytest.raises(ValueError):
            tree.add("a", Window(0, 4))

    def test_would_fit(self):
        tree = LaminarLoadTree(8)
        # gamma=2, m=1: window [0,4) holds at most 2 jobs.
        assert tree.would_fit(Window(0, 4), 1, 2)
        tree.add("a", Window(0, 4))
        assert tree.would_fit(Window(0, 4), 1, 2)
        tree.add("b", Window(0, 4))
        assert not tree.would_fit(Window(0, 4), 1, 2)
        # ancestor budget: [0,8) allows 4 jobs at gamma=2; nested load counts.
        assert tree.would_fit(Window(4, 8), 1, 2)

    def test_max_density(self):
        tree = LaminarLoadTree(8)
        tree.add("a", Window(0, 2))
        tree.add("b", Window(0, 2))
        assert tree.max_density(1) == 1

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 3)), max_size=30))
    def test_verify_against_recount(self, specs):
        tree = LaminarLoadTree(64)
        jobs = {}
        for i, (idx, log_span) in enumerate(specs):
            span = 1 << log_span
            w = Window(idx * span, (idx + 1) * span)
            tree.add(i, w)
            jobs[i] = Job(i, w)
        assert tree.verify_against(jobs)
        # remove half, recheck
        for i in list(jobs)[::2]:
            tree.remove(i)
            del jobs[i]
        assert tree.verify_against(jobs)
