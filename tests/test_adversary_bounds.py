"""Lower-bound adversaries driven online, checked against Theorem 1.

Section 6's adversaries exist to show what schedulers *cannot* avoid;
this module turns them around and runs them online against the
reallocating stack, asserting the *upper* bound holds under fire: every
measured per-request cost stays within the Theorem 1 budget (via the
differential harness's ``bound_violations`` contract), under both batch
semantics.

- Lemma 11 (migration adversary): adaptive — it observes placements to
  pick victims, so the strict run drives the scheduler directly. The
  recorded trace is then replayed through flexible batches: flexible
  may only get *cheaper* (round-aligned bursts elide whole rounds), and
  must stay within the same per-request caps.
- Lemma 12 (staircase): the raw staircase is exactly allocated and
  infeasible for a gamma-underallocated scheduler; we run the
  slack-adjusted variant (the E5b contrast workload — same toggle
  pattern, gamma slack), where Theorem 1 applies.
- Observation 13 (sized pump) needs sized jobs and stays with the
  sized baselines in ``test_adversaries``; the unit-size stack cannot
  express it.
"""

from __future__ import annotations

import pytest

from repro.adversaries import run_migration_adversary
from repro.core.api import ReservationScheduler
from repro.core.requests import DeleteJob, InsertJob, RequestSequence, iter_batches

from test_backend_differential import bound_violations


class TraceRecorder:
    """Duck-typed scheduler proxy that records the adversary's moves.

    The Lemma 11 adversary is a driver, not a static sequence — its
    delete choices depend on the placements it observes. Recording the
    realized trace makes it replayable as an ordinary (now oblivious)
    request stream under other semantics.
    """

    def __init__(self, inner):
        self.inner = inner
        self.trace = []

    def insert(self, job):
        self.trace.append(InsertJob(job))
        return self.inner.insert(job)

    def delete(self, job_id):
        self.trace.append(DeleteJob(job_id))
        return self.inner.delete(job_id)

    @property
    def placements(self):
        return self.inner.placements

    @property
    def jobs(self):
        return self.inner.jobs

    @property
    def ledger(self):
        return self.inner.ledger

    @property
    def num_machines(self):
        return self.inner.num_machines


def slack_staircase(eta: int, *, gamma: int = 8) -> RequestSequence:
    """Lemma 12's toggle pattern with gamma slack (the E5b contrast):
    standing jobs get windows [j, j+2*gamma) instead of [j, j+2), the
    probes pin [0, gamma) / [eta, eta+gamma)."""
    seq = RequestSequence()
    for j in range(eta):
        seq.insert(f"stair{j}", j, j + 2 * gamma)
    for t in range(eta):
        if t % 2 == 0:
            seq.insert(f"probe{t}", 0, gamma)
        else:
            seq.insert(f"probe{t}", eta, eta + gamma)
        seq.delete(f"probe{t}")
    return seq


@pytest.mark.parametrize("m", [2, 4])
def test_migration_adversary_online_within_bounds(m):
    """Strict semantics, online: the adversary forces its Omega(s)
    migrations, yet every single request stays within Theorem 1's
    per-request caps (<= 1 migration, log*-bounded reallocations)."""
    rounds = 4
    sched = ReservationScheduler(m, gamma=8)
    result = run_migration_adversary(sched, rounds=rounds)
    # the lower bound bites: >= m/2 migrations per round
    assert result.total_migrations >= rounds * (m // 2)
    assert result.requests == rounds * 6 * m
    # ...and the upper bound holds per step
    assert bound_violations(sched.ledger.entries) == []
    assert all(c.migration_cost <= 1 for c in sched.ledger.entries)


@pytest.mark.parametrize("m,batch_size", [(2, 10), (2, 7), (4, 10)])
def test_migration_trace_flexible_replay_within_bounds(m, batch_size):
    """The recorded Lemma 11 trace, replayed through flexible batches:
    same per-request caps, total cost no worse than the strict run."""
    rounds = 4
    recorder = TraceRecorder(ReservationScheduler(m, gamma=8))
    strict = run_migration_adversary(recorder, rounds=rounds)

    sched = ReservationScheduler(m, gamma=8)
    for burst in iter_batches(recorder.trace, batch_size):
        result = sched.apply_batch(burst, atomic=True, semantics="flexible")
        assert not result.failed
    assert len(sched.ledger.entries) == len(recorder.trace)
    assert bound_violations(sched.ledger.entries) == []
    assert sched.ledger.total_reallocations <= strict.total_reallocations
    assert sched.ledger.total_migrations <= strict.total_migrations
    assert sched.jobs == {}  # the adversary cleans up every round


@pytest.mark.parametrize("m", [2, 4])
def test_migration_trace_round_aligned_bursts_elide(m):
    """A burst covering one full adversary round inserts and deletes
    every job it mentions — the flexible planner elides the lot."""
    recorder = TraceRecorder(ReservationScheduler(m, gamma=8))
    run_migration_adversary(recorder, rounds=3)
    sched = ReservationScheduler(m, gamma=8)
    for burst in iter_batches(recorder.trace, 6 * m):
        result = sched.apply_batch(burst, semantics="flexible")
        assert not result.failed
        assert all(c.reallocation_cost == 0 and c.migration_cost == 0
                   for c in result.costs)
    assert sched.ledger.total_reallocations == 0
    assert sched.ledger.total_migrations == 0


@pytest.mark.parametrize("semantics,batch_size,atomic", [
    ("strict", 1, False),
    ("strict", 16, True),
    ("flexible", 16, False),
    ("flexible", 16, True),
])
def test_slack_staircase_within_bounds(semantics, batch_size, atomic):
    """The Lemma 12 toggle with gamma slack: Theorem 1 applies, and both
    semantics stay within the per-step budget (max 1 migration is
    trivial on one machine; reallocations stay log*-bounded)."""
    eta, gamma = 64, 8
    seq = list(slack_staircase(eta, gamma=gamma))
    sched = ReservationScheduler(1, gamma=gamma)
    if batch_size == 1:
        for request in seq:
            sched.apply(request)
    else:
        for burst in iter_batches(seq, batch_size):
            result = sched.apply_batch(burst, atomic=atomic,
                                       semantics=semantics)
            assert not result.failed
    assert len(sched.ledger.entries) == len(seq)
    assert bound_violations(sched.ledger.entries) == []
    assert sched.ledger.max_reallocation <= gamma
    assert set(sched.jobs) == {f"stair{j}" for j in range(eta)}


def test_slack_staircase_flexible_elides_probe_pairs():
    """Every probe is inserted and deleted back-to-back; any burst that
    holds both halves elides the pair, so flexible does strictly less
    probe work than strict on even-sized bursts."""
    eta, gamma = 64, 8
    seq = list(slack_staircase(eta, gamma=gamma))

    def total(semantics):
        sched = ReservationScheduler(1, gamma=gamma)
        for burst in iter_batches(seq, 16):
            result = sched.apply_batch(burst, semantics=semantics)
            assert not result.failed
        return sched.ledger.total_reallocations

    assert total("flexible") <= total("strict")
