"""Tuple+arena undo journal vs the closure-journal oracle.

The journal representation (tuple opcodes on a reusable arena,
``journal="arena"``) is free to change because the paper's guarantees
depend only on *what* a rollback restores, never *how* — but "free to
change" must be proven, not assumed. These tests pin the arena
journal's abort state bit-identical to the closure-journal oracle
(``journal="closure"``, the pre-arena implementation kept verbatim)
across every rollback path in the stack:

- failed-request rollback (poisoned schedulers keep exact pre-request
  state),
- deep atomic-batch aborts through the full Theorem 1 stack,
- trimming rebuilds replaced mid-batch and discarded on abort,
- process-worker crash rollback (whole-burst abort + worker re-seed,
  exercising arena reuse across bursts and across pickling).

"Bit-identical" is a deep structural fingerprint: placements, job
tables, per-interval reservations/assignments/allowances, and
window-state backed indexes — not just the public placement map.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import ReservationScheduler
from repro.core.exceptions import ReproError, WorkerCrashError
from repro.core.job import Job
from repro.core.requests import DeleteJob, InsertJob, iter_batches
from repro.core.window import Window
from repro.multimachine.delegation import DelegatingScheduler
from repro.reservation import AlignedReservationScheduler
from repro.reservation.journal import OP_POP, UndoArena, replay_entries
from repro.reservation.trimming import TrimmedReservationScheduler
from repro.reservation.validation import validate_scheduler
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def make_workload(num_requests=400, seed=0, machines=1):
    cfg = AlignedWorkloadConfig(
        num_requests=num_requests, num_machines=machines, gamma=8,
        horizon=1 << 11, max_span=1 << 11, delete_fraction=0.35,
    )
    return list(random_aligned_sequence(cfg, seed=seed))


# ----------------------------------------------------------------------
# deep state fingerprints
# ----------------------------------------------------------------------
def _wkey(window):
    return (window.release, window.deadline)


def aligned_fingerprint(s: AlignedReservationScheduler):
    """Every semantic structure of the single-machine scheduler.

    Lazy caches (memoized targets, free-slot indexes) are deliberately
    excluded — ``validate_scheduler`` cross-checks them against
    recomputation separately.
    """
    intervals = tuple(
        (lv, idx, iv.lo, iv.hi, frozenset(iv.lower_occupied),
         tuple(sorted(((_wkey(w), c) for w, c in iv.dynamic_res.items()))),
         tuple(sorted((_wkey(w), tuple(sorted(slots)))
                      for w, slots in iv.assigned.items())),
         tuple(sorted(iv.slot_owner.items(),
                      key=lambda kv: kv[0])))
        for lv, table in sorted(s.intervals.items())
        for idx, iv in sorted(table.items())
    )
    window_states = tuple(
        (lv, _wkey(w), frozenset(ws.jobs),
         tuple(ws.backed_empty.snapshot()),
         tuple(ws.backed_covered.snapshot()))
        for lv, states in sorted(s.window_states.items())
        for w, ws in sorted(states.items(), key=lambda kv: _wkey(kv[0]))
    )
    return (
        dict(s.placements), dict(s.slot_job), dict(s.job_slot),
        dict(s._job_levels), set(s.jobs), s._poisoned,
        s._max_span_cache, dict(s._span_counts), intervals, window_states,
    )


def trimmed_fingerprint(s: TrimmedReservationScheduler):
    return (s.n_star, s.rebuilds, set(s.jobs), s._max_span_cache,
            aligned_fingerprint(s.inner))


def stack_fingerprint(s):
    """Recursive fingerprint for any scheduler stack under test."""
    if isinstance(s, AlignedReservationScheduler):
        return ("aligned", aligned_fingerprint(s))
    if isinstance(s, TrimmedReservationScheduler):
        return ("trimmed", trimmed_fingerprint(s))
    if isinstance(s, DelegatingScheduler):
        bal = s.balancer
        return ("delegating", dict(s.placements), set(s.jobs),
                dict(bal._count),
                {jid: (_wkey(w), m) for jid, (w, m) in bal._where.items()},
                tuple(stack_fingerprint(sub) for sub in s.machines))
    if isinstance(s, ReservationScheduler):
        return ("theorem1", set(s.jobs), dict(s._span_counts),
                len(s.ledger.entries), stack_fingerprint(s.delegator))
    raise AssertionError(f"no fingerprint for {type(s).__name__}")


def make_pair(factory):
    """(arena, closure-oracle) instances of the same stack."""
    return factory("arena"), factory("closure")


# ----------------------------------------------------------------------
# the arena itself
# ----------------------------------------------------------------------
def test_arena_watermark_truncation_and_counter():
    arena = UndoArena()
    d = {"a": 1}
    arena.entries.append((OP_POP, d, "a"))  # outer scope's entry
    mark = arena.mark()
    assert mark == 1
    arena.entries.append((OP_POP, d, "b"))  # inner scope's entry
    arena.seen.add("token")
    # inner scope: replay + truncate back to the watermark
    d["b"] = 2
    arena.rollback(mark)
    assert d == {"a": 1}
    arena.truncate(mark)
    assert len(arena.entries) == 1 and arena.entries_total == 1
    assert arena.seen  # inner truncation leaves shared containers alone
    # outer scope exit clears everything
    arena.truncate()
    assert not arena.entries and not arena.seen
    assert arena.entries_total == 2


def test_replay_dispatches_closures_too():
    calls = []
    d = {"k": "old"}
    replay_entries([lambda: calls.append(1), (OP_POP, d, "k")])
    assert calls == [1] and d == {}


def test_journal_param_validation_and_introspection():
    with pytest.raises(ValueError):
        AlignedReservationScheduler(journal="nope")
    assert AlignedReservationScheduler().journal_impl == "arena"
    assert AlignedReservationScheduler(journal="closure").journal_impl == "closure"
    assert TrimmedReservationScheduler(journal="closure").inner.journal_impl == "closure"
    facade = ReservationScheduler(2, gamma=8, journal="closure")
    assert all(m.journal_impl == "closure" for m in facade.machine_schedulers())


def test_journal_entry_counter_survives_aborted_rebuild():
    """An atomic abort that discards a mid-batch rebuild inner also
    rolls back the rebuild's carry increment — the counter must not
    double count the restored inner's lifetime entries. (The counter
    still grows by the aborted batch's own recorded entries: it counts
    journaling work done, not surviving state.)"""
    sched = TrimmedReservationScheduler(gamma=8, min_n_star=4)
    warm = make_workload(60, seed=29)
    for r in warm:
        sched.apply(r)
    pre_total = sched.journal_entries_total
    pre_carry = sched._journal_entries_carry
    pre_inner_total = sched.inner.journal_entries_total
    bad = [InsertJob(Job(f"g{i}", Window(0, 1 << 10)))
           for i in range(2 * sched.n_star + 4)]
    bad.append(InsertJob(Job("g0", Window(0, 1 << 10))))  # dup -> abort
    result = sched.apply_batch(bad, atomic=True)
    assert result.failed and result.rolled_back
    # the rebuild bumped the carry mid-batch; the abort restored it
    assert sched._journal_entries_carry == pre_carry
    # total grew only by the batch's own journal entries (recorded in
    # the restored inner's arena at abort) — not by a double count of
    # the pre-batch inner's lifetime (which would add >= pre_total)
    batch_entries = sched.inner.journal_entries_total - pre_inner_total
    assert sched.journal_entries_total == pre_total + batch_entries
    assert batch_entries < pre_total


def test_deamortized_counter_exists_and_carries_phases():
    """The deamortized stack exposes the same introspection as every
    other stack, and retired phase inners keep their counts."""
    from repro.reservation.deamortized import DeamortizedReservationScheduler

    sched = DeamortizedReservationScheduler(min_n_star=4)
    seq = make_workload(300, seed=31)
    counts = []
    for r in seq:
        sched.apply(r)
        counts.append(sched.journal_entries_total)
    assert sched.phases_started > 0
    assert counts == sorted(counts)  # monotone: phase swaps drop nothing
    assert counts[-1] > 0
    facade = ReservationScheduler(1, gamma=8, deamortized=True)
    for r in seq[:50]:
        facade.apply(r)
    assert sum(m.journal_entries_total
               for m in facade.machine_schedulers()) > 0


def test_journal_entry_counter_counts_both_modes():
    seq = make_workload(120, seed=21)
    arena, closure = make_pair(
        lambda j: AlignedReservationScheduler(journal=j))
    for r in seq:
        arena.apply(r)
        closure.apply(r)
    assert arena.journal_entries_total > 0
    assert arena.journal_entries_total == closure.journal_entries_total


# ----------------------------------------------------------------------
# failed-request rollback (poisoned schedulers)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 7, 23])
def test_poisoned_request_state_identical(seed):
    """A deep infeasible insert rolls both journals back to the same
    bit-identical pre-request state, then poisons both."""
    seq = make_workload(250, seed=seed)
    arena, closure = make_pair(
        lambda j: AlignedReservationScheduler(journal=j))
    for s in (arena, closure):
        s.insert(Job("fill", Window(0, 1)))  # [0,1) is now full
    for r in seq:
        arena.apply(r)
        closure.apply(r)
    pre = stack_fingerprint(arena)
    assert pre == stack_fingerprint(closure)
    poison = Job(f"poison-{seed}", Window(0, 1))
    for s in (arena, closure):
        with pytest.raises(ReproError):
            s.insert(poison)
        assert s.poisoned
        validate_scheduler(s)
    post = stack_fingerprint(arena)
    assert post == stack_fingerprint(closure)
    # rollback restored everything except the poison flag
    assert post[1][:5] == pre[1][:5] and post[1][6:] == pre[1][6:]


@pytest.mark.parametrize("seed", [3, 11])
def test_random_failing_deletes_and_inserts_identical(seed):
    """Random churn with interleaved invalid requests: both journals
    agree on every success, every failure, and every intermediate
    state fingerprint."""
    rng = random.Random(seed)
    seq = make_workload(300, seed=seed)
    arena, closure = make_pair(
        lambda j: AlignedReservationScheduler(journal=j))
    for i, r in enumerate(seq):
        outcomes = []
        for s in (arena, closure):
            try:
                s.apply(r)
                outcomes.append("ok")
            except ReproError as exc:
                outcomes.append(type(exc).__name__)
        assert outcomes[0] == outcomes[1]
        if outcomes[0] != "ok":
            break
        if rng.random() < 0.1:
            bad = DeleteJob(f"ghost-{i}")
            for s in (arena, closure):
                with pytest.raises(ReproError):
                    s.apply(bad)
        if i % 25 == 0:
            assert stack_fingerprint(arena) == stack_fingerprint(closure)
    assert stack_fingerprint(arena) == stack_fingerprint(closure)


# ----------------------------------------------------------------------
# deep atomic aborts
# ----------------------------------------------------------------------
STACKS = [
    ("aligned", 1, lambda j: AlignedReservationScheduler(journal=j)),
    ("theorem1-m1", 1, lambda j: ReservationScheduler(1, gamma=8, journal=j)),
    ("theorem1-m3", 3, lambda j: ReservationScheduler(3, gamma=8, journal=j)),
]


@pytest.mark.parametrize("name,machines,factory", STACKS)
def test_atomic_abort_state_identical(name, machines, factory):
    """A failing atomic batch aborts both representations to the same
    deep state, equal to a scheduler that never saw the batch; both
    continue to a bit-identical end state."""
    seq = make_workload(420, seed=9, machines=machines)
    prefix, inside, after = seq[:200], seq[200:260], seq[260:]
    arena, closure = make_pair(factory)
    untouched = factory("arena")
    for r in prefix:
        arena.apply(r)
        closure.apply(r)
        untouched.apply(r)
    # duplicate insert fails at the last request — deep abort after the
    # whole burst (trimming rebuilds included) already applied
    bad = inside + [InsertJob(Job("dup", Window(0, 64))),
                    InsertJob(Job("dup", Window(0, 64)))]
    for s in (arena, closure):
        result = s.apply_batch(bad, atomic=True)
        assert result.failed and result.rolled_back
    fp = stack_fingerprint(arena)
    assert fp == stack_fingerprint(closure)
    assert fp[1:] == stack_fingerprint(untouched)[1:]  # same type tag anyway
    for r in inside + after:
        arena.apply(r)
        closure.apply(r)
    assert stack_fingerprint(arena) == stack_fingerprint(closure)


def test_trimming_rebuild_abort_identical():
    """An atomic batch that replaces the trimming inner mid-batch and
    then aborts: the pre-batch inner swaps back identically in both
    representations, and the discarded rebuild inner cost no journal
    entries in either."""
    arena, closure = make_pair(
        lambda j: TrimmedReservationScheduler(gamma=8, min_n_star=4,
                                              journal=j))
    warm = make_workload(60, seed=13)
    for r in warm:
        arena.apply(r)
        closure.apply(r)
    pre = stack_fingerprint(arena)
    assert pre == stack_fingerprint(closure)
    n_star = arena.n_star
    # enough inserts to force a doubling rebuild inside the batch, then
    # a guaranteed failure (duplicate id)
    grow = [InsertJob(Job(f"grow-{i}", Window(0, 1 << 10)))
            for i in range(2 * n_star + 4)]
    bad = grow + [InsertJob(Job("grow-0", Window(0, 1 << 10)))]
    for s in (arena, closure):
        entries_before = s.journal_entries_total
        result = s.apply_batch(bad, atomic=True)
        assert result.failed and result.rolled_back
        assert s.rebuilds == 0 or s.n_star == n_star  # rebuild discarded
        # atomic batches journal interval mutations but the ephemeral
        # rebuild inner records nothing
        assert s.journal_entries_total >= entries_before
    assert stack_fingerprint(arena) == pre
    assert stack_fingerprint(closure) == pre
    # rebuilds still work after the abort, identically
    for r in grow:
        arena.apply(r)
        closure.apply(r)
    assert arena.rebuilds == closure.rebuilds > 0
    assert stack_fingerprint(arena) == stack_fingerprint(closure)


def test_sequential_rebuild_journal_diet_oracle_unchanged():
    """The PR 3 journal-diet equivalence still holds on top of the
    arena: non-atomic rebuilds skip the journal entirely in both
    representations and end bit-identical to the journaled oracle."""
    seq = make_workload(400, seed=17)
    diet = TrimmedReservationScheduler(gamma=8)
    oracle = TrimmedReservationScheduler(gamma=8, journal="closure")
    oracle.rebuild_journal_diet = False  # instance-level: full journaling
    for r in seq:
        diet.apply(r)
        oracle.apply(r)
    assert diet.rebuilds == oracle.rebuilds > 0
    assert stack_fingerprint(diet) == stack_fingerprint(oracle)


# ----------------------------------------------------------------------
# process-worker crash rollback
# ----------------------------------------------------------------------
def test_procworker_crash_rollback_identical():
    """A worker process dying mid-burst rolls the whole burst back to
    the same deep state in both representations (the arena crossing the
    pickle boundary and being reused across bursts), and both recover
    to a bit-identical end state."""
    seq = make_workload(500, seed=19, machines=3)
    prefix, burst, rest = seq[:256], seq[256:288], seq[288:]
    arena, closure = make_pair(
        lambda j: ReservationScheduler(3, gamma=8, journal=j))
    try:
        for s in (arena, closure):
            for chunk in iter_batches(prefix, 32):
                result = s.apply_batch_sharded(chunk, workers="processes")
                assert not result.failed, result.failure
            s.delegator._shard_pool.crash_worker_after(1, 2)
            result = s.apply_batch_sharded(burst, workers="processes")
            assert result.failed and result.rolled_back
            assert isinstance(result.error, WorkerCrashError)
        # sync both back and compare the rolled-back state deeply
        arena.close_shard_workers()
        closure.close_shard_workers()
        assert stack_fingerprint(arena) == stack_fingerprint(closure)
        assert all(m.journal_impl == "closure"
                   for m in closure.machine_schedulers())
        # the same burst retries cleanly on the re-seeded workers
        for s in (arena, closure):
            for chunk in iter_batches(burst + rest, 32):
                result = s.apply_batch_sharded(chunk, workers="processes")
                assert not result.failed, result.failure
        arena.close_shard_workers()
        closure.close_shard_workers()
        assert stack_fingerprint(arena) == stack_fingerprint(closure)
        reference = ReservationScheduler(3, gamma=8)
        for r in seq:
            reference.apply(r)
        assert dict(arena.placements) == dict(reference.placements)
        assert arena.ledger.entries == reference.ledger.entries
    finally:
        arena.close_shard_workers()
        closure.close_shard_workers()


def test_unpickled_scheduler_gets_fresh_arena():
    import pickle

    sched = AlignedReservationScheduler()
    for r in make_workload(80, seed=2):
        sched.apply(r)
    clone = pickle.loads(pickle.dumps(sched))
    assert clone._arena is not sched._arena
    assert not clone._arena.entries and clone._arena.entries_total == 0
    # the restored scheduler journals and rolls back normally
    clone.insert(Job("fill2", Window(2, 3)))
    assert aligned_fingerprint(clone)[:5] != aligned_fingerprint(sched)[:5]


# ----------------------------------------------------------------------
# placement-map journal diet (touched-log rewind replaces per-map entries)
# ----------------------------------------------------------------------
def _counting_scheduler(deltas, **kwargs):
    """Aligned scheduler recording journal-entry deltas per placement
    mutation (only while a request journal is open)."""

    class Counting(AlignedReservationScheduler):
        def _set_placement(self, job_id, slot):
            before = None if self._journal is None else len(self._journal)
            super()._set_placement(job_id, slot)
            if before is not None:
                deltas.append(len(self._journal) - before)

        def _clear_placement(self, job_id, slot):
            before = None if self._journal is None else len(self._journal)
            super()._clear_placement(job_id, slot)
            if before is not None:
                deltas.append(len(self._journal) - before)

    return Counting(**kwargs)


def test_placement_fold_journals_one_entry_not_three():
    """Entry-count pin for the fold: with the diet disabled every
    placement mutation journals exactly ONE combined opcode (previously
    three per-map entries); with the diet on (live touched log) it
    journals none at all."""
    seq = make_workload(200, seed=7)

    diet_deltas: list[int] = []
    diet = _counting_scheduler(diet_deltas)
    full_deltas: list[int] = []
    full = _counting_scheduler(full_deltas)
    full._placement_diet = False

    for r in seq:
        diet.apply(r)
        full.apply(r)

    assert stack_fingerprint(diet) == stack_fingerprint(full)
    # both saw the same (nonzero) placement mutation traffic
    assert len(diet_deltas) == len(full_deltas) > 0
    assert set(diet_deltas) == {0}, "diet must skip placement journaling"
    assert set(full_deltas) == {1}, "fold must journal one combined entry"


@pytest.mark.parametrize("seed", [5, 23])
def test_placement_diet_poisoned_request_identical(seed):
    """A deep infeasible insert rolls the diet scheduler (touched-log
    rewind) and the full-journaling oracle back to bit-identical
    states, in both journal representations."""
    seq = make_workload(250, seed=seed)
    diet = AlignedReservationScheduler(journal="arena")
    full_arena = AlignedReservationScheduler(journal="arena")
    full_arena._placement_diet = False
    full_closure = AlignedReservationScheduler(journal="closure")
    full_closure._placement_diet = False
    scheds = (diet, full_arena, full_closure)
    for s in scheds:
        s.insert(Job("fill", Window(0, 1)))  # [0,1) is now full
    for r in seq:
        for s in scheds:
            s.apply(r)
    poison = Job(f"poison-{seed}", Window(0, 1))
    for s in scheds:
        with pytest.raises(ReproError):
            s.insert(poison)
        assert s.poisoned
        validate_scheduler(s)
    fp = stack_fingerprint(diet)
    assert fp == stack_fingerprint(full_arena)
    assert fp == stack_fingerprint(full_closure)


@pytest.mark.parametrize("name,machines,factory", STACKS)
def test_placement_diet_atomic_abort_identical(name, machines, factory,
                                               monkeypatch):
    """A failing atomic batch aborts to the same deep state with the
    placement diet on (default) and off (full per-map journaling),
    through every scheduler stack."""
    seq = make_workload(420, seed=29, machines=machines)
    prefix, inside, after = seq[:200], seq[200:260], seq[260:]
    bad = inside + [InsertJob(Job("dup", Window(0, 64))),
                    InsertJob(Job("dup", Window(0, 64)))]

    def run(diet: bool):
        monkeypatch.setattr(AlignedReservationScheduler,
                            "_placement_diet", diet)
        s = factory("arena")
        for r in prefix:
            s.apply(r)
        result = s.apply_batch(bad, atomic=True)
        assert result.failed and result.rolled_back
        mid = stack_fingerprint(s)
        for r in inside + after:
            s.apply(r)
        return mid, stack_fingerprint(s)

    assert run(True) == run(False)


def test_placement_diet_procworker_crash_identical(monkeypatch):
    """A worker process dying mid-burst rolls the whole burst back to
    the same deep state with the diet on and off (workers fork with the
    flag applied), and both recover to a bit-identical end state."""
    seq = make_workload(400, seed=31, machines=3)
    prefix, burst, rest = seq[:192], seq[192:224], seq[224:]

    def run(diet: bool):
        monkeypatch.setattr(AlignedReservationScheduler,
                            "_placement_diet", diet)
        s = ReservationScheduler(3, gamma=8, journal="arena")
        try:
            for chunk in iter_batches(prefix, 32):
                result = s.apply_batch_sharded(chunk, workers="processes")
                assert not result.failed, result.failure
            s.delegator._shard_pool.crash_worker_after(1, 2)
            result = s.apply_batch_sharded(burst, workers="processes")
            assert result.failed and result.rolled_back
            assert isinstance(result.error, WorkerCrashError)
            s.close_shard_workers()
            mid = stack_fingerprint(s)
            for chunk in iter_batches(burst + rest, 32):
                result = s.apply_batch_sharded(chunk, workers="processes")
                assert not result.failed, result.failure
            s.close_shard_workers()
            return mid, stack_fingerprint(s)
        finally:
            s.close_shard_workers()

    assert run(True) == run(False)
