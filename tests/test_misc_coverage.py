"""Edge-case coverage across smaller APIs."""

import pytest

from repro.core import Job, Window
from repro.core.costs import CostLedger, diff_placements
from repro.core.job import Placement
from repro.core.schedule import format_schedule
from repro.levels import PAPER_POLICY
from repro.reservation import TrimmedReservationScheduler
from repro.reservation.deamortized import DeamortizedReservationScheduler
from repro.reservation.interval import Interval
from repro.sim import RunResult, sparkline, summarize_series
from repro.sim.driver import run_sequence
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


class TestFormatSchedule:
    def test_explicit_bounds(self):
        jobs = {"a": Job("a", Window(0, 4))}
        text = format_schedule(jobs, {"a": Placement(0, 2)}, 1, lo=0, hi=8)
        assert "slots [0, 8)" in text
        # 8 cells on the machine row
        row = text.splitlines()[1]
        assert row.startswith("m0:")

    def test_window_outside_bounds_clipped(self):
        jobs = {"a": Job("a", Window(0, 16))}
        text = format_schedule(jobs, {"a": Placement(0, 12)}, 1, lo=0, hi=4)
        assert "a" not in text.splitlines()[1]


class TestLevel2Interval:
    def test_enclosing_windows_level2(self):
        span = PAPER_POLICY.interval_span(2)
        iv = Interval(level=2, index=3, lo=3 * span, hi=4 * span,
                      enclosing_spans=tuple(PAPER_POLICY.enclosing_spans(2)))
        windows = iv.enclosing_windows()
        # Equation 1 budget: at most L_2/4 = 64 enclosing spans.
        assert 1 <= len(windows) <= span // 4
        for w in windows:
            assert w.contains_window(Window(iv.lo, iv.hi))
            assert PAPER_POLICY.level_of_span(w.span) == 2


class TestTrimmedExtras:
    def test_active_levels_passthrough(self):
        s = TrimmedReservationScheduler(gamma=8)
        s.insert(Job("a", Window(0, 64)))
        s.insert(Job("b", Window(0, 8)))
        levels = s.active_levels()
        assert sum(levels.values()) == 2

    def test_poisoned_passthrough(self):
        s = TrimmedReservationScheduler(gamma=8)
        assert not s.poisoned

    def test_effective_window_shrinks(self):
        s = TrimmedReservationScheduler(gamma=8, min_n_star=4)
        eff = s.effective_window(Window(0, 1 << 16))
        assert eff.span == s.trim_span  # 2 * 8 * 4 = 64


class TestDeamortizedExtras:
    def test_virtual_trim_span(self):
        s = DeamortizedReservationScheduler(gamma=8, min_n_star=4)
        assert s.virtual_trim_span == 8 * 4
        assert not s.in_phase

    def test_ledger_counts_migration_ticks(self):
        s = DeamortizedReservationScheduler(gamma=8, min_n_star=4)
        for i in range(10):
            s.insert(Job(i, Window(0, 1 << 10)))
        # phase ticks moved settled jobs; their moves were ledgered
        assert s.phases_started >= 1
        assert s.ledger.total_reallocations >= 2


class TestReportingEdges:
    def test_sparkline_zero_values(self):
        text = sparkline([0.0, 0.0])
        assert text.count("|") == 2

    def test_summarize_series_growth(self):
        out = summarize_series([1, 2, 4, 8], [1, 2, 4, 8])
        assert out["growth_factor"] == 8.0
        out0 = summarize_series([1, 2, 4, 8], [0, 0, 1, 2])
        assert out0["growth_factor"] == float("inf")

    def test_run_result_failed_summary(self):
        r = RunResult("x", CostLedger(), 3, 0.5, failed=True,
                      failure="Boom: y")
        assert r.summary["FAILED"] == "Boom: y"


class TestLedgerExtras:
    def test_worst_requests_ordering(self):
        ledger = CostLedger()
        for moved in (1, 5, 3):
            before = {f"j{i}": Placement(0, i) for i in range(moved)}
            after = {f"j{i}": Placement(0, i + 100) for i in range(moved)}
            ledger.record(diff_placements(before, after, kind="insert",
                                          subject="s", n_active=1, max_span=2))
        worst = ledger.worst_requests(2)
        assert [w.reallocation_cost for w in worst] == [5, 3]

    def test_percentile_bounds_checked(self):
        ledger = CostLedger()
        ledger.record(diff_placements({}, {}, kind="insert", subject="s",
                                      n_active=1, max_span=1))
        with pytest.raises(ValueError):
            ledger.percentile_reallocation(101)


class TestDriverNames:
    def test_custom_run_name(self):
        cfg = AlignedWorkloadConfig(num_requests=10, horizon=64, max_span=64)
        seq = random_aligned_sequence(cfg, seed=0)
        from repro.reservation import AlignedReservationScheduler
        result = run_sequence(AlignedReservationScheduler(), seq,
                              name="custom")
        assert result.scheduler_name == "custom"
        assert result.summary["scheduler"] == "custom"
