"""The runtime journal sanitizer and its pairing with exception-flow.

The state-integrity story has two halves: the static ``exception-flow``
rule proves journal-before-mutation ordering on the AST, and the
``arena-sanitize`` journal mode proves it at runtime with checking
container proxies. This module tests both halves against the *same*
seeded fault — deleting the ``_apply_insert`` journal ack — so neither
oracle can be vacuous: the static rule must flag the mutated source and
the sanitizer must raise on the mutated runtime, while both stay silent
on the clean tree.

It also pins the sanitizer's zero-overhead-of-meaning contract: a full
four-backend differential run under ``REPRO_SANITIZE=1`` must produce
fingerprints bit-identical to the plain arena run (and no reports).
"""

from __future__ import annotations

import inspect
import pickle

import pytest

import repro.reservation.scheduler as scheduler_module
from repro.analysis.sanitize import (
    SanitizedDict,
    UnjournaledMutationError,
    sanitize_enabled,
)
from repro.analysis.staticcheck import analyze_source, resolve_rules
from repro.core.api import ReservationScheduler
from repro.core.job import Job
from repro.core.requests import DeleteJob, InsertJob
from repro.core.window import Window
from repro.levels.policy import PAPER_POLICY
from repro.reservation import AlignedReservationScheduler

from test_backend_differential import BACKENDS, mixed_churn, run_backend

#: the seeded fault site: the `_apply_insert` journal ack for the level
#: map (the identical `_apply_delete` line is the second occurrence)
ACK_NEEDLE = "            self._jdict(self._job_levels, job.id)\n"


def aligned_sanitized() -> AlignedReservationScheduler:
    return AlignedReservationScheduler(PAPER_POLICY, journal="arena-sanitize")


# ---------------------------------------------------------------------------
# seeded fault injection: the same deleted ack, caught by both oracles
# ---------------------------------------------------------------------------

class TestSeededFaultInjection:
    def scheduler_source(self) -> str:
        return inspect.getsource(scheduler_module)

    def exc_findings(self, source: str):
        report = analyze_source(
            source, "reservation/scheduler.py",
            rules=resolve_rules(["exception-flow"]))
        return [(f.code, f.context) for f in report.findings
                if f.code == "EXC001"]

    def test_static_rule_flags_the_deleted_ack(self):
        source = self.scheduler_source()
        assert source.count(ACK_NEEDLE) == 2, (
            "fault-injection needle drifted; update ACK_NEEDLE to the "
            "_apply_insert/_apply_delete _jdict(self._job_levels, ...) line")
        assert self.exc_findings(source) == [], (
            "clean tree must be EXC001-free or the injection test proves "
            "nothing")
        mutated = source.replace(ACK_NEEDLE, "", 1)
        assert self.exc_findings(mutated) == [
            ("EXC001", "AlignedReservationScheduler._apply_insert")]

    @pytest.mark.parametrize("stack", ["aligned", "theorem1-m1", "theorem1-m3"])
    def test_sanitizer_catches_the_same_fault_at_runtime(self, monkeypatch,
                                                         stack):
        monkeypatch.setattr(
            AlignedReservationScheduler, "_jdict",
            lambda self, d, key: None)
        if stack == "aligned":
            sched = aligned_sanitized()
        else:
            machines = 1 if stack == "theorem1-m1" else 3
            sched = ReservationScheduler(machines, gamma=8,
                                         journal="arena-sanitize")
        with pytest.raises(UnjournaledMutationError):
            for i in range(8):  # several inserts: the first journaled
                sched.insert(Job(f"j{i}", Window(0, 64)))  # dict op raises

    def test_without_the_fault_the_same_stacks_run_clean(self):
        for sched in (aligned_sanitized(),
                      ReservationScheduler(1, gamma=8,
                                           journal="arena-sanitize"),
                      ReservationScheduler(3, gamma=8,
                                           journal="arena-sanitize")):
            for i in range(8):
                sched.insert(Job(f"j{i}", Window(0, 64)))
            sched.delete("j3")
            assert "j3" not in sched.placements
            assert len(sched.placements) == 7


# ---------------------------------------------------------------------------
# the sanitize journal mode itself
# ---------------------------------------------------------------------------

class TestSanitizeMode:
    def test_env_switch_upgrades_arena_schedulers(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        sched = ReservationScheduler(3, gamma=8)
        assert sched.journal_impl == "arena-sanitize"
        aligned = AlignedReservationScheduler(PAPER_POLICY)
        assert isinstance(aligned._placements, SanitizedDict)

    def test_env_switch_off_leaves_plain_dicts(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        aligned = AlignedReservationScheduler(PAPER_POLICY)
        assert not isinstance(aligned._placements, SanitizedDict)

    def test_explicit_closure_journal_is_not_upgraded(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sched = ReservationScheduler(1, gamma=8, journal="closure")
        assert sched.journal_impl == "closure"

    def test_proxies_survive_pickle_and_stay_armed(self):
        sched = aligned_sanitized()
        for i in range(6):
            sched.insert(Job(f"j{i}", Window(0, 64)))
        restored = pickle.loads(pickle.dumps(sched))
        assert isinstance(restored._placements, SanitizedDict)
        assert isinstance(restored.slot_job, SanitizedDict)
        assert restored._placements._owner is restored
        assert dict(restored.placements) == dict(sched.placements)
        # the restored instance still schedules (and still checks)
        restored.insert(Job("post", Window(0, 64)))
        restored.delete("j2")
        assert "post" in restored.placements and "j2" not in restored.placements

    def test_atomic_batches_run_clean_under_sanitize(self):
        sched = ReservationScheduler(3, gamma=8, journal="arena-sanitize")
        result = sched.apply_batch(
            [InsertJob(Job(f"a{i}", Window(0, 64))) for i in range(10)],
            atomic=True)
        assert not result.failed
        result = sched.apply_batch(
            [DeleteJob("a1"), InsertJob(Job("b", Window(0, 64))),
             DeleteJob("a7")],
            atomic=True)
        assert not result.failed
        assert len(sched.placements) == 9

    def test_direct_unjournaled_poke_is_reported(self):
        sched = aligned_sanitized()
        sched.insert(Job("j0", Window(0, 64)))
        sched._journal_acquire()
        try:
            with pytest.raises(UnjournaledMutationError):
                sched._placements["j0"] = None
        finally:
            sched._journal_release()

    def test_mutation_outside_any_scope_is_legal(self):
        sched = aligned_sanitized()
        sched.insert(Job("j0", Window(0, 64)))
        # no open request or batch scope: rollback cannot be wrong here
        sched._placements.pop("j0")
        sched._placements["j0"] = None


# ---------------------------------------------------------------------------
# differential: four backends under the sanitizer, zero reports,
# fingerprints identical to the plain arena run
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("machines,batch_size,seed", [(1, 16, 0), (3, 16, 3)])
def test_sanitized_differential_matches_plain_arena(monkeypatch, machines,
                                                    batch_size, seed):
    seq = mixed_churn(160, seed, machines, 0.35)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    reference = run_backend(seq, "sequential", machines=machines,
                            batch_size=batch_size, atomic=True)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    for backend in BACKENDS:
        got = run_backend(seq, backend, machines=machines,
                          batch_size=batch_size, atomic=True)
        assert got == reference, (
            f"sanitized {backend} diverged from the plain arena run")


@pytest.mark.parametrize("machines,batch_size,seed", [(1, 16, 0), (3, 16, 3)])
def test_sanitized_differential_diet_off_matches(monkeypatch, machines,
                                                 batch_size, seed):
    """The placement-diet oracle mode (full per-map journaling) runs
    clean under the sanitizer and stays bit-identical to the default
    diet run — the sanitizer accepts both the journaled and the
    touched-log-covered placement protocols."""
    seq = mixed_churn(160, seed, machines, 0.35)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    reference = run_backend(seq, "sequential", machines=machines,
                            batch_size=batch_size, atomic=True)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.setattr(AlignedReservationScheduler, "_placement_diet", False)
    got = run_backend(seq, "sequential", machines=machines,
                      batch_size=batch_size, atomic=True)
    assert got == reference, (
        "sanitized diet-off run diverged from the plain diet run")
