"""Coverage for event tracing, custom level policies, and facade variants."""

import pytest

from repro.core import Event, EventTracer, Job, NullTracer, Window, verify_schedule
from repro.core.api import ReservationScheduler
from repro.levels import LevelPolicy, make_policy
from repro.reservation import AlignedReservationScheduler, validate_scheduler
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


class TestEventTracer:
    def test_counts_and_events(self):
        t = EventTracer()
        t.emit("place", "a", 1, "slot 3")
        t.emit("place", "b", 0)
        t.emit("move", "a", 1)
        assert t.count("place") == 2
        assert t.count("move") == 1
        assert t.count("ghost") == 0
        assert len(t) == 3
        assert list(t)[0] == Event("place", "a", 1, "slot 3")
        assert t.breakdown() == {"move": 1, "place": 2}

    def test_counter_only_mode(self):
        t = EventTracer(keep_events=False)
        t.emit("place", "a")
        assert t.count("place") == 1
        assert len(t) == 0

    def test_clear(self):
        t = EventTracer()
        t.emit("x")
        t.clear()
        assert len(t) == 0 and t.breakdown() == {}

    def test_null_tracer(self):
        t = NullTracer()
        t.emit("anything", "a", 1)
        assert t.count("anything") == 0
        assert t.breakdown() == {}

    def test_scheduler_move_accounting_matches_ledger(self):
        """Traced moves+displacements >= observed rescheduled jobs."""
        tracer = EventTracer()
        s = AlignedReservationScheduler(tracer=tracer)
        cfg = AlignedWorkloadConfig(num_requests=120, horizon=512,
                                    max_span=512, gamma=8,
                                    delete_fraction=0.3)
        for req in random_aligned_sequence(cfg, seed=2):
            s.apply(req)
        traced_moves = sum(
            tracer.count(a) for a in
            ("move", "displace-swap", "base-cascade", "displace")
        )
        assert traced_moves >= s.ledger.total_reallocations


class TestCustomPolicies:
    def test_alternative_valid_tower(self):
        # L1=64 -> L2=2^16: satisfies the Equation-1 budget with equality.
        policy = make_policy(1 << 16, l1=64, shift=4)
        assert policy.thresholds[:2] == (64, 1 << 16)
        assert policy.level_of_span(64) == 0
        assert policy.level_of_span(128) == 1
        assert policy.level_of_span(1 << 16) == 1

    def test_scheduler_under_alternative_policy(self):
        policy = make_policy(1 << 16, l1=64, shift=4)
        s = AlignedReservationScheduler(policy)
        cfg = AlignedWorkloadConfig(num_requests=150, horizon=1 << 11,
                                    max_span=1 << 11, gamma=8,
                                    delete_fraction=0.35)
        for req in random_aligned_sequence(cfg, seed=4):
            s.apply(req)
            validate_scheduler(s)
            verify_schedule(s.jobs, s.placements, 1)

    def test_costs_comparable_across_policies(self):
        cfg = AlignedWorkloadConfig(num_requests=200, horizon=1 << 11,
                                    max_span=1 << 11, gamma=8,
                                    delete_fraction=0.35)
        seq = random_aligned_sequence(cfg, seed=5)
        paper = AlignedReservationScheduler()
        alt = AlignedReservationScheduler(make_policy(1 << 16, l1=64, shift=4))
        for req in seq:
            paper.apply(req)
            alt.apply(req)
        assert paper.ledger.max_reallocation <= 12
        assert alt.ledger.max_reallocation <= 12

    def test_policy_repr_roundtrip_fields(self):
        p = LevelPolicy((32, 256))
        assert p.max_span == 256
        assert p.num_reservation_levels == 1
        assert p.enclosing_spans(1) == [64, 128, 256]


class TestFacadeVariants:
    def run_churn(self, sched, *, min_span=1, requests=200, seed=6):
        cfg = AlignedWorkloadConfig(
            num_requests=requests, num_machines=sched.num_machines,
            gamma=32, horizon=1 << 11, max_span=1 << 11,
            min_span=min_span, delete_fraction=0.35,
        )
        for req in random_aligned_sequence(cfg, seed=seed):
            sched.apply(req)
            verify_schedule(sched.jobs, sched.placements, sched.num_machines)
        return sched

    def test_deamortized_facade_single_machine(self):
        sched = self.run_churn(
            ReservationScheduler(1, gamma=8, deamortized=True), min_span=2)
        assert sched.ledger.max_reallocation <= 10

    def test_deamortized_facade_multi_machine(self):
        sched = self.run_churn(
            ReservationScheduler(2, gamma=8, deamortized=True), min_span=2)
        assert sched.ledger.max_migration <= 1
        sched.check_balance()

    def test_deamortized_beats_amortized_worst_case(self):
        amort = self.run_churn(ReservationScheduler(1, gamma=8), min_span=2)
        deam = self.run_churn(
            ReservationScheduler(1, gamma=8, deamortized=True), min_span=2)
        assert deam.ledger.max_reallocation <= amort.ledger.max_reallocation
