"""Differential tests: schedulers checked against each other and the oracle.

For any request sequence the exact schedulers accept, every scheduler
must agree on *feasibility* (they all maintain a feasible schedule or
all fail); and whenever the offline oracle says the active set is
feasible, the exact schedulers must have a schedule. These tests drive
random unaligned churn through the full stack and cross-check.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import EDFRebuildScheduler, MinChangeMatchingScheduler
from repro.core import Job, Window, verify_schedule
from repro.core.api import ReservationScheduler
from repro.feasibility import check_feasible, density_gamma


def unaligned_churn(seed, requests=80, horizon=512, slack=6):
    """Random unaligned sequence kept loosely underallocated via density."""
    rng = np.random.default_rng(seed)
    events = []
    active = {}
    uid = 0
    while len(events) < requests:
        if active and rng.random() < 0.3:
            job_id = list(active)[int(rng.integers(len(active)))]
            del active[job_id]
            events.append(("del", job_id, None))
            continue
        span = int(rng.integers(4, horizon // 8))
        start = int(rng.integers(0, horizon - span))
        job = Job(f"u{uid}", Window(start, start + span))
        uid += 1
        trial = dict(active)
        trial[job.id] = job
        if density_gamma(trial, 1) >= slack:
            active[job.id] = job
            events.append(("ins", job.id, job))
    return events


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_all_schedulers_stay_feasible_on_same_stream(seed):
    events = unaligned_churn(seed)
    reservation = ReservationScheduler(1, gamma=8)
    edf = EDFRebuildScheduler(1)
    for op, job_id, job in events:
        if op == "ins":
            reservation.insert(job)
            edf.insert(job)
        else:
            reservation.delete(job_id)
            edf.delete(job_id)
        for sched in (reservation, edf):
            verify_schedule(sched.jobs, sched.placements, 1)
        # and the oracle agrees the active set is feasible
        assert check_feasible(dict(reservation.jobs), 1)


@pytest.mark.parametrize("seed", [1, 2])
def test_matching_cost_lower_bounds_reservation_per_request(seed):
    """Per request, min-change matching is by definition <= any other
    scheduler's cost *for that step from the same configuration*. Across
    whole runs from their own configurations the totals can order either
    way, but matching must never be forced above n per request while the
    reservation stays O(log*)."""
    events = unaligned_churn(seed, requests=50)
    matching = MinChangeMatchingScheduler(1)
    reservation = ReservationScheduler(1, gamma=8, trim=False)
    for op, job_id, job in events:
        if op == "ins":
            cm = matching.insert(job)
            cr = reservation.insert(job)
        else:
            cm = matching.delete(job_id)
            cr = reservation.delete(job_id)
        n = max(1, len(matching.jobs))
        assert cm.reallocation_cost <= n
        assert cr.reallocation_cost <= 16  # log* constant at this scale


def test_reservation_handles_everything_edf_handles_when_slack():
    """On 8-underallocated streams the reservation scheduler never gives
    up where the exact scheduler succeeds."""
    for seed in range(3):
        events = unaligned_churn(seed, requests=60, slack=8)
        reservation = ReservationScheduler(1, gamma=8)
        edf = EDFRebuildScheduler(1)
        for op, job_id, job in events:
            if op == "ins":
                edf.insert(job)       # exact: must succeed (feasible)
                reservation.insert(job)  # must not raise given slack
            else:
                edf.delete(job_id)
                reservation.delete(job_id)
        assert set(reservation.jobs) == set(edf.jobs)
