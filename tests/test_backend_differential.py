"""Differential fuzz harness across all four drive backends.

The contract every backend must satisfy (and the property every prior
PR pinned with hand-written cases): sequential apply, batched
``apply_batch`` (atomic or not), sharded-serial, and sharded-process
execution of the same request sequence produce identical placements,
ledger entries, max-span tracking, and active-job sets.

This harness scales that from hand-written cases to seeded random
sequences: mixed insert/delete churn at several machine counts, batch
sizes, and atomicity settings, driven through all four backends and
compared field by field. On a mismatch it *shrinks* by bisecting the
sequence prefix to the shortest failing length before reporting, so a
regression lands with a minimal repro, not a 400-request haystack.
"""

from __future__ import annotations

import pytest

from repro.core.api import ReservationScheduler
from repro.core.requests import iter_batches
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence
from repro.workloads.scenarios import iter_burst_arrivals, iter_churn_storm

BACKENDS = ("sequential", "batched", "sharded-serial", "sharded-process")


def drive(sched, requests, backend, *, batch_size, atomic):
    """Push ``requests`` through ``sched`` via one backend flavor."""
    if backend == "sequential":
        for r in requests:
            sched.apply(r)
        return
    try:
        for burst in iter_batches(requests, batch_size):
            if backend == "batched":
                result = sched.apply_batch(burst, atomic=atomic)
            elif backend == "sharded-serial":
                result = sched.apply_batch_sharded(burst)
            else:
                result = sched.apply_batch_sharded(burst, workers="processes")
            if result.failed:
                raise AssertionError(
                    f"{backend} burst failed: {result.failure}")
    finally:
        sched.close_shard_workers()


def fingerprint(sched):
    """Everything the equivalence contract pins, comparable by ==."""
    return (
        dict(sched.placements),
        list(sched.ledger.entries),
        sched._max_span_cache,
        dict(sched.jobs),
    )


def run_backend(seq, backend, *, machines, batch_size, atomic):
    sched = ReservationScheduler(machines, gamma=8)
    drive(sched, seq, backend, batch_size=batch_size, atomic=atomic)
    sched.check_balance()
    return fingerprint(sched)


def disagreeing_backends(seq, *, machines, batch_size, atomic):
    """Backends whose fingerprint differs from sequential's (or None)."""
    reference = run_backend(seq, "sequential", machines=machines,
                            batch_size=batch_size, atomic=atomic)
    bad = [b for b in BACKENDS[1:]
           if run_backend(seq, b, machines=machines, batch_size=batch_size,
                          atomic=atomic) != reference]
    return bad or None


def shrink_failing_prefix(seq, *, machines, batch_size, atomic):
    """Bisect to the shortest prefix that still disagrees.

    Precondition: the full sequence disagrees. Bisection is sound here
    because a disagreement at prefix p stays observable at p (each probe
    re-runs all backends from scratch on exactly that prefix); what it
    finds is the shortest *prefix*, not a minimal subsequence — good
    enough to point a debugger at the first divergent request.
    """
    lo, hi = 0, len(seq)  # invariant: hi disagrees; lo (if probed) agrees
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if disagreeing_backends(seq[:mid], machines=machines,
                                batch_size=batch_size, atomic=atomic):
            hi = mid
        else:
            lo = mid
    return hi


def assert_backends_agree(seq, *, machines, batch_size, atomic, label):
    bad = disagreeing_backends(seq, machines=machines,
                               batch_size=batch_size, atomic=atomic)
    if bad is None:
        return
    prefix = shrink_failing_prefix(seq, machines=machines,
                                   batch_size=batch_size, atomic=atomic)
    raise AssertionError(
        f"backend divergence [{label}]: {bad} disagree with sequential "
        f"(m={machines}, batch_size={batch_size}, atomic={atomic}); "
        f"shrunk to prefix of length {prefix} "
        f"(last request: {seq[prefix - 1]!r})"
    )


def mixed_churn(requests, seed, machines, delete_fraction):
    cfg = AlignedWorkloadConfig(
        num_requests=requests, num_machines=machines, gamma=8,
        horizon=1 << 11, max_span=1 << 11,
        delete_fraction=delete_fraction,
    )
    return list(random_aligned_sequence(cfg, seed=seed))


# The ISSUE's axes — m in {1, 3, 4}, batch sizes {1, 16, 64}, atomic
# on/off — covered by a curated matrix (the full cross-product would
# quadruple runtime without adding coverage: atomicity only affects the
# batched backend, and every axis value appears at least twice).
MATRIX = [
    # (machines, batch_size, atomic, delete_fraction, seed)
    (1, 16, False, 0.35, 0),
    (1, 64, True, 0.5, 1),
    (3, 1, False, 0.2, 2),
    (3, 16, True, 0.35, 3),
    (3, 64, False, 0.5, 4),
    (4, 16, True, 0.5, 5),
    (4, 64, False, 0.35, 6),
    (4, 1, True, 0.35, 7),
]


@pytest.mark.parametrize("machines,batch_size,atomic,delete_fraction,seed",
                         MATRIX)
def test_differential_mixed_churn(machines, batch_size, atomic,
                                  delete_fraction, seed):
    seq = mixed_churn(360, seed, machines, delete_fraction)
    assert_backends_agree(seq, machines=machines, batch_size=batch_size,
                          atomic=atomic,
                          label=f"mixed-churn seed {seed}")


@pytest.mark.parametrize("machines,batch_size", [(3, 64), (4, 16)])
def test_differential_scenario_shapes(machines, batch_size):
    """Scenario-shaped streams (storms, focused bursts) through all four
    backends — the shapes that stress delete-side rebalancing and the
    delegator's per-window grouping hardest."""
    from itertools import islice

    storm = list(islice(iter_churn_storm(requests=400, seed=11,
                                         num_machines=machines), 400))
    assert_backends_agree(storm, machines=machines, batch_size=batch_size,
                          atomic=True, label="churn-storm")
    bursts = list(islice(iter_burst_arrivals(requests=400, seed=12,
                                             num_machines=machines,
                                             burst_size=batch_size), 400))
    assert_backends_agree(bursts, machines=machines, batch_size=batch_size,
                          atomic=False, label="burst-arrivals")


def test_shrinker_finds_short_prefixes():
    """The bisector itself: given an artificial disagreement predicate,
    it must return the exact shortest failing prefix."""
    seq = mixed_churn(100, 0, 1, 0.3)

    # Monkey-level check without monkeypatching the module: emulate the
    # bisection contract on a predicate that "fails" from index 37 on.
    lo, hi = 0, len(seq)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if mid >= 37:
            hi = mid
        else:
            lo = mid
    assert hi == 37
