"""Differential fuzz harness across all four drive backends.

The contract every backend must satisfy (and the property every prior
PR pinned with hand-written cases): sequential apply, batched
``apply_batch`` (atomic or not), sharded-serial, and sharded-process
execution of the same request sequence produce identical placements,
ledger entries, max-span tracking, and active-job sets.

This harness scales that from hand-written cases to seeded random
sequences: mixed insert/delete churn at several machine counts, batch
sizes, and atomicity settings, driven through all four backends and
compared field by field. On a mismatch it *shrinks* by bisecting the
sequence prefix to the shortest failing length before reporting — and
names WHICH comparison stage diverged (placements vs ledger vs
max-span vs job-table vs bound) — so a regression lands with a minimal
localized repro, not a 400-request haystack.

Two comparison modes exist, mirroring the two batch semantics:

- **strict** (the default): full bit-identical equivalence — all four
  fingerprint stages must match the sequential reference exactly.
- **bounds** (``semantics="flexible"``): placements are free to differ;
  the contract drops to identical job tables and max-span tracking, a
  shape-identical ledger (one entry per request, same kind/subject at
  every arrival position), every per-request measured cost within the
  Theorem 1 bound (:func:`bound_violations` — strict mode is the
  bounded oracle the caps were calibrated against), and a clean
  incremental-verifier run wired over every flexible drive.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import theorem1_cost_bound
from repro.core.api import ReservationScheduler
from repro.core.requests import iter_batches
from repro.sim.incremental import IncrementalVerifier
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence
from repro.workloads.scenarios import iter_burst_arrivals, iter_churn_storm

BACKENDS = ("sequential", "batched", "sharded-serial", "sharded-process")

#: the comparison stages, in fingerprint-tuple order (satellite of the
#: flexible-semantics work: failures name the diverging stage)
FINGERPRINT_STAGES = ("placements", "ledger", "max-span", "job-table")

#: Theorem 1 constant used by the bounds mode (see ``theorem1_cost_bound``)
BOUND_CONSTANT = 3.0


def drive(sched, requests, backend, *, batch_size, atomic,
          semantics="strict", verifier=None):
    """Push ``requests`` through ``sched`` via one backend flavor."""
    if backend == "sequential":
        for r in requests:
            cost = sched.apply(r)
            if verifier is not None:
                verifier.observe(sched, cost)
        return
    try:
        for burst in iter_batches(requests, batch_size):
            if backend == "batched":
                result = sched.apply_batch(burst, atomic=atomic,
                                           semantics=semantics)
            elif backend == "sharded-serial":
                result = sched.apply_batch_sharded(burst, semantics=semantics)
            else:
                result = sched.apply_batch_sharded(burst, workers="processes",
                                                   semantics=semantics)
            if result.failed:
                raise AssertionError(
                    f"{backend} burst failed: {result.failure}")
            if verifier is not None:
                verifier.verify_batch(sched, result)
    finally:
        sched.close_shard_workers()


def fingerprint(sched):
    """Everything the equivalence contract pins, comparable by ==."""
    return (
        dict(sched.placements),
        list(sched.ledger.entries),
        sched._max_span_cache,
        dict(sched.jobs),
    )


def bound_violations(entries, *, constant=BOUND_CONSTANT):
    """Theorem 1 bound check over a run's ledger entries.

    Three claims, calibrated against strict-mode runs (the oracle):

    - at most one migration per request (the delegation layer's hard
      guarantee);
    - per request, reallocations <= ``constant * min(log* n, log* Delta)
      + n_active`` — the additive ``n_active`` is the trimming layer's
      rebuild allowance (a rebuild relocates every survivor at most
      once, amortized O(1) but a Theta(n) spike on the trigger);
    - amortized, total reallocations <= the summed per-request Theorem 1
      budget (strict runs measure at ~3% of it; rebuild spikes must
      stay amortized away).
    """
    violations = []
    total = 0.0
    budget = 0.0
    for i, cost in enumerate(entries):
        bound = theorem1_cost_bound(max(1, cost.n_active),
                                    max(1, cost.max_span), constant)
        if cost.migration_cost > 1:
            violations.append(
                f"request {i} ({cost.kind} {cost.subject!r}): "
                f"{cost.migration_cost} migrations > 1")
        cap = bound + cost.n_active
        if cost.reallocation_cost > cap:
            violations.append(
                f"request {i} ({cost.kind} {cost.subject!r}): "
                f"{cost.reallocation_cost} reallocations > per-request "
                f"cap {cap:.0f} (bound {bound:.0f} + n_active "
                f"{cost.n_active})")
        total += cost.reallocation_cost
        budget += bound
    if entries and total > budget:
        violations.append(
            f"amortized: {total:.0f} total reallocations > summed "
            f"Theorem 1 budget {budget:.0f}")
    return violations


def diverging_stages(reference, candidate, *, semantics="strict"):
    """Names of the fingerprint stages where ``candidate`` diverges.

    Strict mode compares all four stages bit for bit. Bounds mode
    (flexible semantics) frees placements and relaxes the ledger to
    shape equality — same length, same (kind, subject) at every arrival
    position — while max-span and the job table stay exact.
    """
    stages = []
    ref_placements, ref_ledger, ref_span, ref_jobs = reference
    placements, ledger, span, jobs = candidate
    if semantics == "strict":
        if placements != ref_placements:
            stages.append("placements")
        if ledger != ref_ledger:
            stages.append("ledger")
    else:
        if len(ledger) != len(ref_ledger) or any(
                (a.kind, a.subject) != (b.kind, b.subject)
                for a, b in zip(ledger, ref_ledger)):
            stages.append("ledger")
    if span != ref_span:
        stages.append("max-span")
    if jobs != ref_jobs:
        stages.append("job-table")
    return stages


def run_backend(seq, backend, *, machines, batch_size, atomic,
                semantics="strict", verify=False):
    sched = ReservationScheduler(machines, gamma=8)
    verifier = (IncrementalVerifier(machines, where=f"{backend}/{semantics}")
                if verify else None)
    drive(sched, seq, backend, batch_size=batch_size, atomic=atomic,
          semantics=semantics, verifier=verifier)
    if verifier is not None:
        verifier.full_audit(sched)
    sched.check_balance()
    return fingerprint(sched)


def disagreeing_backends(seq, *, machines, batch_size, atomic,
                         semantics="strict"):
    """Backends diverging from strict-sequential, with their stages.

    Returns ``{backend: [stage, ...]}`` or None when everything agrees.
    The reference is always the strict sequential run — flexible
    backends are compared against it in bounds mode, with the extra
    ``"bound"`` stage covering :func:`bound_violations` and the
    incremental verifier wired over every flexible drive (a verifier
    failure raises directly with its own diagnosis).
    """
    reference = run_backend(seq, "sequential", machines=machines,
                            batch_size=batch_size, atomic=atomic)
    flexible = semantics == "flexible"
    bad = {}
    for backend in BACKENDS[1:]:
        candidate = run_backend(seq, backend, machines=machines,
                                batch_size=batch_size, atomic=atomic,
                                semantics=semantics, verify=flexible)
        stages = diverging_stages(reference, candidate, semantics=semantics)
        if flexible and bound_violations(candidate[1]):
            stages.append("bound")
        if stages:
            bad[backend] = stages
    return bad or None


def shrink_failing_prefix(seq, *, machines, batch_size, atomic,
                          semantics="strict"):
    """Bisect to the shortest prefix that still disagrees.

    Precondition: the full sequence disagrees. Bisection is sound here
    because a disagreement at prefix p stays observable at p (each probe
    re-runs all backends from scratch on exactly that prefix); what it
    finds is the shortest *prefix*, not a minimal subsequence — good
    enough to point a debugger at the first divergent request.
    """
    lo, hi = 0, len(seq)  # invariant: hi disagrees; lo (if probed) agrees
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if disagreeing_backends(seq[:mid], machines=machines,
                                batch_size=batch_size, atomic=atomic,
                                semantics=semantics):
            hi = mid
        else:
            lo = mid
    return hi


def assert_backends_agree(seq, *, machines, batch_size, atomic, label,
                          semantics="strict"):
    bad = disagreeing_backends(seq, machines=machines,
                               batch_size=batch_size, atomic=atomic,
                               semantics=semantics)
    if bad is None:
        return
    prefix = shrink_failing_prefix(seq, machines=machines,
                                   batch_size=batch_size, atomic=atomic,
                                   semantics=semantics)
    shrunk = disagreeing_backends(seq[:prefix], machines=machines,
                                  batch_size=batch_size, atomic=atomic,
                                  semantics=semantics)
    stages = "; ".join(f"{b}: {', '.join(s)}"
                       for b, s in (shrunk or bad).items())
    raise AssertionError(
        f"backend divergence [{label}, semantics={semantics}] "
        f"(m={machines}, batch_size={batch_size}, atomic={atomic}); "
        f"shrunk to prefix of length {prefix} "
        f"(last request: {seq[prefix - 1]!r}); diverging stages: {stages}"
    )


def mixed_churn(requests, seed, machines, delete_fraction):
    cfg = AlignedWorkloadConfig(
        num_requests=requests, num_machines=machines, gamma=8,
        horizon=1 << 11, max_span=1 << 11,
        delete_fraction=delete_fraction,
    )
    return list(random_aligned_sequence(cfg, seed=seed))


# The ISSUE's axes — m in {1, 3, 4}, batch sizes {1, 16, 64}, atomic
# on/off — covered by a curated matrix (the full cross-product would
# quadruple runtime without adding coverage: atomicity only affects the
# batched backend, and every axis value appears at least twice).
MATRIX = [
    # (machines, batch_size, atomic, delete_fraction, seed)
    (1, 16, False, 0.35, 0),
    (1, 64, True, 0.5, 1),
    (3, 1, False, 0.2, 2),
    (3, 16, True, 0.35, 3),
    (3, 64, False, 0.5, 4),
    (4, 16, True, 0.5, 5),
    (4, 64, False, 0.35, 6),
    (4, 1, True, 0.35, 7),
]


@pytest.mark.parametrize("machines,batch_size,atomic,delete_fraction,seed",
                         MATRIX)
def test_differential_mixed_churn(machines, batch_size, atomic,
                                  delete_fraction, seed):
    seq = mixed_churn(360, seed, machines, delete_fraction)
    assert_backends_agree(seq, machines=machines, batch_size=batch_size,
                          atomic=atomic,
                          label=f"mixed-churn seed {seed}")


@pytest.mark.parametrize("machines,batch_size", [(3, 64), (4, 16)])
def test_differential_scenario_shapes(machines, batch_size):
    """Scenario-shaped streams (storms, focused bursts) through all four
    backends — the shapes that stress delete-side rebalancing and the
    delegator's per-window grouping hardest."""
    from itertools import islice

    storm = list(islice(iter_churn_storm(requests=400, seed=11,
                                         num_machines=machines), 400))
    assert_backends_agree(storm, machines=machines, batch_size=batch_size,
                          atomic=True, label="churn-storm")
    bursts = list(islice(iter_burst_arrivals(requests=400, seed=12,
                                             num_machines=machines,
                                             burst_size=batch_size), 400))
    assert_backends_agree(bursts, machines=machines, batch_size=batch_size,
                          atomic=False, label="burst-arrivals")


# Flexible semantics: seeded property tests over random churn for all
# four backends x atomic on/off, compared in bounds mode against the
# strict sequential oracle (same shrink-on-failure prefix bisection).
FLEXIBLE_MATRIX = [
    # (machines, batch_size, atomic, delete_fraction, seed)
    (1, 16, False, 0.35, 20),
    (1, 64, True, 0.5, 21),
    (3, 16, True, 0.35, 22),
    (3, 64, False, 0.5, 23),
    (4, 64, True, 0.35, 24),
    (4, 16, False, 0.5, 25),
]


@pytest.mark.parametrize("machines,batch_size,atomic,delete_fraction,seed",
                         FLEXIBLE_MATRIX)
def test_differential_flexible_bounds_mode(machines, batch_size, atomic,
                                           delete_fraction, seed):
    seq = mixed_churn(360, seed, machines, delete_fraction)
    assert_backends_agree(seq, machines=machines, batch_size=batch_size,
                          atomic=atomic, semantics="flexible",
                          label=f"flexible mixed-churn seed {seed}")


@pytest.mark.parametrize("machines,batch_size", [(3, 64), (4, 16)])
def test_differential_flexible_scenario_shapes(machines, batch_size):
    """Flexible semantics on the scenario shapes where joint planning
    actually reorders work: storms (coalesced delete runs) and focused
    bursts (shared-window insert runs)."""
    from itertools import islice

    storm = list(islice(iter_churn_storm(requests=400, seed=31,
                                         num_machines=machines), 400))
    assert_backends_agree(storm, machines=machines, batch_size=batch_size,
                          atomic=True, semantics="flexible",
                          label="flexible churn-storm")
    bursts = list(islice(iter_burst_arrivals(requests=400, seed=32,
                                             num_machines=machines,
                                             burst_size=batch_size), 400))
    assert_backends_agree(bursts, machines=machines, batch_size=batch_size,
                          atomic=False, semantics="flexible",
                          label="flexible burst-arrivals")


def test_strict_oracle_within_bounds():
    """The bounds-mode caps are calibrated so strict mode passes them —
    otherwise the bounds comparison would be vacuous for flexible."""
    for machines, seed in ((1, 40), (3, 41)):
        seq = mixed_churn(400, seed, machines, 0.4)
        reference = run_backend(seq, "sequential", machines=machines,
                                batch_size=1, atomic=False)
        assert bound_violations(reference[1]) == []


def test_diverging_stages_names_each_stage():
    """The stage reporter itself: each fingerprint field maps to its
    named stage, and bounds mode frees exactly the placement stage."""
    from repro.core.costs import RequestCost
    from repro.core.job import Job, Placement
    from repro.core.window import Window

    cost = RequestCost(kind="insert", subject="a", rescheduled=frozenset(),
                       migrated=frozenset(), n_active=1, max_span=4)
    job = Job("a", Window(0, 4))
    ref = ({"a": Placement(0, 0)}, [cost], 4, {"a": job})

    moved = ({"a": Placement(0, 1)}, [cost], 4, {"a": job})
    assert diverging_stages(ref, moved) == ["placements"]
    assert diverging_stages(ref, moved, semantics="flexible") == []

    recosted = RequestCost(kind="insert", subject="a",
                           rescheduled=frozenset({"x"}),
                           migrated=frozenset(), n_active=1, max_span=4)
    assert diverging_stages(ref, (ref[0], [recosted], 4, ref[3])) == ["ledger"]
    # bounds mode keeps the ledger *shape* pinned: a kind/subject
    # mismatch still reports, a cost-only difference does not
    assert diverging_stages(ref, (ref[0], [recosted], 4, ref[3]),
                            semantics="flexible") == []
    other = RequestCost(kind="delete", subject="b", rescheduled=frozenset(),
                        migrated=frozenset(), n_active=1, max_span=4)
    assert diverging_stages(ref, (ref[0], [other], 4, ref[3]),
                            semantics="flexible") == ["ledger"]

    assert diverging_stages(ref, (ref[0], ref[1], 8, ref[3])) == ["max-span"]
    assert diverging_stages(ref, (ref[0], ref[1], 4, {}),
                            semantics="flexible") == ["job-table"]


def test_bound_violations_flags_each_claim():
    from repro.core.costs import RequestCost

    def entry(realloc, migrated, n_active=4, max_span=16):
        return RequestCost(
            kind="insert", subject="x",
            rescheduled=frozenset(f"r{i}" for i in range(realloc)),
            migrated=frozenset(f"m{i}" for i in range(migrated)),
            n_active=n_active, max_span=max_span)

    assert bound_violations([entry(0, 0)]) == []
    assert bound_violations([entry(0, 1)]) == []
    [v] = bound_violations([entry(0, 2)])
    assert "migrations" in v
    # per-request cap: bound(4, 16) = 3*2 = 6, + n_active 4 = 10
    assert any("per-request cap" in v for v in bound_violations([entry(11, 0)]))
    # a rebuild-sized spike under the cap still trips the amortized claim
    assert any("amortized" in v for v in bound_violations([entry(10, 0)]))


def test_shrinker_finds_short_prefixes():
    """The bisector itself: given an artificial disagreement predicate,
    it must return the exact shortest failing prefix."""
    seq = mixed_churn(100, 0, 1, 0.3)

    # Monkey-level check without monkeypatching the module: emulate the
    # bisection contract on a predicate that "fails" from index 37 on.
    lo, hi = 0, len(seq)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if mid >= 37:
            hi = mid
        else:
            lo = mid
    assert hi == 37
