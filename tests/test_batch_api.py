"""Batch-first request API: equivalence, atomicity, and plumbing.

The contract under test (core/base.py module docstring): a committed
``apply_batch`` leaves placements, the per-request ledger, and max-span
tracking bit-identical to sequential ``apply`` over the same requests;
non-atomic batches stop at a failure with sequential semantics; atomic
batches roll back to the exact pre-batch state and leave the scheduler
usable.
"""

from __future__ import annotations

import pytest

from repro.core.api import ReservationScheduler
from repro.core.exceptions import InvalidRequestError, ReproError
from repro.core.job import Job
from repro.core.requests import (
    Batch,
    DeleteJob,
    InsertJob,
    RequestSequence,
    insert,
    iter_batches,
)
from repro.core.window import Window
from repro.multimachine.elastic import ElasticScheduler
from repro.reservation import AlignedReservationScheduler
from repro.reservation.deamortized import DeamortizedReservationScheduler
from repro.reservation.validation import validate_scheduler
from repro.sim import IncrementalVerifier, run_engine, run_sequence
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence
from repro.workloads.scenarios import burst_arrivals_sequence, churn_storm_sequence


def make_workload(num_requests=600, seed=0, machines=1):
    cfg = AlignedWorkloadConfig(
        num_requests=num_requests, num_machines=machines, gamma=8,
        horizon=1 << 11, max_span=1 << 11, delete_fraction=0.35,
    )
    return random_aligned_sequence(cfg, seed=seed)


def assert_equivalent(batched, sequential):
    assert dict(batched.placements) == dict(sequential.placements)
    assert batched.ledger.entries == sequential.ledger.entries
    assert batched._max_span_cache == sequential._max_span_cache
    assert batched.jobs == sequential.jobs


# ----------------------------------------------------------------------
# batch container
# ----------------------------------------------------------------------
def test_batch_container_and_iter_batches():
    seq = make_workload(50, seed=3)
    batches = list(iter_batches(seq, 16))
    assert [len(b) for b in batches] == [16, 16, 16, 2]
    assert sum((list(b) for b in batches), []) == list(seq)
    b = batches[0]
    assert len(b.insert_jobs) + len(b.delete_ids) == len(b)
    assert all(isinstance(j, Job) for j in b.insert_jobs)
    with pytest.raises(InvalidRequestError):
        Batch(["not a request"])
    with pytest.raises(ValueError):
        list(iter_batches(seq, 0))


# ----------------------------------------------------------------------
# equivalence property
# ----------------------------------------------------------------------
SCHEDULER_FACTORIES = [
    ("aligned-raw", 1, lambda m: AlignedReservationScheduler()),
    ("theorem1-m1", 1, lambda m: ReservationScheduler(m, gamma=8)),
    ("theorem1-m3", 3, lambda m: ReservationScheduler(m, gamma=8)),
    ("deamortized", 1, lambda m: ReservationScheduler(m, gamma=8,
                                                      deamortized=True)),
]


@pytest.mark.parametrize("name,machines,factory", SCHEDULER_FACTORIES)
@pytest.mark.parametrize("atomic", [False, True])
def test_apply_batch_matches_sequential(name, machines, factory, atomic):
    """Placements, ledger, and max-span identical across several seeds
    and batch sizes, including batches cut mid-burst."""
    for seed, batch_size in ((0, 7), (1, 64), (2, 3)):
        seq = make_workload(400, seed=seed, machines=machines)
        sequential = factory(machines)
        for r in seq:
            sequential.apply(r)
        batched = factory(machines)
        for batch in iter_batches(seq, batch_size):
            result = batched.apply_batch(batch, atomic=atomic)
            assert not result.failed, result.failure
            assert result.processed == len(batch)
        assert_equivalent(batched, sequential)
        if hasattr(batched, "check_balance"):
            batched.check_balance()


def test_apply_batch_on_scenario_storms():
    """The burst-native scenarios drive mass deletes and trimming
    rebuilds through batch boundaries."""
    for gen in (churn_storm_sequence, burst_arrivals_sequence):
        seq = list(gen(requests=1500, seed=1))
        sequential = ReservationScheduler(1, gamma=8)
        for r in seq:
            sequential.apply(r)
        batched = ReservationScheduler(1, gamma=8)
        for batch in iter_batches(seq, 64):
            assert not batched.apply_batch(batch, atomic=True).failed
        assert_equivalent(batched, sequential)


def test_batch_net_diff_is_pre_to_post():
    """The single batch-level cost diff compares pre-batch placements to
    post-batch placements: moved-back jobs and jobs inserted or deleted
    by the batch are excluded."""
    seq = list(make_workload(300, seed=5))
    sched = AlignedReservationScheduler()
    for r in seq[:200]:
        sched.apply(r)
    pre = dict(sched.placements)
    batch = Batch(seq[200:260])
    result = sched.apply_batch(batch)
    post = dict(sched.placements)
    expected = {
        job_id for job_id, old in pre.items()
        if job_id in post and post[job_id] != old
    }
    assert set(result.net.rescheduled) == expected
    assert result.net.kind == "batch"
    assert result.net.n_active == len(sched.jobs)
    # per-request breakdown sums are independent of the net diff
    assert result.processed == len(batch)
    assert len(result.costs) == len(batch)


# ----------------------------------------------------------------------
# failure semantics
# ----------------------------------------------------------------------
def packed_unit_jobs():
    """A scheduler whose window [0,1) is full: the next [0,1) insert is
    infeasible and poisons it (base-level InfeasibleError)."""
    sched = AlignedReservationScheduler()
    sched.insert(Job("fill", Window(0, 1)))
    return sched


def test_non_atomic_failure_matches_sequential():
    seq = list(make_workload(240, seed=7))
    poison = InsertJob(Job("poison", Window(0, 1)))
    requests = seq[:100] + [poison] + seq[100:120]

    sequential = packed_unit_jobs()
    failed_at = None
    for i, r in enumerate(requests):
        try:
            sequential.apply(r)
        except ReproError:
            failed_at = i
            break
    assert failed_at == 100

    batched = packed_unit_jobs()
    results = []
    for batch in iter_batches(requests, 64):
        res = batched.apply_batch(batch)
        results.append(res)
        if res.failed:
            break
    # second batch (requests 64..127) contains the poison at offset 36
    assert results[-1].failed and results[-1].failed_index == 36
    assert not results[-1].rolled_back
    assert results[-1].processed == 36
    assert isinstance(results[-1].error, ReproError)
    assert results[-1].net is not None  # net covers the committed prefix
    assert batched.poisoned and sequential.poisoned
    assert_equivalent(batched, sequential)


@pytest.mark.parametrize("name,machines,factory", SCHEDULER_FACTORIES)
def test_atomic_batch_rolls_back_exactly(name, machines, factory):
    """A failing atomic batch restores the exact pre-batch state — the
    scheduler stays usable and future behavior matches a scheduler that
    never saw the batch (trimming rebuilds included)."""
    seq = make_workload(500, seed=9, machines=machines)
    prefix, inside, after = list(seq)[:250], list(seq)[250:330], list(seq)[330:]

    sched = factory(machines)
    for r in prefix:
        sched.apply(r)
    pre_placements = dict(sched.placements)
    pre_jobs = dict(sched.jobs)
    pre_ledger = len(sched.ledger.entries)
    pre_max_span = sched._max_span_cache

    # a back-to-back duplicate insert always fails at the second copy
    bad_batch = inside + [insert("dup", 0, 64), insert("dup", 0, 64)]
    result = sched.apply_batch(bad_batch, atomic=True)
    assert result.failed and result.rolled_back
    assert result.failed_index == len(bad_batch) - 1
    assert result.processed == 0 and result.net is None

    assert dict(sched.placements) == pre_placements
    assert sched.jobs == pre_jobs
    assert len(sched.ledger.entries) == pre_ledger
    assert sched._max_span_cache == pre_max_span

    # continue: must track a reference that never saw the bad batch
    reference = factory(machines)
    for r in prefix:
        reference.apply(r)
    for r in inside + after:
        sched.apply(r)
        reference.apply(r)
    assert_equivalent(sched, reference)


def test_atomic_rollback_after_deep_failure():
    """An infeasible request that fails deep inside placement (after
    real mutations in the same batch) still rolls back exactly."""
    seq = list(make_workload(300, seed=11))
    sched = AlignedReservationScheduler()
    sched.insert(Job("fill", Window(0, 1)))
    for r in seq[:150]:
        sched.apply(r)
    pre_placements = dict(sched.placements)
    pre_poisoned = sched.poisoned

    bad = seq[150:200] + [InsertJob(Job("poison", Window(0, 1)))]
    result = sched.apply_batch(bad, atomic=True)
    assert result.failed and result.rolled_back
    assert dict(sched.placements) == pre_placements
    assert sched.poisoned == pre_poisoned  # un-poisoned: batch never happened
    validate_scheduler(sched)
    # still usable
    sched.apply(seq[150])


def test_atomic_requires_support():
    from repro.baselines import EDFRebuildScheduler

    sched = EDFRebuildScheduler(1)
    with pytest.raises(InvalidRequestError):
        sched.apply_batch(list(make_workload(10))[:4], atomic=True)
    # non-atomic batches still work for non-sparse baselines
    seq = make_workload(120, seed=2)
    sequential = EDFRebuildScheduler(1)
    for r in seq:
        sequential.apply(r)
    batched = EDFRebuildScheduler(1)
    for batch in iter_batches(seq, 16):
        assert not batched.apply_batch(batch).failed
    assert_equivalent(batched, sequential)


def test_nested_batch_rejected():
    sched = AlignedReservationScheduler()
    sched._batch_begin(atomic=False, top=True)
    with pytest.raises(InvalidRequestError):
        sched.apply_batch([insert("x", 0, 2)])
    sched._batch_commit()


# ----------------------------------------------------------------------
# verifier integration
# ----------------------------------------------------------------------
def test_verify_batch_mirrors_and_audits():
    seq = make_workload(400, seed=4)
    sched = AlignedReservationScheduler()
    verifier = IncrementalVerifier(1, full_audit_every=100)
    for batch in iter_batches(seq, 32):
        result = sched.apply_batch(batch)
        verifier.verify_batch(sched, result)
    assert verifier.requests_seen == len(seq)
    assert verifier.full_audits_run >= len(seq) // 100
    verifier.full_audit(sched)


def test_verify_batch_detects_unreported_change():
    from repro.core.exceptions import ValidationError
    from repro.core.job import Placement

    sched = AlignedReservationScheduler()
    verifier = IncrementalVerifier(1)
    seq = make_workload(100, seed=6)
    for batch in iter_batches(seq, 32):
        verifier.verify_batch(sched, sched.apply_batch(batch))
    # tamper with a placement behind the verifier's back
    job_id, pl = next(iter(sched._placements.items()))
    sched._placements[job_id] = Placement(pl.machine, pl.slot + 1 << 20)
    with pytest.raises(ValidationError):
        verifier.full_audit(sched)


# ----------------------------------------------------------------------
# delegation grouping
# ----------------------------------------------------------------------
def test_apply_batch_sharded_matches_sequential_theorem1_m3():
    """The sharded burst path (per-machine shard workers + touched-log
    merge) obeys the same equivalence contract as apply_batch: identical
    placements, ledger, and max-span to sequential apply."""
    seq = make_workload(400, seed=3, machines=3)
    sequential = ReservationScheduler(3, gamma=8)
    for r in seq:
        sequential.apply(r)
    sharded = ReservationScheduler(3, gamma=8)
    for batch in iter_batches(seq, 48):
        result = sharded.apply_batch_sharded(batch)
        assert not result.failed, result.failure
        assert result.processed == len(batch)
    assert_equivalent(sharded, sequential)
    sharded.check_balance()


def test_machine_sub_batches_match_round_robin():
    sched = ReservationScheduler(3, gamma=8)
    window = Window(0, 64)
    jobs = [Job(f"j{i}", window) for i in range(7)]
    batch = Batch([InsertJob(j) for j in jobs])
    plan = sched.delegator.machine_sub_batches(
        Batch([InsertJob(Job(j.id, j.window.aligned_within())) for j in jobs]))
    # round-robin from count 0: machines 0,1,2,0,1,2,0
    sizes = {m: len(rs) for m, rs in plan.items()}
    assert sizes == {0: 3, 1: 2, 2: 2}
    # applying the batch must land jobs exactly as planned
    result = sched.apply_batch(batch)
    assert not result.failed
    landed = {m: 0 for m in range(3)}
    for job in jobs:
        landed[sched.placements[job.id].machine] += 1
    assert landed == sizes
    sched.check_balance()


def test_machine_sub_batches_simulates_batch_churn():
    """The planner tracks the batch's own inserts/deletes: deletes of
    batch-inserted jobs route to their planned machine, and a delete
    shifts the window's round-robin position for later inserts exactly
    as apply_batch does."""
    from repro.multimachine.delegation import DelegatingScheduler

    sched = DelegatingScheduler(3, lambda: AlignedReservationScheduler())
    w = Window(0, 64)
    # two pre-existing jobs in w -> machines 0, 1
    sched.insert(Job("p0", w))
    sched.insert(Job("p1", w))

    requests = [DeleteJob("p0"),
                InsertJob(Job("n1", w)), InsertJob(Job("n2", w)),
                InsertJob(Job("tmp", Window(64, 128))), DeleteJob("tmp")]
    plan = sched.machine_sub_batches(Batch(requests))
    # count after delete is 1 -> n1 on machine 1, n2 on machine 2;
    # tmp's insert and delete stay paired on machine 0
    assert requests[1] in plan[1] and requests[2] in plan[2]
    assert requests[3] in plan[0] and requests[4] in plan[0]
    # and apply_batch actually lands the inserts on the planned machines
    result = sched.apply_batch(Batch(requests))
    assert not result.failed
    assert sched.placements["n1"].machine == 1
    assert sched.placements["n2"].machine == 2


def test_batch_plan_invalidated_by_mid_batch_delete():
    """A delete of a window mid-batch drops the remaining plan for that
    window; equivalence with sequential still holds."""
    window = Window(0, 64)
    other = Window(64, 128)
    requests = [InsertJob(Job("a", window)), InsertJob(Job("b", window)),
                InsertJob(Job("c", other)), DeleteJob("a"),
                InsertJob(Job("d", window)), InsertJob(Job("e", window))]
    sequential = ReservationScheduler(3, gamma=8)
    for r in requests:
        sequential.apply(r)
    batched = ReservationScheduler(3, gamma=8)
    assert not batched.apply_batch(Batch(requests)).failed
    assert_equivalent(batched, sequential)
    batched.check_balance()


# ----------------------------------------------------------------------
# deamortized sparse costing (satellite)
# ----------------------------------------------------------------------
def test_deamortized_sparse_costs_match_full_snapshot_oracle():
    seq = make_workload(500, seed=13)
    sparse = DeamortizedReservationScheduler()
    oracle = DeamortizedReservationScheduler()
    oracle._sparse_costing = False  # legacy O(n) full-snapshot diffing
    for r in seq:
        sparse.apply(r)
        oracle.apply(r)
    assert dict(sparse.placements) == dict(oracle.placements)
    assert sparse.ledger.entries == oracle.ledger.entries
    assert sparse.last_touched is not None  # sparse path actually used
    assert oracle.last_touched is None


# ----------------------------------------------------------------------
# elastic max-span (satellite)
# ----------------------------------------------------------------------
def test_elastic_machine_change_costs_use_tracked_max_span():
    sched = ElasticScheduler(2, lambda: AlignedReservationScheduler())
    sched.insert(Job("small", Window(0, 2)))
    sched.insert(Job("big", Window(0, 64)))
    cost = sched.add_machine()
    assert cost.kind == "add-machine"
    assert cost.max_span == 64 == sched._max_span()
    sched.delete("big")
    cost = sched.remove_machine(2)
    assert cost.max_span == 2 == sched._max_span()


def test_elastic_events_rejected_mid_batch():
    sched = ElasticScheduler(2, lambda: AlignedReservationScheduler())
    sched._batch_begin(atomic=False, top=True)
    with pytest.raises(InvalidRequestError):
        sched.add_machine()
    with pytest.raises(InvalidRequestError):
        sched.remove_machine(0)
    sched._batch_commit()


# ----------------------------------------------------------------------
# driver / engine integration
# ----------------------------------------------------------------------
def test_run_sequence_batched_equals_sequential():
    seq = make_workload(400, seed=8)
    r_seq = run_sequence(ReservationScheduler(1, gamma=8), seq)
    r_bat = run_sequence(ReservationScheduler(1, gamma=8), seq,
                         batch_size=64, atomic_batches=True)
    assert r_bat.requests_processed == r_seq.requests_processed == len(seq)
    assert r_bat.ledger.summary() == r_seq.ledger.summary()
    assert not r_bat.failed


def test_run_sequence_batched_failure_semantics():
    requests = RequestSequence()
    requests.insert("a", 0, 2)
    bad = list(requests) + [InsertJob(Job("a", Window(0, 2)))]

    class FakeSeq(list):
        pass

    sched = AlignedReservationScheduler()
    result = run_sequence(sched, FakeSeq(bad), batch_size=8,
                          stop_on_error=False)
    assert result.failed and "InvalidRequestError" in result.failure
    with pytest.raises(InvalidRequestError):
        run_sequence(AlignedReservationScheduler(), FakeSeq(bad),
                     batch_size=8, stop_on_error=True)


def test_run_engine_batched_with_checkpoints():
    seq = list(churn_storm_sequence(requests=1200, seed=3))

    class FakeSeq(list):
        pass

    hits = []
    result = run_engine(
        ReservationScheduler(1, gamma=8), FakeSeq(seq),
        batch_size=64, atomic_batches=True,
        checkpoint_every=256, on_checkpoint=hits.append,
    )
    assert not result.failed
    assert result.requests_processed == len(seq)
    assert len(hits) == len(seq) // 256
    sequential = run_engine(ReservationScheduler(1, gamma=8), FakeSeq(seq))
    assert result.ledger_summary == sequential.ledger_summary
