"""Tests for the simulation harness, metrics, and scenario workloads."""

import pytest

from repro.baselines import EDFRebuildScheduler, NaivePeckingScheduler
from repro.core import Job, UnderallocationError, Window
from repro.core.api import ReservationScheduler
from repro.feasibility import check_feasible
from repro.reservation import AlignedReservationScheduler
from repro.sim import (
    doubling_series,
    experiment_header,
    fit_growth,
    format_series,
    format_table,
    run_comparison,
    run_sequence,
    sparkline,
    summarize_series,
)
from repro.workloads import (
    AlignedWorkloadConfig,
    appointment_book_sequence,
    cluster_trace_sequence,
    random_aligned_sequence,
    saturated_aligned_jobs,
)


class TestDriver:
    def seq(self):
        cfg = AlignedWorkloadConfig(num_requests=60, horizon=256, max_span=128,
                                    gamma=8, delete_fraction=0.3)
        return random_aligned_sequence(cfg, seed=1)

    def test_run_sequence_basic(self):
        result = run_sequence(AlignedReservationScheduler(), self.seq())
        assert result.requests_processed == 60
        assert not result.failed
        assert result.summary["requests"] == 60

    def test_run_sequence_validator_hook(self):
        from repro.reservation import validate_scheduler
        calls = []

        def validator(s):
            validate_scheduler(s)
            calls.append(1)

        run_sequence(AlignedReservationScheduler(), self.seq(),
                     validate_each=validator)
        assert len(calls) == 60

    def test_graceful_failure_mode(self):
        seq = self.seq()
        # A poisoned-by-design run: 1-slot window inserted twice.
        from repro.core.requests import RequestSequence
        bad = RequestSequence()
        bad.insert("a", 0, 1)
        bad.insert("b", 0, 1)
        result = run_sequence(AlignedReservationScheduler(), bad,
                              stop_on_error=False)
        assert result.failed
        assert result.requests_processed == 1
        assert "Infeasible" in result.failure

    def test_stop_on_error_raises(self):
        from repro.core.requests import RequestSequence
        from repro.core import InfeasibleError
        bad = RequestSequence()
        bad.insert("a", 0, 1)
        bad.insert("b", 0, 1)
        with pytest.raises(InfeasibleError):
            run_sequence(AlignedReservationScheduler(), bad)

    def test_run_comparison(self):
        seq = self.seq()
        results = run_comparison({
            "reservation": lambda: AlignedReservationScheduler(),
            "edf": lambda: EDFRebuildScheduler(1),
            "naive": lambda: NaivePeckingScheduler(),
        }, seq)
        assert set(results) == {"reservation", "edf", "naive"}
        for r in results.values():
            assert r.requests_processed == 60


class TestMetrics:
    def test_fit_constant(self):
        xs = [10, 100, 1000, 10000]
        assert fit_growth(xs, [3, 3, 3, 3]).best == "constant"

    def test_fit_log(self):
        xs = [2 ** i for i in range(2, 12)]
        ys = [i for i in range(2, 12)]
        assert fit_growth(xs, ys).best in ("log", "logstar")
        # pure log data fits log far better than linear
        fit = fit_growth(xs, ys)
        assert fit.residuals["log"] < fit.residuals["linear"]

    def test_fit_linear(self):
        xs = list(range(1, 40))
        ys = [3 * x + 1 for x in xs]
        assert fit_growth(xs, ys).best == "linear"

    def test_fit_quadratic(self):
        xs = list(range(1, 40))
        ys = [x * x for x in xs]
        assert fit_growth(xs, ys).best == "quadratic"

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_growth([1, 2], [1, 2])

    def test_doubling_series(self):
        assert doubling_series(4, 64) == [4, 8, 16, 32, 64]
        with pytest.raises(ValueError):
            doubling_series(0, 4)

    def test_summarize_series(self):
        out = summarize_series([1, 2, 4, 8, 16], [5, 5, 5, 5, 5])
        assert out["best_shape"] == "constant"
        assert out["growth_factor"] == 1.0


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, "x"]], title="T")
        assert "T" in text and "a" in text and "2.500" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("n", [1, 2], {"edf": [10, 20], "res": [1, 1]})
        assert "edf" in text and "res" in text

    def test_sparkline(self):
        text = sparkline([1, 2, 4])
        assert text.count("|") == 3
        assert sparkline([]) == "(empty)"

    def test_experiment_header(self):
        text = experiment_header("E1", "Theorem 1")
        assert "E1" in text and "Theorem 1" in text


class TestScenarioWorkloads:
    def test_appointments_valid_and_feasible(self):
        seq = appointment_book_sequence(requests=150, seed=0)
        assert len(seq) == 150
        # every prefix is feasible on one machine
        for i in (50, 100, 150):
            jobs = seq.active_after(i)
            assert check_feasible(jobs, 1)

    def test_appointments_run_on_theorem1_scheduler(self):
        seq = appointment_book_sequence(requests=200, seed=3)
        sched = ReservationScheduler(num_machines=1, gamma=8)
        result = run_sequence(sched, seq)
        assert not result.failed
        assert result.ledger.max_migration == 0

    def test_cluster_trace_multi_machine(self):
        seq = cluster_trace_sequence(num_machines=4, requests=200, seed=1)
        sched = ReservationScheduler(num_machines=4, gamma=8)
        result = run_sequence(sched, seq)
        assert not result.failed
        assert result.ledger.max_migration <= 1

    def test_deterministic(self):
        a = appointment_book_sequence(requests=80, seed=5).to_json()
        b = appointment_book_sequence(requests=80, seed=5).to_json()
        assert a == b

    def test_saturated_generator(self):
        seq = saturated_aligned_jobs(1, 8, 256, seed=0)
        jobs = seq.final_active_jobs
        assert len(jobs) >= 256 // 8 // 2  # at least half the budget used
        assert check_feasible(jobs, 1)
