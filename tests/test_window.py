"""Unit tests for repro.core.window."""

import pytest
from hypothesis import given, strategies as st

from repro.core.window import (
    Window,
    aligned_window_covering,
    floor_log2,
    is_power_of_two,
)


class TestPowerOfTwo:
    def test_powers(self):
        for i in range(20):
            assert is_power_of_two(1 << i)

    def test_non_powers(self):
        for x in [0, -1, -2, 3, 5, 6, 7, 9, 12, 100]:
            assert not is_power_of_two(x)

    def test_floor_log2(self):
        assert floor_log2(1) == 0
        assert floor_log2(2) == 1
        assert floor_log2(3) == 1
        assert floor_log2(4) == 2
        assert floor_log2(1023) == 9
        assert floor_log2(1024) == 10

    def test_floor_log2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            floor_log2(0)


class TestWindowBasics:
    def test_span(self):
        assert Window(0, 4).span == 4
        assert Window(3, 4).span == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            Window(4, 4)
        with pytest.raises(ValueError):
            Window(5, 3)

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            Window(0.5, 4)

    def test_contains_slot(self):
        w = Window(2, 6)
        assert 2 in w and 5 in w
        assert 1 not in w and 6 not in w

    def test_slots(self):
        assert list(Window(2, 5).slots()) == [2, 3, 4]

    def test_contains_window(self):
        assert Window(0, 8).contains_window(Window(2, 6))
        assert Window(0, 8).contains_window(Window(0, 8))
        assert not Window(2, 6).contains_window(Window(0, 8))
        assert not Window(0, 4).contains_window(Window(2, 6))

    def test_overlaps(self):
        assert Window(0, 4).overlaps(Window(3, 8))
        assert not Window(0, 4).overlaps(Window(4, 8))

    def test_intersect(self):
        assert Window(0, 4).intersect(Window(2, 8)) == Window(2, 4)
        assert Window(0, 4).intersect(Window(4, 8)) is None


class TestAlignment:
    def test_aligned_examples(self):
        assert Window(0, 1).is_aligned
        assert Window(4, 8).is_aligned
        assert Window(16, 32).is_aligned
        assert Window(7, 8).is_aligned  # span 1 at any start

    def test_unaligned_examples(self):
        assert not Window(1, 3).is_aligned  # span 2, start odd
        assert not Window(0, 3).is_aligned  # span 3
        assert not Window(2, 6).is_aligned  # span 4, start 2

    def test_aligned_within_identity(self):
        w = Window(8, 16)
        assert w.aligned_within() == w

    def test_aligned_within_factor_four(self):
        # Lemma 10 relies on |ALIGNED(W)| >= |W|/4.
        for release in range(0, 40):
            for span in range(1, 70):
                w = Window(release, release + span)
                a = w.aligned_within()
                assert a.is_aligned
                assert w.contains_window(a)
                assert 4 * a.span >= w.span

    def test_aligned_within_specific(self):
        # [1, 8): span 7 -> largest aligned inside is [4, 8) (span 4)
        assert Window(1, 8).aligned_within() == Window(4, 8)
        # [1, 4): span 3 -> [2, 4)
        assert Window(1, 4).aligned_within() == Window(2, 4)

    @given(st.integers(0, 10_000), st.integers(1, 5_000))
    def test_aligned_within_properties(self, release, span):
        w = Window(release, release + span)
        a = w.aligned_within()
        assert a.is_aligned
        assert w.contains_window(a)
        assert 4 * a.span > w.span  # strictly more than a quarter

    def test_aligned_parent(self):
        assert Window(4, 8).aligned_parent() == Window(0, 8)
        assert Window(8, 16).aligned_parent() == Window(0, 16)
        assert Window(2, 3).aligned_parent() == Window(2, 4)

    def test_aligned_parent_requires_aligned(self):
        with pytest.raises(ValueError):
            Window(1, 3).aligned_parent()

    def test_aligned_ancestors(self):
        w = Window(6, 7)
        ancestors = list(w.aligned_ancestors(8))
        assert ancestors == [Window(6, 8), Window(4, 8), Window(0, 8)]

    def test_aligned_children(self):
        assert Window(0, 8).aligned_children() == (Window(0, 4), Window(4, 8))
        with pytest.raises(ValueError):
            Window(0, 1).aligned_children()

    @given(st.integers(0, 1000), st.integers(0, 6))
    def test_parent_child_roundtrip(self, idx, log_span):
        span = 1 << log_span
        w = Window(idx * span, (idx + 1) * span)
        parent = w.aligned_parent()
        assert parent.contains_window(w)
        assert parent.span == 2 * span
        assert w in parent.aligned_children()


class TestTrim:
    def test_noop(self):
        w = Window(3, 10)
        assert w.trim(10) == w
        assert w.trim(7) == w

    def test_trims_prefix(self):
        assert Window(3, 10).trim(4) == Window(3, 7)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Window(0, 4).trim(0)


class TestAlignedCovering:
    def test_basic(self):
        assert aligned_window_covering(5, 4) == Window(4, 8)
        assert aligned_window_covering(5, 1) == Window(5, 6)
        assert aligned_window_covering(0, 16) == Window(0, 16)

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            aligned_window_covering(3, 3)

    @given(st.integers(0, 100_000), st.integers(0, 10))
    def test_covering_property(self, slot, log_span):
        span = 1 << log_span
        w = aligned_window_covering(slot, span)
        assert w.is_aligned
        assert slot in w
        assert w.span == span


class TestLaminarity:
    """Aligned windows form a laminar family (paper, Section 2)."""

    @given(
        st.integers(0, 64), st.integers(0, 4),
        st.integers(0, 64), st.integers(0, 4),
    )
    def test_aligned_windows_laminar(self, i1, k1, i2, k2):
        s1, s2 = 1 << k1, 1 << k2
        w1 = Window(i1 * s1, (i1 + 1) * s1)
        w2 = Window(i2 * s2, (i2 + 1) * s2)
        if w1.overlaps(w2):
            assert w1.contains_window(w2) or w2.contains_window(w1)
