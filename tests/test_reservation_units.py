"""Unit tests for the reservation building blocks (rr law, Interval)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.window import Window, aligned_window_covering
from repro.levels import PAPER_POLICY
from repro.reservation.interval import Interval
from repro.reservation.window_state import (
    WindowState,
    dynamic_count,
    rr_counts,
    rr_diff,
)


class TestRoundRobinLaw:
    def test_invariant5_total(self):
        # Total reservations must equal 2x + 2**k (Invariant 5).
        for k in range(1, 6):
            n = 1 << k
            for x in range(0, 40):
                assert sum(rr_counts(x, n)) == 2 * x + n

    def test_leftmost_have_most(self):
        for x in range(0, 30):
            counts = rr_counts(x, 8)
            assert counts == sorted(counts, reverse=True)
            assert max(counts) - min(counts) <= 1

    def test_invariant5_band(self):
        # Each interval holds floor(2x/2^k)+1 or floor(2x/2^k)+2.
        for k in range(1, 5):
            n = 1 << k
            for x in range(0, 50):
                base = (2 * x) // n
                for c in rr_counts(x, n):
                    assert c in (base + 1, base + 2)

    @given(st.integers(0, 200), st.integers(1, 6))
    def test_increment_changes_exactly_two(self, x, k):
        n = 1 << k
        diff = rr_diff(x, x + 1, n)
        assert sum(diff.values()) == 2
        assert all(d == 1 for d in diff.values())
        assert len(diff) == 2 or (len(diff) == 1 and n == 1)

    @given(st.integers(1, 200), st.integers(1, 6))
    def test_decrement_mirrors_increment(self, x, k):
        n = 1 << k
        inc = rr_diff(x - 1, x, n)
        dec = rr_diff(x, x - 1, n)
        assert dec == {i: -d for i, d in inc.items()}

    def test_dynamic_count_consistency(self):
        for x in range(0, 30):
            for k in range(1, 5):
                n = 1 << k
                counts = rr_counts(x, n)
                for i in range(n):
                    assert dynamic_count(x, n, i) == counts[i] - 1

    def test_validation(self):
        with pytest.raises(ValueError):
            rr_counts(-1, 4)
        with pytest.raises(ValueError):
            rr_counts(0, 0)


class TestWindowState:
    def make(self):
        w = Window(0, 128)  # level-1 window: 4 intervals of 32
        return WindowState(w, 1, PAPER_POLICY.intervals_of_window(1, w))

    def test_positions(self):
        ws = self.make()
        assert ws.n_intervals == 4
        assert ws.position_of(0) == 0
        assert ws.position_of(3) == 3
        with pytest.raises(ValueError):
            ws.position_of(4)

    def test_expected_dynamic(self):
        ws = self.make()
        ws.jobs.update({"a", "b", "c"})  # x=3, 2x=6 over 4 intervals
        counts = [ws.expected_dynamic(i) for i in range(4)]
        assert counts == [2, 2, 1, 1]
        assert sum(counts) == 6


def make_interval(level=1, index=0):
    return Interval(
        level=level, index=index,
        lo=index * PAPER_POLICY.interval_span(level),
        hi=(index + 1) * PAPER_POLICY.interval_span(level),
        enclosing_spans=tuple(PAPER_POLICY.enclosing_spans(level)),
    )


class TestInterval:
    def test_enclosing_windows(self):
        iv = make_interval()
        windows = iv.enclosing_windows()
        assert [w.span for w in windows] == [64, 128, 256]
        for w in windows:
            assert w.contains_window(Window(iv.lo, iv.hi))

    def test_baseline_demand(self):
        iv = make_interval()
        demands = dict(iv.demands())
        assert all(d == 1 for d in demands.values())
        assert iv.total_demand() == 3

    def test_target_all_baseline_fulfilled(self):
        iv = make_interval()
        target = iv.target_fulfilled()
        assert all(v == 1 for v in target.values())

    def test_priority_shortest_first_under_scarcity(self):
        iv = make_interval()
        w64 = aligned_window_covering(iv.lo, 64)
        w256 = aligned_window_covering(iv.lo, 256)
        iv.add_dynamic(w64, 20)
        iv.add_dynamic(w256, 20)
        # allowance 32; demand = 21 (w64) + 1 (w128) + 21 (w256)
        target = iv.target_fulfilled()
        assert target[w64] == 21
        assert target[aligned_window_covering(iv.lo, 128)] == 1
        assert target[w256] == 10
        wl = iv.waitlisted()
        assert wl[w256] == 11 and wl[w64] == 0

    def test_allowance_shrink_changes_target(self):
        iv = make_interval()
        w64 = aligned_window_covering(iv.lo, 64)
        iv.add_dynamic(w64, 40)  # demand 41 > 32; w64 has top priority
        assert iv.target_fulfilled()[w64] == 32
        for s in range(iv.lo, iv.lo + 10):
            iv.slot_lowered(s)
        assert iv.allowance_size() == 22
        assert iv.target_fulfilled()[w64] == 22

    def test_add_dynamic_negative_rejected(self):
        iv = make_interval()
        with pytest.raises(ValueError):
            iv.add_dynamic(aligned_window_covering(iv.lo, 64), -1)

    def test_rebalance_assigns_targets(self):
        iv = make_interval()
        revoked = iv.rebalance(lambda s: None, lambda s: True)
        assert revoked == []
        target = iv.target_fulfilled()
        for w, want in target.items():
            assert len(iv.assigned.get(w, ())) == want
        # owner map consistent
        for w, slots in iv.assigned.items():
            for s in slots:
                assert iv.slot_owner[s] == w

    def test_rebalance_revokes_on_demand_shift(self):
        iv = make_interval()
        w64 = aligned_window_covering(iv.lo, 64)
        w256 = aligned_window_covering(iv.lo, 256)
        iv.add_dynamic(w256, 29)  # 29 + baselines(3) = 32 = full allowance
        iv.rebalance(lambda s: None, lambda s: True)
        assert len(iv.assigned[w256]) == 30
        # Now a shorter window demands one more: w256 must lose one slot.
        iv.add_dynamic(w64, 1)
        occupied_slot = next(iter(iv.assigned[w256]))
        jobs = {occupied_slot: "victim"}
        revoked = iv.rebalance(lambda s: jobs.get(s), lambda s: s not in jobs)
        assert len(iv.assigned[w256]) == 29
        assert len(iv.assigned[w64]) == 2
        # Empty slots are preferred for release, so no job was revoked
        # unless every w256 slot held a job; here only one did.
        assert revoked == []

    def test_rebalance_revokes_job_when_no_empty_slot(self):
        iv = make_interval()
        w64 = aligned_window_covering(iv.lo, 64)
        w256 = aligned_window_covering(iv.lo, 256)
        iv.add_dynamic(w256, 29)
        iv.rebalance(lambda s: None, lambda s: True)
        jobs = {s: f"job{s}" for s in iv.assigned[w256]}  # all 30 occupied
        iv.add_dynamic(w64, 1)
        revoked = iv.rebalance(lambda s: jobs.get(s), lambda s: s not in jobs)
        assert len(revoked) == 1
        assert revoked[0] in jobs.values()

    def test_slot_lowered_revokes_assignment(self):
        iv = make_interval()
        iv.rebalance(lambda s: None, lambda s: True)
        w64 = aligned_window_covering(iv.lo, 64)
        s = next(iter(iv.assigned[w64]))
        iv.slot_lowered(s)
        assert s not in iv.slot_owner
        assert s not in iv.assigned.get(w64, set())
        assert not iv.in_allowance(s)
        iv.slot_raised(s)
        assert iv.in_allowance(s)

    def test_swap_slots(self):
        iv = make_interval()
        iv.rebalance(lambda s: None, lambda s: True)
        w64 = aligned_window_covering(iv.lo, 64)
        s1 = next(iter(iv.assigned[w64]))
        s2 = iv.lo + 31
        iv.slot_lowered(s2)
        iv.swap_slots(s1, s2)
        assert s2 in iv.assigned[w64]
        assert iv.slot_owner[s2] == w64
        assert s1 in iv.lower_occupied and s2 not in iv.lower_occupied
        iv.swap_slots(s1, s1)  # no-op

    def test_waitlist_accounting(self):
        iv = make_interval()
        w64 = aligned_window_covering(iv.lo, 64)
        iv.add_dynamic(w64, 100)
        wl = iv.waitlisted()
        assert wl[w64] == 101 - 32  # top priority takes full allowance
        assert sum(iv.target_fulfilled().values()) == 32
