"""Tests for the level/interval decomposition policy and log* helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.logstar import (
    iter_tower_sequence,
    log_star,
    paper_level_count,
    paper_thresholds,
    tower,
)
from repro.core.window import Window
from repro.levels import PAPER_POLICY, LevelPolicy, make_policy


class TestLogStar:
    def test_anchors(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2.0 ** 65536 if False else 1e300) <= 5

    def test_monotone(self):
        values = [log_star(x) for x in [1, 2, 3, 4, 10, 100, 10**6, 10**30]]
        assert values == sorted(values)

    def test_tower(self):
        assert tower(0) == 1
        assert tower(1) == 2
        assert tower(2) == 4
        assert tower(3) == 16
        assert tower(4) == 65536

    def test_tower_logstar_inverse(self):
        for h in range(1, 5):
            assert log_star(tower(h)) == h

    def test_tower_negative(self):
        with pytest.raises(ValueError):
            tower(-1)


class TestPaperThresholds:
    def test_sequence(self):
        assert paper_thresholds(32) == [32]
        assert paper_thresholds(33) == [32, 256]
        assert paper_thresholds(256) == [32, 256]
        assert paper_thresholds(257) == [32, 256, 1 << 64]

    def test_level_count(self):
        assert paper_level_count(16) == 0
        assert paper_level_count(32) == 0
        assert paper_level_count(64) == 1
        assert paper_level_count(256) == 1
        assert paper_level_count(1024) == 2
        assert paper_level_count(1 << 30) == 2

    def test_iter_tower(self):
        gen = iter_tower_sequence(32, 4)
        assert [next(gen) for _ in range(3)] == [32, 256, 1 << 64]


class TestLevelPolicy:
    def test_paper_policy_shape(self):
        assert PAPER_POLICY.thresholds[0] == 32
        assert PAPER_POLICY.thresholds[1] == 256
        assert PAPER_POLICY.thresholds[2] == 1 << 64
        assert PAPER_POLICY.base_threshold == 32

    def test_level_of_span(self):
        p = PAPER_POLICY
        assert p.level_of_span(1) == 0
        assert p.level_of_span(32) == 0
        assert p.level_of_span(64) == 1
        assert p.level_of_span(256) == 1
        assert p.level_of_span(512) == 2
        assert p.level_of_span(1 << 20) == 2

    def test_level_of_span_out_of_range(self):
        with pytest.raises(ValueError):
            PAPER_POLICY.level_of_span((1 << 64) * 2)
        with pytest.raises(ValueError):
            PAPER_POLICY.level_of_span(0)

    def test_interval_span(self):
        assert PAPER_POLICY.interval_span(1) == 32
        assert PAPER_POLICY.interval_span(2) == 256
        with pytest.raises(ValueError):
            PAPER_POLICY.interval_span(0)
        with pytest.raises(ValueError):
            PAPER_POLICY.interval_span(3)

    def test_level_span_range(self):
        assert PAPER_POLICY.level_span_range(0) == (1, 32)
        assert PAPER_POLICY.level_span_range(1) == (64, 256)
        assert PAPER_POLICY.level_span_range(2) == (512, 1 << 64)

    def test_interval_geometry(self):
        p = PAPER_POLICY
        assert p.interval_index(1, 0) == 0
        assert p.interval_index(1, 31) == 0
        assert p.interval_index(1, 32) == 1
        assert p.interval_window(1, 3) == Window(96, 128)

    def test_intervals_of_window(self):
        p = PAPER_POLICY
        w = Window(0, 128)  # level-1 window, 4 intervals
        assert list(p.intervals_of_window(1, w)) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            p.intervals_of_window(1, Window(16, 144))

    def test_enclosing_spans_equation1(self):
        # Equation 1: number of distinct level-l spans <= L_l / 4.
        p = PAPER_POLICY
        for level in (1, 2):
            spans = p.enclosing_spans(level)
            assert len(spans) <= p.interval_span(level) // 4
            lo, hi = p.level_span_range(level)
            assert spans[0] == lo and spans[-1] == hi
            for a, b in zip(spans, spans[1:]):
                assert b == 2 * a

    def test_levels_above(self):
        assert list(PAPER_POLICY.levels_above(0)) == [1, 2]
        assert list(PAPER_POLICY.levels_above(1)) == [2]
        assert list(PAPER_POLICY.levels_above(2)) == []

    def test_required_levels(self):
        p = PAPER_POLICY
        assert p.required_levels(16) == 0
        assert p.required_levels(64) == 1
        assert p.required_levels(4096) == 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            LevelPolicy((31,))

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            LevelPolicy((32, 32))

    def test_rejects_equation1_violation(self):
        # L=8 followed by 2**64 would need 8 >= 4*64.
        with pytest.raises(ValueError):
            LevelPolicy((8, 1 << 64))

    def test_make_policy_cached_and_custom(self):
        p1 = make_policy(1 << 20)
        p2 = make_policy(1 << 20)
        assert p1 is p2
        with pytest.raises(ValueError):
            make_policy(1 << 20, l1=16, shift=4)  # 2**4 = 16 does not grow

    @given(st.integers(1, 1 << 40))
    def test_level_monotone_in_span(self, span):
        p = PAPER_POLICY
        level = p.level_of_span(span)
        assert 0 <= level <= 2
        if span > 1:
            assert p.level_of_span(span - 1) <= level

    @given(st.integers(0, 10**7))
    def test_slot_in_its_interval(self, slot):
        p = PAPER_POLICY
        for level in (1, 2):
            idx = p.interval_index(level, slot)
            assert slot in p.interval_window(level, idx)
