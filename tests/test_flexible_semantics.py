"""Flexible batch semantics: planning, elision, rollback, plumbing.

The differential harness (``test_backend_differential``) establishes
the bounds-equivalence property statistically; this module pins the
flexible planner's individual contracts with hand-written cases:

- interior insert/delete pairs elide to explicit zero-cost ledger
  entries (one entry per request, at arrival positions);
- surviving inserts place span-ascending (the trimming rebuild order),
  deletes of pre-existing jobs coalesce ahead of them;
- protocol-invalid op streams degrade to the strict path and report
  the error at the same arrival position strict does;
- a failing atomic flexible batch restores bit-identical pre-batch
  state (placements, jobs, ledger, max-span), and the scheduler's
  future behavior matches one that never saw the batch;
- the arena sanitizer (checking container proxies) stays silent over
  flexible drives — the joint planner funnels every mutation through
  the journaled per-request path;
- the semantics knob threads through ``ExecutionPlan``/``run_sequence``
  /``run_engine`` and the CLI.
"""

from __future__ import annotations

import pytest

from repro.core.api import ReservationScheduler
from repro.core.base import BATCH_SEMANTICS, resolve_batch_semantics
from repro.core.exceptions import InvalidRequestError, ReproError
from repro.core.job import Job
from repro.core.requests import Batch, DeleteJob, InsertJob, iter_batches
from repro.core.window import Window
from repro.reservation.scheduler import (
    AlignedReservationScheduler,
    flexible_span_order,
)
from repro.reservation.trimming import TrimmedReservationScheduler
from repro.sim.driver import run_sequence
from repro.sim.engine import run_engine
from repro.sim.session import ExecutionPlan
from repro.workloads.scenarios import churn_storm_sequence

from test_backend_differential import fingerprint, mixed_churn


def ins(job_id, release, deadline):
    return InsertJob(Job(job_id, Window(release, deadline)))


# ----------------------------------------------------------------------
# the planner
# ----------------------------------------------------------------------
def test_plan_elides_interior_pairs():
    sched = ReservationScheduler(1, gamma=8)
    sched.insert(Job("standing", Window(0, 64)))
    pre_placements = dict(sched.placements)

    batch = [ins("x", 0, 64), DeleteJob("x"), ins("y", 0, 64)]
    result = sched.apply_batch(batch, semantics="flexible")
    assert not result.failed
    assert len(result.costs) == 3
    # the elided pair commits as zero-cost entries at arrival positions
    assert result.costs[0].kind == "insert"
    assert result.costs[0].subject == "x"
    assert result.costs[0].reallocation_cost == 0
    assert result.costs[0].migration_cost == 0
    assert result.costs[1].kind == "delete"
    assert result.costs[1].subject == "x"
    assert result.costs[1].reallocation_cost == 0
    assert result.costs[2].subject == "y"
    assert list(sched.ledger.entries)[-3:] == result.costs

    assert "x" not in sched.jobs and "x" not in sched.placements
    assert "y" in sched.jobs
    assert sched.placements["standing"] == pre_placements["standing"]


def test_plan_elision_only_batch_is_a_no_op():
    sched = ReservationScheduler(1, gamma=8)
    sched.insert(Job("standing", Window(0, 64)))
    pre = fingerprint(sched)

    result = sched.apply_batch([ins("x", 0, 64), DeleteJob("x")],
                               semantics="flexible")
    assert not result.failed and result.processed == 2
    assert all(c.reallocation_cost == 0 and c.migration_cost == 0
               for c in result.costs)
    placements, ledger, span, jobs = fingerprint(sched)
    assert (placements, span, jobs) == (pre[0], pre[2], pre[3])
    assert ledger == pre[1] + result.costs


def test_plan_reinsert_same_id_keeps_last_window():
    sched = ReservationScheduler(1, gamma=8)
    batch = [ins("a", 0, 16), DeleteJob("a"), ins("a", 64, 128)]
    result = sched.apply_batch(batch, semantics="flexible")
    assert not result.failed
    assert sched.jobs["a"].window == Window(64, 128)
    assert [c.subject for c in result.costs] == ["a", "a", "a"]
    assert [c.kind for c in result.costs] == ["insert", "delete", "insert"]


def test_plan_coalesces_deletes_before_inserts():
    """Deletes of pre-existing jobs run first, so a burst that swaps a
    full window's population never sees transient overallocation."""
    sched = ReservationScheduler(1, gamma=8)
    old = [Job(f"old{i}", Window(0, 64)) for i in range(8)]
    for job in old:
        sched.insert(job)
    # Swap all 8 out for 8 new jobs, inserts arriving BEFORE deletes:
    # strict order would apply the inserts into a window already holding
    # the 8 old jobs; the flexible plan deletes first.
    batch = ([ins(f"new{i}", 0, 64) for i in range(8)]
             + [DeleteJob(f"old{i}") for i in range(8)])
    result = sched.apply_batch(batch, semantics="flexible")
    assert not result.failed
    assert set(sched.jobs) == {f"new{i}" for i in range(8)}
    # ledger entries stay at arrival positions: 8 inserts then 8 deletes
    kinds = [c.kind for c in result.costs]
    assert kinds == ["insert"] * 8 + ["delete"] * 8


def test_flexible_insert_order_is_span_ascending():
    assert flexible_span_order(Job("a", Window(0, 4))) < flexible_span_order(
        Job("b", Window(0, 16)))
    # the whole stack agrees on the reservation layer's key
    for sched in (ReservationScheduler(2, gamma=8),
                  TrimmedReservationScheduler(),
                  AlignedReservationScheduler()):
        assert sched._flexible_insert_order_key() is flexible_span_order

    sched = ReservationScheduler(1, gamma=8)
    batch = Batch([ins("wide", 0, 256), ins("narrow", 0, 8),
                   ins("mid", 0, 64)])
    plan = sched._plan_flexible(batch)
    assert plan is not None
    deletes, inserts, elided = plan
    assert deletes == [] and elided == []
    assert [request.job.id for _, request in inserts] == [
        "narrow", "mid", "wide"]
    # arrival indexes ride along for the ledger permutation
    assert [index for index, _ in inserts] == [1, 2, 0]


def test_semantics_validation():
    assert BATCH_SEMANTICS == ("strict", "flexible")
    assert resolve_batch_semantics("strict") == "strict"
    with pytest.raises(InvalidRequestError):
        resolve_batch_semantics("loose")
    sched = ReservationScheduler(1, gamma=8)
    with pytest.raises(InvalidRequestError):
        sched.apply_batch([ins("a", 0, 16)], semantics="loose")
    with pytest.raises(InvalidRequestError):
        sched.apply_batch_sharded([ins("a", 0, 16)], semantics="loose")
    with pytest.raises(InvalidRequestError):
        ExecutionPlan(batch_semantics="loose")


# ----------------------------------------------------------------------
# protocol-invalid streams degrade to strict
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad_batch,failing_index", [
    # duplicate insert of an id already active in the batch
    ([ins("a", 0, 16), ins("a", 0, 16)], 1),
    # delete of an id never inserted
    ([ins("a", 0, 16), DeleteJob("ghost")], 1),
    # insert of an id already active pre-batch (see test body)
    ([ins("standing", 0, 16)], 0),
])
def test_protocol_violations_match_strict(bad_batch, failing_index):
    def fresh():
        sched = ReservationScheduler(1, gamma=8)
        sched.insert(Job("standing", Window(0, 64)))
        return sched

    strict = fresh()
    strict_result = strict.apply_batch(bad_batch, atomic=True)
    flexible = fresh()
    flexible_result = flexible.apply_batch(bad_batch, atomic=True,
                                           semantics="flexible")
    assert strict_result.failed and flexible_result.failed
    assert strict_result.failed_index == failing_index
    assert flexible_result.failed_index == failing_index
    assert flexible_result.failure == strict_result.failure
    assert fingerprint(flexible) == fingerprint(strict)


# ----------------------------------------------------------------------
# atomic rollback: bit-identical pre-batch state
# ----------------------------------------------------------------------
def test_flexible_atomic_rollback_bit_identical():
    """A protocol-VALID flexible batch that fails on infeasibility
    (never planned away — distinct ids) rolls back to the exact
    pre-batch state, and the scheduler's future matches one that never
    saw the batch."""
    seq = mixed_churn(200, 13, 1, 0.3)
    sched = ReservationScheduler(1, gamma=8)
    for r in seq[:120]:
        sched.apply(r)
    sched.insert(Job("fill", Window(0, 1)))  # packs the only [0,1) slot
    pre = fingerprint(sched)

    bad = ([ins(f"burst{i}", 0, 256) for i in range(6)]
           + [ins("infeasible", 0, 1)])
    result = sched.apply_batch(bad, atomic=True, semantics="flexible")
    assert result.failed and result.rolled_back
    assert result.processed == 0
    assert result.failed_index == len(bad) - 1  # arrival position
    assert isinstance(result.error, ReproError)
    assert fingerprint(sched) == pre

    # future behavior: identical to a scheduler that never saw the batch
    reference = ReservationScheduler(1, gamma=8)
    for r in seq[:120]:
        reference.apply(r)
    reference.insert(Job("fill", Window(0, 1)))
    for r in seq[120:160]:
        sched.apply(r)
        reference.apply(r)
    assert fingerprint(sched) == fingerprint(reference)


def test_flexible_sharded_failure_rolls_back():
    sched = ReservationScheduler(1, gamma=8)
    sched.insert(Job("fill", Window(0, 1)))
    pre = fingerprint(sched)
    bad = [ins("ok", 0, 64), ins("infeasible", 0, 1)]
    result = sched.apply_batch_sharded(bad, semantics="flexible")
    assert result.failed and result.rolled_back
    assert fingerprint(sched) == pre
    # still usable
    assert not sched.apply_batch_sharded([ins("ok", 0, 64)],
                                         semantics="flexible").failed


# ----------------------------------------------------------------------
# sanitizer coverage: the joint planner leaves no unjournaled mutations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["batched", "sharded"])
def test_flexible_under_arena_sanitize(backend):
    """Flexible drives under the checking journal proxies: zero
    unjournaled-mutation reports (any would raise), and results
    bit-identical to the plain arena run."""
    seq = mixed_churn(240, 17, 3, 0.4)

    def run(journal):
        sched = ReservationScheduler(3, gamma=8, journal=journal)
        for burst in iter_batches(seq, 32):
            if backend == "batched":
                result = sched.apply_batch(burst, atomic=True,
                                           semantics="flexible")
            else:
                result = sched.apply_batch_sharded(burst,
                                                   semantics="flexible")
            assert not result.failed
        return fingerprint(sched)

    assert run("arena-sanitize") == run("arena")


# ----------------------------------------------------------------------
# driver / engine / CLI plumbing
# ----------------------------------------------------------------------
def test_run_sequence_flexible_bounds_equivalent():
    seq = churn_storm_sequence(requests=600, seed=5, num_machines=3)

    def run(semantics):
        sched = ReservationScheduler(3, gamma=8)
        res = run_sequence(sched, seq, batch_size=64,
                           batch_semantics=semantics, backend="batched")
        assert not res.failed
        return sched, res

    strict_sched, strict_res = run("strict")
    flex_sched, flex_res = run("flexible")
    assert dict(flex_sched.jobs) == dict(strict_sched.jobs)
    assert flex_sched._max_span_cache == strict_sched._max_span_cache
    assert len(flex_res.ledger.entries) == len(strict_res.ledger.entries)
    assert flex_res.ledger.total_migrations <= len(seq)


def test_run_engine_flexible_smoke(tmp_path):
    seq = churn_storm_sequence(requests=400, seed=6, num_machines=3)
    result = run_engine(ReservationScheduler(3, gamma=8), seq,
                        batch_size=64, batch_semantics="flexible",
                        backend="sharded", verify="incremental")
    assert not result.failed
    assert result.requests_processed == len(seq)


def test_cli_batch_semantics_flag(capsys):
    from repro.cli import main

    assert main(["demo", "--requests", "120", "--batch-size", "16",
                 "--batch-semantics", "flexible"]) == 0
    out = capsys.readouterr().out
    assert "semantics=flexible" in out
    with pytest.raises(SystemExit):
        main(["demo", "--batch-semantics", "loose"])
