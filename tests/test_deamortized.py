"""Tests for the deamortized even/odd-slot rebuild scheduler."""

import pytest

from repro.core import InvalidRequestError, Job, Window, verify_schedule
from repro.reservation import DeamortizedReservationScheduler, virtual_window
from repro.reservation.trimming import TrimmedReservationScheduler
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


class TestVirtualWindow:
    def test_halves_aligned_windows(self):
        assert virtual_window(Window(0, 8)) == Window(0, 4)
        assert virtual_window(Window(8, 16)) == Window(4, 8)
        assert virtual_window(Window(6, 8)) == Window(3, 4)

    def test_rejects_span_one(self):
        with pytest.raises(InvalidRequestError):
            virtual_window(Window(3, 4))

    def test_rejects_unaligned(self):
        with pytest.raises(InvalidRequestError):
            virtual_window(Window(1, 3))

    def test_real_slot_in_real_window(self):
        # every virtual slot of either parity maps into the real window
        for start_idx in range(8):
            for log_span in range(1, 5):
                span = 1 << log_span
                w = Window(start_idx * span, (start_idx + 1) * span)
                vw = virtual_window(w)
                for q in (0, 1):
                    for v in vw.slots():
                        assert (2 * v + q) in w


class TestDeamortizedScheduler:
    def test_params(self):
        with pytest.raises(ValueError):
            DeamortizedReservationScheduler(gamma=3)
        with pytest.raises(ValueError):
            DeamortizedReservationScheduler(migrate_per_request=1)

    def test_basic_insert_delete(self):
        s = DeamortizedReservationScheduler(gamma=8)
        s.insert(Job("a", Window(0, 8)))
        s.insert(Job("b", Window(0, 8)))
        verify_schedule(s.jobs, s.placements, 1)
        slots = {pl.slot for pl in s.placements.values()}
        assert len(slots) == 2
        s.delete("a")
        verify_schedule(s.jobs, s.placements, 1)

    def test_parities_partition(self):
        """During a phase, old jobs sit on one parity, new on the other."""
        s = DeamortizedReservationScheduler(gamma=8, min_n_star=4)
        for i in range(12):
            s.insert(Job(i, Window(0, 1 << 12)))
            verify_schedule(s.jobs, s.placements, 1)
        # some phase happened (n* doubled beyond 4)
        assert s.phases_started >= 1
        assert s.n_star >= 8

    def test_span_one_rejected(self):
        s = DeamortizedReservationScheduler()
        with pytest.raises(InvalidRequestError):
            s.insert(Job("tiny", Window(5, 6)))

    def test_no_bulk_finishes_under_hysteresis(self):
        s = DeamortizedReservationScheduler(gamma=8)
        cfg = AlignedWorkloadConfig(
            num_requests=600, gamma=32, horizon=1 << 12, max_span=1 << 12,
            min_span=2, delete_fraction=0.4,
        )
        seq = random_aligned_sequence(cfg, seed=3)
        for req in seq:
            s.apply(req)
            verify_schedule(s.jobs, s.placements, 1)
        assert s.bulk_finishes == 0

    def test_worst_case_request_cost_constant(self):
        """The deamortized point: no Theta(n) spikes at n* boundaries."""
        deam = DeamortizedReservationScheduler(gamma=8)
        amort = TrimmedReservationScheduler(gamma=8)
        n = 80
        for i in range(n):
            deam.insert(Job(i, Window(0, 1 << 12)))
            amort.insert(Job(i, Window(0, 1 << 12)))
        # growth phases happened in both
        assert amort.rebuilds >= 2
        # amortized: some request paid a rebuild-size cost
        assert amort.ledger.max_reallocation >= 16
        # deamortized: every request paid O(1) — 2 migrations + O(1)
        # reservation churn on each side.
        assert deam.ledger.max_reallocation <= 8
        verify_schedule(deam.jobs, deam.placements, 1)

    def test_shrink_phase(self):
        s = DeamortizedReservationScheduler(gamma=8)
        for i in range(60):
            s.insert(Job(i, Window(0, 1 << 12)))
        grown = s.n_star
        for i in range(58):
            s.delete(i)
            verify_schedule(s.jobs, s.placements, 1)
        assert s.n_star < grown
        assert s.ledger.max_reallocation <= 8

    def test_mixed_spans_churn(self):
        s = DeamortizedReservationScheduler(gamma=8)
        cfg = AlignedWorkloadConfig(
            num_requests=400, gamma=32, horizon=1 << 11, max_span=1 << 11,
            min_span=2, delete_fraction=0.35,
        )
        seq = random_aligned_sequence(cfg, seed=11)
        for req in seq:
            s.apply(req)
            verify_schedule(s.jobs, s.placements, 1)
        assert s.ledger.max_reallocation <= 10
