"""High-level feasibility / underallocation checking API.

This is the offline oracle the paper's model assumes exists: given the
active job set, decide (a) plain feasibility, (b) whether the set is
gamma-underallocated. Three methods, strongest guarantees first:

- ``check_feasible``: exact, via Jackson's-rule EDF sweep (unit jobs),
  audited by Hopcroft–Karp matching when ``audit=True``.
- ``check_gamma_underallocated``: exact for the paper's operational
  definition on the *coarse-grid certificate* (size-gamma jobs run at
  multiples of gamma — the schedule the inductive arguments of Lemmas
  2/3/10 construct); this implies true gamma-underallocation and is
  implied by 2*gamma-underallocation.
- ``density_gamma``: the Lemma 2 density bound (necessary condition),
  cheap enough for generators to call per job.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..core.job import Job, JobId
from .hall import coarse_grid_jobs, interval_density_bound, underallocation_factor
from .matching import feasible_assignment, greedy_edf_feasible, max_matching_size


def check_feasible(
    jobs: Mapping[JobId, Job],
    num_machines: int,
    *,
    audit: bool = False,
) -> bool:
    """Exact feasibility of unit jobs with windows on m machines."""
    result = greedy_edf_feasible(jobs.values(), num_machines)
    if audit:
        match_ok = max_matching_size(jobs, num_machines) == len(jobs)
        if match_ok != result:  # pragma: no cover - cross-check guard
            raise AssertionError(
                f"EDF ({result}) and matching ({match_ok}) disagree on feasibility"
            )
    return result


def check_gamma_underallocated(
    jobs: Mapping[JobId, Job],
    num_machines: int,
    gamma: int,
) -> bool:
    """Coarse-grid certificate of gamma-underallocation.

    True iff the jobs, inflated to length gamma and restricted to start
    at multiples of gamma, are feasible — checked exactly by reducing to
    unit jobs on the gamma-coarse grid. A True result implies the
    paper's gamma-underallocation; a False result still allows
    (gamma..2*gamma)-underallocated instances (the restriction to
    aligned starts costs at most a factor 2 of slack).
    """
    if gamma < 1:
        raise ValueError("gamma must be >= 1")
    if not jobs:
        return True
    try:
        coarse = coarse_grid_jobs(jobs, gamma)
    except ValueError:
        return False
    return greedy_edf_feasible(coarse.values(), num_machines)


def density_gamma(jobs: Mapping[JobId, Job], num_machines: int) -> Fraction:
    """Largest gamma satisfying the Lemma 2 density condition."""
    return underallocation_factor(jobs.values(), num_machines)


def max_density(jobs: Mapping[JobId, Job], num_machines: int) -> Fraction:
    """Peak window density (jobs per machine-slot); <= 1 is necessary
    for feasibility."""
    return interval_density_bound(jobs.values(), num_machines)


def offline_schedule(
    jobs: Mapping[JobId, Job],
    num_machines: int,
) -> dict[JobId, tuple[int, int]] | None:
    """A feasible offline (machine, slot) assignment, or None.

    Thin wrapper over the matching substrate, exported for examples and
    for seeding schedulers with an initial schedule.
    """
    return feasible_assignment(jobs, num_machines)
