"""Hall-condition / density certificates and the laminar load tree.

Lemma 2 of the paper: if a recursively aligned job set is m-machine
gamma-underallocated, then any aligned window ``W`` contains at most
``m * |W| / gamma`` jobs whose windows nest inside ``W``. For laminar
(recursively aligned) instances the converse also holds — the density
condition is exactly feasibility of the gamma-inflated instance when
jobs run on a gamma-coarse grid (the inductive argument in Lemma 3).

For *general* (unaligned) windows the density over all intervals
``[a, b)`` spanned by job endpoints is necessary and, for unit jobs,
also sufficient at gamma = 1 (Hall's theorem for interval bipartite
graphs); for gamma > 1 it is the certificate the paper's definition
uses operationally.

:class:`LaminarLoadTree` maintains, under inserts/deletes of aligned
jobs, the job count of every aligned window, supporting O(log span)
underallocation queries. The random workload generators use it to emit
instances with an exact target underallocation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from ..core.job import Job, JobId
from ..core.window import Window, aligned_window_covering


def interval_density_bound(jobs: Iterable[Job], num_machines: int) -> Fraction:
    """max over candidate intervals of  (#jobs with window inside I) / (m * |I|).

    The reciprocal of this quantity is the largest gamma for which the
    density certificate of gamma-underallocation holds. Candidate
    intervals are all [release_i, deadline_j) pairs — O(n^2) of them —
    which is exhaustive: the maximizing interval's endpoints can be
    assumed to coincide with job window endpoints.

    Returns 0 for an empty instance.
    """
    job_list = list(jobs)
    if not job_list:
        return Fraction(0)
    releases = sorted({j.release for j in job_list})
    deadlines = sorted({j.deadline for j in job_list})
    best = Fraction(0)
    # Sort jobs once; for each candidate window count contained jobs.
    job_list.sort(key=lambda j: (j.release, j.deadline))
    for a in releases:
        for b in deadlines:
            if b <= a:
                continue
            count = sum(1 for j in job_list if a <= j.release and j.deadline <= b)
            if count == 0:
                continue
            density = Fraction(count, num_machines * (b - a))
            if density > best:
                best = density
    return best


def underallocation_factor(jobs: Iterable[Job], num_machines: int) -> Fraction:
    """Largest gamma such that the density certificate holds (Fraction).

    ``gamma = 1 / max-density``; an empty instance is infinitely
    underallocated, reported as Fraction(10**9) for practical purposes.
    """
    density = interval_density_bound(jobs, num_machines)
    if density == 0:
        return Fraction(10**9)
    return 1 / density


def is_density_underallocated(
    jobs: Iterable[Job], num_machines: int, gamma: int
) -> bool:
    """Does the density certificate of gamma-underallocation hold?"""
    return interval_density_bound(jobs, num_machines) * gamma <= 1


class LaminarLoadTree:
    """Aligned-window job counts under dynamic insert/delete.

    For every aligned window ``W`` (span a power of two, start a
    multiple of the span) with at least one contained job, ``load(W)``
    is the number of active jobs whose windows nest inside ``W``.

    The tree is keyed by (span, start-index) and updated along the
    O(log max_span) ancestor chain of each job's window. ``max_span``
    bounds the largest aligned window tracked; loads of windows larger
    than ``max_span`` are not stored (their density only improves).
    """

    def __init__(self, max_span: int) -> None:
        if max_span < 1:
            raise ValueError("max_span must be >= 1")
        self.max_span = max_span
        self._load: dict[Window, int] = {}
        self._jobs: dict[JobId, Window] = {}

    def __len__(self) -> int:
        return len(self._jobs)

    def _chain(self, window: Window) -> Iterable[Window]:
        """The window itself plus all aligned ancestors up to max_span."""
        yield window
        yield from window.aligned_ancestors(self.max_span)

    def add(self, job_id: JobId, window: Window) -> None:
        if not window.is_aligned:
            raise ValueError(f"{window} is not aligned")
        if job_id in self._jobs:
            raise ValueError(f"job {job_id!r} already tracked")
        self._jobs[job_id] = window
        for w in self._chain(window):
            self._load[w] = self._load.get(w, 0) + 1

    def remove(self, job_id: JobId) -> None:
        window = self._jobs.pop(job_id)
        for w in self._chain(window):
            new = self._load[w] - 1
            if new:
                self._load[w] = new
            else:
                del self._load[w]

    def load(self, window: Window) -> int:
        """Number of tracked jobs whose windows nest inside ``window``."""
        return self._load.get(window, 0)

    def would_fit(self, window: Window, num_machines: int, gamma: int) -> bool:
        """Would adding one job with ``window`` keep the instance
        density-gamma-underallocated?

        Checks ``gamma * (load + 1) <= m * |W|`` for the window and all
        its aligned ancestors — for laminar instances that is the full
        Lemma 2 condition (windows disjoint from this one are
        unaffected).
        """
        for w in self._chain(window):
            if gamma * (self._load.get(w, 0) + 1) > num_machines * w.span:
                return False
        return True

    def max_density(self, num_machines: int) -> Fraction:
        """Max over tracked aligned windows of load / (m * span)."""
        best = Fraction(0)
        for w, load in self._load.items():
            d = Fraction(load, num_machines * w.span)
            if d > best:
                best = d
        return best

    def verify_against(self, jobs: Mapping[JobId, Job]) -> bool:
        """Cross-check loads against a from-scratch recount (for tests)."""
        recount: dict[Window, int] = {}
        for job in jobs.values():
            w = job.window
            recount[w] = recount.get(w, 0) + 1
            for anc in w.aligned_ancestors(self.max_span):
                recount[anc] = recount.get(anc, 0) + 1
        return recount == self._load


def coarse_grid_jobs(jobs: Mapping[JobId, Job], gamma: int) -> dict[JobId, Job]:
    """Reduce 'length-gamma jobs on a unit grid' to unit jobs on a gamma grid.

    The sufficiency direction of Lemma 2/3: gamma-size jobs restricted
    to start at multiples of gamma are exactly unit jobs over coarse
    slots ``[ceil(r/gamma), floor(d/gamma))``. Jobs whose windows cannot
    fit any full coarse slot map to None and make the certificate fail —
    we signal that by raising ValueError.
    """
    out: dict[JobId, Job] = {}
    for job_id, job in jobs.items():
        lo = -(-job.release // gamma)  # ceil
        hi = job.deadline // gamma  # floor
        if hi <= lo:
            raise ValueError(
                f"job {job_id!r} window {job.window} admits no aligned gamma-slot"
            )
        out[job_id] = Job(job_id, Window(lo, hi))
    return out
