"""Offline feasibility and underallocation substrate (matching, Hall/density)."""

from .checker import (
    check_feasible,
    check_gamma_underallocated,
    density_gamma,
    max_density,
    offline_schedule,
)
from .hall import LaminarLoadTree, coarse_grid_jobs, interval_density_bound, underallocation_factor
from .matching import HopcroftKarp, feasible_assignment, greedy_edf_feasible, max_matching_size

__all__ = [
    "check_feasible",
    "check_gamma_underallocated",
    "density_gamma",
    "max_density",
    "offline_schedule",
    "LaminarLoadTree",
    "coarse_grid_jobs",
    "interval_density_bound",
    "underallocation_factor",
    "HopcroftKarp",
    "feasible_assignment",
    "greedy_edf_feasible",
    "max_matching_size",
]
