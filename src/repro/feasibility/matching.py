"""Bipartite matching for offline feasibility of unit jobs.

The offline substrate the paper assumes: deciding whether a set of unit
jobs with windows fits on ``m`` machines is a bipartite matching problem
between jobs and (machine, slot) pairs. We implement Hopcroft–Karp from
scratch (O(E * sqrt(V))) — the library cross-checks it against networkx
in the test suite but never depends on networkx at runtime.

For unit jobs on identical machines the machine identity is symmetric,
so feasibility reduces to matching jobs to *slots with multiplicity m*;
we exploit that to shrink the graph: right vertices are (slot, copy)
pairs with copy < m, and we only materialize slots inside some window.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping, Sequence

from ..core.job import Job, JobId

_INF = float("inf")


class HopcroftKarp:
    """Maximum bipartite matching via Hopcroft–Karp.

    Left vertices are arbitrary hashables; adjacency is supplied as a
    mapping from left vertex to an iterable of right vertices (also
    hashables). ``match()`` returns the matching as a dict left->right.
    """

    def __init__(self, adjacency: Mapping[Hashable, Sequence[Hashable]]) -> None:
        self.adj = {u: list(vs) for u, vs in adjacency.items()}
        self.match_left: dict[Hashable, Hashable] = {}
        self.match_right: dict[Hashable, Hashable] = {}

    def _bfs(self) -> bool:
        """Layered BFS from free left vertices; True if an augmenting path exists."""
        self._dist: dict[Hashable, float] = {}
        queue: deque[Hashable] = deque()
        for u in self.adj:
            if u not in self.match_left:
                self._dist[u] = 0
                queue.append(u)
            else:
                self._dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in self.adj[u]:
                w = self.match_right.get(v)
                if w is None:
                    found = True
                elif self._dist[w] == _INF:
                    self._dist[w] = self._dist[u] + 1
                    queue.append(w)
        return found

    def _dfs(self, u: Hashable) -> bool:
        for v in self.adj[u]:
            w = self.match_right.get(v)
            if w is None or (self._dist[w] == self._dist[u] + 1 and self._dfs(w)):
                self.match_left[u] = v
                self.match_right[v] = u
                return True
        self._dist[u] = _INF
        return False

    def match(self) -> dict[Hashable, Hashable]:
        """Compute and return a maximum matching (left -> right)."""
        while self._bfs():
            for u in self.adj:
                if u not in self.match_left:
                    self._dfs(u)
        return dict(self.match_left)

    @property
    def size(self) -> int:
        return len(self.match_left)


def job_slot_adjacency(
    jobs: Mapping[JobId, Job],
    num_machines: int,
) -> dict[JobId, list[tuple[int, int]]]:
    """Adjacency from jobs to (slot, machine-copy) right vertices.

    Only unit jobs are supported here; sized jobs go through
    ``repro.baselines.sized_jobs``.
    """
    adj: dict[JobId, list[tuple[int, int]]] = {}
    for job_id, job in jobs.items():
        if job.size != 1:
            raise ValueError("job_slot_adjacency supports unit jobs only")
        # Shorter windows first benefit from deterministic slot order.
        adj[job_id] = [(t, c) for t in job.window.slots() for c in range(num_machines)]
    return adj


def max_matching_size(jobs: Mapping[JobId, Job], num_machines: int) -> int:
    """Size of a maximum job -> (slot, machine) matching."""
    if not jobs:
        return 0
    hk = HopcroftKarp(job_slot_adjacency(jobs, num_machines))
    hk.match()
    return hk.size


def feasible_assignment(
    jobs: Mapping[JobId, Job],
    num_machines: int,
) -> dict[JobId, tuple[int, int]] | None:
    """A feasible (machine, slot) per job, or None if infeasible.

    Machines are assigned from the slot copies, so the result is a valid
    multiprocessor schedule: copy index = machine index.
    """
    if not jobs:
        return {}
    hk = HopcroftKarp(job_slot_adjacency(jobs, num_machines))
    matching = hk.match()
    if len(matching) < len(jobs):
        return None
    return {job_id: (copy, slot) for job_id, (slot, copy) in matching.items()}


def greedy_edf_feasible(jobs: Iterable[Job], num_machines: int) -> bool:
    """Fast exact feasibility via Jackson's rule (EDF) for unit jobs.

    Sweep time slots in increasing order; at each slot fill the ``m``
    machines with the released, unscheduled jobs of earliest deadline.
    For unit jobs on identical machines this greedy is exact, and it is
    much faster than matching — the checker uses it as the primary
    method and the matching as an audit.
    """
    remaining = sorted(jobs, key=lambda j: (j.release, j.deadline))
    for job in remaining:
        if job.size != 1:
            raise ValueError("greedy_edf_feasible supports unit jobs only")
    if not remaining:
        return True
    import heapq

    by_deadline: list[tuple[int, int]] = []  # (deadline, tiebreak)
    idx = 0
    t = remaining[0].release
    n = len(remaining)
    while idx < n or by_deadline:
        if not by_deadline and idx < n and remaining[idx].release > t:
            t = remaining[idx].release
        while idx < n and remaining[idx].release <= t:
            heapq.heappush(by_deadline, (remaining[idx].deadline, idx))
            idx += 1
        for _ in range(num_machines):
            if not by_deadline:
                break
            deadline, _k = heapq.heappop(by_deadline)
            if deadline <= t:  # job's window closed before it ran
                return False
        t += 1
    return True
