"""Lemma 12: the Omega(s^2) reallocation lower bound (staircase toggle).

Without underallocation, length-s request sequences exist on which *any*
scheduler reschedules Theta(s^2) jobs in total. The construction:

- eta = s/2 standing jobs, job j with window [j, j+2) — a staircase in
  which each job has exactly two admissible slots and consecutive jobs
  overlap in one slot;
- a probe job toggling between window [0, 1) (forcing every staircase
  job into its *later* slot) and window [eta, eta+1) (forcing every job
  into its *earlier* slot).

Each toggle therefore moves all eta jobs: Omega(eta) per probe request,
Omega(eta^2) = Omega(s^2) total. The staircase windows are deliberately
unaligned and exactly allocated — the instance is feasible throughout
but has zero slack, the regime Section 6 analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.requests import RequestSequence


def staircase_toggle_sequence(eta: int, toggles: int | None = None) -> RequestSequence:
    """Build the Lemma 12 request sequence.

    Parameters
    ----------
    eta:
        Number of standing staircase jobs (the paper's s/2).
    toggles:
        Number of probe insert/delete pairs; defaults to eta (the
        paper's choice, giving a length-Theta(eta) tail and total cost
        Theta(eta^2)).
    """
    if eta < 1:
        raise ValueError("eta must be >= 1")
    if toggles is None:
        toggles = eta
    seq = RequestSequence()
    for j in range(eta):
        seq.insert(f"stair{j}", j, j + 2)
    for t in range(toggles):
        if t % 2 == 0:
            # Force everyone late: probe pins slot 0.
            seq.insert(f"probe{t}", 0, 1)
        else:
            # Force everyone early: probe pins slot eta.
            seq.insert(f"probe{t}", eta, eta + 1)
        seq.delete(f"probe{t}")
    return seq


@dataclass(frozen=True)
class ReallocLowerBound:
    """Predicted cost bounds for a staircase run (for report overlays)."""

    eta: int
    toggles: int

    @property
    def requests(self) -> int:
        return self.eta + 2 * self.toggles

    @property
    def min_total_reallocations(self) -> int:
        """Every toggle after the first forces >= eta-1 moves.

        The first probe may find the staircase already in its preferred
        parity; all later probes flip it.
        """
        return max(0, self.toggles - 1) * (self.eta - 1)
