"""Observation 13: the Omega(k*n) lower bound for mixed job sizes.

With unit jobs and size-k jobs together, no reallocating scheduler can
do well even under arbitrary constant underallocation. The paper's
construction on a schedule of length M = 2*gamma*k:

- k standing unit jobs with the full window [0, M);
- one size-k job p with a span-k window, deleted and re-inserted with
  windows [0, k), [k, 2k), ..., [M-k, M), then wrapping, for n sweeps.

Wherever p lands it covers k slots, evicting every unit job sitting
there; since the unit jobs have total freedom, any scheduler pays
Omega(k) per hop of p amortized over the sweep, i.e. Omega(k*n) over
Theta(n) requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.requests import RequestSequence


def sized_pump_sequence(k: int, gamma: int, sweeps: int) -> RequestSequence:
    """Build the Observation 13 request sequence.

    Parameters
    ----------
    k:
        Size of the large job (and the count of standing unit jobs).
    gamma:
        Slack constant; the horizon is ``2 * gamma * k`` so the unit
        jobs remain gamma-underallocated throughout.
    sweeps:
        How many times the size-k job sweeps across the horizon.
    """
    if k < 2:
        raise ValueError("k must be >= 2 (size-1 jobs are the unit case)")
    if gamma < 1:
        raise ValueError("gamma must be >= 1")
    horizon = 2 * gamma * k
    seq = RequestSequence()
    for i in range(k):
        seq.insert(f"u{i}", 0, horizon)
    uid = 0
    positions = list(range(0, horizon - k + 1, k))
    seq.insert(f"p{uid}", positions[0], positions[0] + k, size=k)
    for _ in range(sweeps):
        for pos in positions[1:] + positions[:1]:
            seq.delete(f"p{uid}")
            uid += 1
            seq.insert(f"p{uid}", pos, pos + k, size=k)
    return seq


@dataclass(frozen=True)
class SizedLowerBound:
    """Predicted totals for the sized pump (report overlays)."""

    k: int
    gamma: int
    sweeps: int

    @property
    def requests(self) -> int:
        hops = self.sweeps * (2 * self.gamma)
        return self.k + 1 + 2 * hops

    @property
    def min_total_reallocations(self) -> int:
        """Each full sweep evicts every unit job at least once: k per sweep."""
        return self.sweeps * self.k
