"""The paper's lower-bound constructions (Section 6 and Observation 13)."""

from .migration_lb import MigrationAdversaryResult, run_migration_adversary
from .realloc_lb import ReallocLowerBound, staircase_toggle_sequence
from .sized_lb import SizedLowerBound, sized_pump_sequence

__all__ = [
    "MigrationAdversaryResult",
    "run_migration_adversary",
    "ReallocLowerBound",
    "staircase_toggle_sequence",
    "SizedLowerBound",
    "sized_pump_sequence",
]
