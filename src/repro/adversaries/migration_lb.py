"""Lemma 11: the migration lower bound adversary.

For any deterministic scheduler on m > 1 machines, there are request
sequences of length s forcing Omega(s) migrations. The construction
(repeated every 6m requests):

1. insert 2m span-2 jobs with window [0, 2) — the only feasible schedule
   packs two jobs on every machine;
2. delete the m jobs currently scheduled on the first m/2 machines —
   the adversary *observes the schedule* to pick victims (this is why
   the adversary is a driver, not a static request list);
3. insert m span-1 jobs with window [0, 1) — now every machine needs
   exactly one span-2 job at slot 1, so m/2 span-2 jobs must migrate off
   the doubled-up machines;
4. delete everything.

Total: >= m/2 migrations per 6m requests = s/12 over the sequence. The
instance is exactly allocated (not underallocated) during step 3, which
is the point: Theorem 1's migration guarantee needs slack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.base import ReallocatingScheduler
from ..core.job import Job
from ..core.window import Window


@dataclass(frozen=True)
class MigrationAdversaryResult:
    """Outcome of one adversarial run."""

    requests: int
    rounds: int
    total_migrations: int
    total_reallocations: int

    @property
    def migrations_per_request(self) -> float:
        return self.total_migrations / self.requests if self.requests else 0.0

    @property
    def lower_bound(self) -> float:
        """The Lemma 11 bound: s/12 migrations for s requests."""
        return self.requests / 12


def run_migration_adversary(
    scheduler: ReallocatingScheduler,
    rounds: int,
) -> MigrationAdversaryResult:
    """Drive the Lemma 11 adversary for the given number of rounds.

    The scheduler must have an even machine count m >= 2. Each round
    issues exactly 6m requests. Returns measured migration totals; the
    theorem predicts ``total_migrations >= rounds * m/2``.
    """
    m = scheduler.num_machines
    if m < 2 or m % 2:
        raise ValueError("the Lemma 11 adversary needs an even machine count >= 2")
    requests = 0
    uid = 0
    for _ in range(rounds):
        # Step 1: 2m span-2 jobs; every machine gets two.
        batch = []
        for _ in range(2 * m):
            job_id = f"a{uid}"
            uid += 1
            scheduler.insert(Job(job_id, Window(0, 2)))
            batch.append(job_id)
            requests += 1
        # Step 2: observe, then delete all jobs on machines [0, m/2).
        victims = [job_id for job_id in batch
                   if scheduler.placements[job_id].machine < m // 2]
        if len(victims) != m:  # pragma: no cover - forced by feasibility
            raise AssertionError(
                f"schedule does not pack 2 jobs/machine: {len(victims)} victims"
            )
        for job_id in victims:
            scheduler.delete(job_id)
            requests += 1
        # Step 3: m span-1 jobs; forces one span-2 job per machine.
        for _ in range(m):
            job_id = f"b{uid}"
            uid += 1
            scheduler.insert(Job(job_id, Window(0, 1)))
            batch.append(job_id)
            requests += 1
        # Step 4: delete all remaining jobs.
        for job_id in batch:
            if job_id in scheduler.jobs:
                scheduler.delete(job_id)
                requests += 1
    return MigrationAdversaryResult(
        requests=requests,
        rounds=rounds,
        total_migrations=scheduler.ledger.total_migrations,
        total_reallocations=scheduler.ledger.total_reallocations,
    )
