"""Earliest-deadline-first rebuild scheduler (the classical, brittle baseline).

Jackson's rule / EDF is the textbook algorithm for unit jobs with
release times and deadlines: sweep time slots in increasing order and at
each slot run, on each machine, a released unscheduled job with the
earliest deadline. For unit jobs on identical machines this is exact —
it finds a feasible schedule whenever one exists.

As a *reallocating* scheduler it recomputes the whole schedule from
scratch after every request. The paper's Section 1 observation is that
this class of greedy policies is **brittle**: a single insertion can
shift Omega(n) jobs even in highly underallocated instances, because the
greedy order has no memory. The E3 experiment measures exactly that
via this class.

Determinism: ties (equal deadlines) break by job id string, so the
rebuild is reproducible; the *brittleness* is intrinsic, not an artifact
of tie-breaking.
"""

from __future__ import annotations

import heapq
from typing import Mapping

from ..core.base import ReallocatingScheduler
from ..core.exceptions import InfeasibleError
from ..core.job import Job, JobId, Placement


class EDFRebuildScheduler(ReallocatingScheduler):
    """Recompute an EDF schedule from scratch on every request."""

    def __init__(self, num_machines: int = 1) -> None:
        super().__init__(num_machines)
        self._placements: dict[JobId, Placement] = {}

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self._placements

    def _apply_insert(self, job: Job) -> None:
        if job.size != 1:
            raise InfeasibleError("EDF rebuild handles unit jobs only")
        self._rebuild()

    def _apply_delete(self, job: Job) -> None:
        remaining = {k: v for k, v in self.jobs.items() if k != job.id}
        self._rebuild(remaining)

    def _rebuild(self, jobs: Mapping[JobId, Job] | None = None) -> None:
        jobs = self.jobs if jobs is None else jobs
        self._placements = edf_schedule(jobs, self.num_machines)


def edf_schedule(
    jobs: Mapping[JobId, Job],
    num_machines: int,
) -> dict[JobId, Placement]:
    """One-shot EDF (Jackson's rule) schedule; raises InfeasibleError.

    Deterministic machine assignment: at each time slot, machines fill
    in index order with jobs popped in (deadline, id-string) order.
    """
    placements: dict[JobId, Placement] = {}
    if not jobs:
        return placements
    order = sorted(jobs.values(), key=lambda j: (j.release, j.deadline, str(j.id)))
    heap: list[tuple[int, str, JobId]] = []  # (deadline, tiebreak, id)
    idx = 0
    n = len(order)
    t = order[0].release
    while idx < n or heap:
        if not heap and idx < n and order[idx].release > t:
            t = order[idx].release
        while idx < n and order[idx].release <= t:
            j = order[idx]
            heapq.heappush(heap, (j.deadline, str(j.id), j.id))
            idx += 1
        for machine in range(num_machines):
            if not heap:
                break
            deadline, _tie, job_id = heapq.heappop(heap)
            if deadline <= t:
                raise InfeasibleError(
                    f"EDF: job {job_id!r} missed its deadline {deadline} at time {t}"
                )
            placements[job_id] = Placement(machine, t)
        t += 1
    return placements
