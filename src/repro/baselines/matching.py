"""Per-request-optimal minimum-change scheduler (Hungarian assignment).

A strong comparator the paper does not have: after each request, compute
the feasible schedule that moves the *fewest* existing jobs relative to
the previous schedule. This is an assignment problem — jobs to
(machine, slot) pairs, cost 0 for keeping a job's previous placement and
1 for any other admissible placement — solved exactly with
``scipy.optimize.linear_sum_assignment``.

Its per-request cost lower-bounds every reallocating scheduler's
*greedy-per-request* cost, making it the yardstick in E1/E3: the
reservation scheduler's costs should sit within a constant factor of
this local optimum, while EDF rebuilds sit far above. (Note it is not a
global lower bound over whole sequences — being locally stingy can paint
the schedule into corners; the Lemma 12 adversary forces even this
scheduler to pay Theta(s^2).)

The assignment solve is O(n^3)-ish per request — this baseline is for
*cost* comparisons, not throughput.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..core.base import ReallocatingScheduler
from ..core.exceptions import InfeasibleError, InvalidRequestError
from ..core.job import Job, JobId, Placement


class MinChangeMatchingScheduler(ReallocatingScheduler):
    """Per-request minimum-reallocation scheduler via optimal assignment.

    Parameters
    ----------
    num_machines:
        Machine count m.
    migration_weight:
        Extra cost charged for placements that keep the slot-change
        count equal but change machines; with the default 0.001 the
        solver minimizes reallocations first and migrations second,
        mirroring the paper's two-level objective.
    """

    #: large finite cost for inadmissible pairs (avoids inf in LAP solver)
    _FORBIDDEN = 10**6

    def __init__(self, num_machines: int = 1, *, migration_weight: float = 1e-3) -> None:
        super().__init__(num_machines)
        if not 0 <= migration_weight < 1:
            raise ValueError("migration_weight must be in [0, 1)")
        self.migration_weight = migration_weight
        self._placements: dict[JobId, Placement] = {}

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self._placements

    def _apply_insert(self, job: Job) -> None:
        if job.size != 1:
            raise InvalidRequestError("matching scheduler handles unit jobs only")
        self._resolve()

    def _apply_delete(self, job: Job) -> None:
        previous = dict(self._placements)
        del previous[job.id]
        remaining = {k: v for k, v in self.jobs.items() if k != job.id}
        self._placements = self._solve(remaining, previous)

    def _resolve(self) -> None:
        self._placements = self._solve(self.jobs, self._placements)

    def _solve(
        self,
        jobs: Mapping[JobId, Job],
        previous: Mapping[JobId, Placement],
    ) -> dict[JobId, Placement]:
        if not jobs:
            return {}
        job_ids = sorted(jobs, key=str)
        slots = sorted({s for j in jobs.values() for s in j.window.slots()})
        columns = [(m, s) for s in slots for m in range(self.num_machines)]
        col_index = {c: i for i, c in enumerate(columns)}
        cost = np.full((len(job_ids), len(columns)), float(self._FORBIDDEN))
        for r, job_id in enumerate(job_ids):
            job = jobs[job_id]
            prev = previous.get(job_id)
            for s in job.window.slots():
                for m in range(self.num_machines):
                    c = 1.0
                    if prev is not None:
                        if prev.machine == m and prev.slot == s:
                            c = 0.0
                        elif prev.slot == s:
                            c = 1.0  # same slot, machine change: still a move
                        if prev.machine != m and c > 0:
                            c += self.migration_weight
                    cost[r, col_index[(m, s)]] = c
        if cost.shape[1] < cost.shape[0]:
            raise InfeasibleError(
                "fewer machine-slots than jobs; no feasible schedule exists"
            )
        rows, cols = linear_sum_assignment(cost)
        if len(rows) < len(job_ids):  # pragma: no cover - guarded above
            raise InfeasibleError("assignment left jobs unscheduled")
        out: dict[JobId, Placement] = {}
        for r, c in zip(rows, cols):
            if cost[r, c] >= self._FORBIDDEN:
                raise InfeasibleError(
                    "no feasible schedule exists for the current job set"
                )
            machine, slot = columns[c]
            out[job_ids[r]] = Placement(machine, slot)
        return out
