"""Naive pecking-order scheduler (Lemma 4).

The paper's warm-up: insert a job into any empty slot of its window; if
none exists, displace any job with at least double the span scheduled in
the window and recursively reinsert it. For recursively aligned
instances every insert/delete costs ``O(min{log n, log Delta})``
reallocations — one displaced job per distinct span on the cascade path.

This is the whole-span-range version of the constant-size base case
inside the reservation scheduler; here it stands alone as the Lemma 4
baseline for experiment E2, where its log Delta cascade growth contrasts
with the reservation scheduler's log* Delta.

Deletion is free (remove the job; no reshuffling), matching the lemma's
accounting.
"""

from __future__ import annotations

from typing import Mapping

from ..core.base import ReallocatingScheduler
from ..core.exceptions import InfeasibleError, InvalidRequestError
from ..core.job import Job, JobId, Placement
from ..core.window import Window


class NaivePeckingScheduler(ReallocatingScheduler):
    """Single-machine displacement scheduler for aligned unit jobs."""

    def __init__(self) -> None:
        super().__init__(num_machines=1)
        self.slot_job: dict[int, JobId] = {}
        self._placements: dict[JobId, Placement] = {}

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self._placements

    def _apply_insert(self, job: Job) -> None:
        if job.size != 1:
            raise InvalidRequestError("naive pecking handles unit jobs only")
        if not job.window.is_aligned:
            raise InvalidRequestError(
                f"window {job.window} is not aligned; wrap with AligningScheduler"
            )
        current_id, current_window = job.id, job.window
        # Spans strictly double along the cascade, so the loop is bounded
        # by the number of distinct spans (log Delta).
        for _ in range(current_window.span.bit_length() + 64):
            slot = self._free_slot(current_window)
            if slot is not None:
                self.slot_job[slot] = current_id
                self._placements[current_id] = Placement(0, slot)
                return
            victim = self._victim(current_window)
            if victim is None:
                raise InfeasibleError(
                    f"window {current_window} is full of jobs with nested "
                    "windows; instance is infeasible"
                )
            vslot = self._placements[victim].slot
            self.slot_job[vslot] = current_id
            self._placements[current_id] = Placement(0, vslot)
            del self._placements[victim]
            current_id = victim
            current_window = self.jobs[victim].window
        raise AssertionError("cascade exceeded span-doubling bound")  # pragma: no cover

    def _apply_delete(self, job: Job) -> None:
        slot = self._placements.pop(job.id).slot
        del self.slot_job[slot]

    def _free_slot(self, window: Window) -> int | None:
        for s in window.slots():
            if s not in self.slot_job:
                return s
        return None

    def _victim(self, window: Window) -> JobId | None:
        """Job in the window with smallest span > |window| (deterministic)."""
        best: JobId | None = None
        best_key: tuple[int, int] | None = None
        for s in window.slots():
            occ = self.slot_job.get(s)
            if occ is None:
                continue
            span = self.jobs[occ].span
            if span <= window.span:
                continue
            key = (span, s)
            if best_key is None or key < best_key:
                best, best_key = occ, key
        return best
