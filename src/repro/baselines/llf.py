"""Least-laxity-first rebuild scheduler (the other classical greedy).

LLF prioritizes the job whose *laxity* — remaining window minus
remaining work, here ``deadline - t - 1`` for a unit job — is smallest.
For unit jobs LLF's priority order coincides with EDF's at every time
step (laxity = deadline - t - 1 is monotone in the deadline), so LLF is
also exact; the class exists because the paper names both EDF and LLF as
brittle classical policies and the brittleness experiment (E3) exercises
both. The implementations differ in their tie-breaking (LLF breaks ties
by *release* then id, EDF by id), which is enough to make their
reallocation traces diverge — demonstrating that the brittleness is a
property of rebuild-from-scratch greedy policies, not of one particular
ordering.
"""

from __future__ import annotations

import heapq
from typing import Mapping

from ..core.base import ReallocatingScheduler
from ..core.exceptions import InfeasibleError
from ..core.job import Job, JobId, Placement


class LLFRebuildScheduler(ReallocatingScheduler):
    """Recompute a least-laxity-first schedule from scratch on every request."""

    def __init__(self, num_machines: int = 1) -> None:
        super().__init__(num_machines)
        self._placements: dict[JobId, Placement] = {}

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self._placements

    def _apply_insert(self, job: Job) -> None:
        if job.size != 1:
            raise InfeasibleError("LLF rebuild handles unit jobs only")
        self._rebuild()

    def _apply_delete(self, job: Job) -> None:
        remaining = {k: v for k, v in self.jobs.items() if k != job.id}
        self._rebuild(remaining)

    def _rebuild(self, jobs: Mapping[JobId, Job] | None = None) -> None:
        jobs = self.jobs if jobs is None else jobs
        self._placements = llf_schedule(jobs, self.num_machines)


def llf_schedule(
    jobs: Mapping[JobId, Job],
    num_machines: int,
) -> dict[JobId, Placement]:
    """One-shot LLF schedule; raises InfeasibleError when a job is late.

    At each slot ``t`` a released unit job's laxity is
    ``deadline - t - 1``; smallest laxity runs first. Ties break by
    (release, id-string).
    """
    placements: dict[JobId, Placement] = {}
    if not jobs:
        return placements
    order = sorted(jobs.values(), key=lambda j: (j.release, j.deadline, str(j.id)))
    heap: list[tuple[int, int, str, JobId]] = []  # (deadline, release, tie, id)
    idx = 0
    n = len(order)
    t = order[0].release
    while idx < n or heap:
        if not heap and idx < n and order[idx].release > t:
            t = order[idx].release
        while idx < n and order[idx].release <= t:
            j = order[idx]
            # laxity order == deadline order for unit jobs; the stored
            # tuple encodes LLF's distinct tie-breaking.
            heapq.heappush(heap, (j.deadline, j.release, str(j.id), j.id))
            idx += 1
        for machine in range(num_machines):
            if not heap:
                break
            deadline, _rel, _tie, job_id = heapq.heappop(heap)
            if deadline - t - 1 < 0:
                raise InfeasibleError(
                    f"LLF: job {job_id!r} has negative laxity at time {t}"
                )
            placements[job_id] = Placement(machine, t)
        t += 1
    return placements
