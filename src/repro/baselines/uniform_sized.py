"""Uniform size-k jobs with O(log* n) reallocations (Section 7, extension).

The paper's first open question asks whether the reallocation scheduler
generalizes beyond unit sizes, noting Observation 13 blocks *mixed*
sizes. For the **uniform** case — every job has the same size k — the
answer is yes, by the same coarse-grid reduction the paper's own
Lemma 2/3 arguments use: restrict size-k jobs to start at multiples of
k; then slots of the coarse grid ``[k*v, k*(v+1))`` are unit slots and
the problem *is* the unit-job problem with windows

    [ceil(release / k), floor(deadline / k))

on the coarse grid. Every guarantee transfers verbatim: O(log* n)
coarse-moves per request (each moving one size-k job), at most one
migration, with the underallocation requirement scaled by the grid
restriction (a gamma-underallocated coarse instance corresponds to a
k*gamma'-underallocated real instance for a constant gamma').

This does not contradict Observation 13 — the lower bound needs two
*different* sizes whose boundaries misalign; a uniform grid has no
misalignment to exploit.

:class:`UniformSizedReservationScheduler` wraps the full Theorem 1
facade on the coarse grid. Jobs whose window cannot fit any full
coarse slot are rejected as infeasible-for-this-policy (their windows
are too tight for the aligned-start restriction — the constant-factor
slack assumption makes such windows jobless anyway).
"""

from __future__ import annotations

from typing import Mapping

from ..core.api import ReservationScheduler
from ..core.base import ReallocatingScheduler
from ..core.exceptions import InvalidRequestError, UnderallocationError
from ..core.job import Job, JobId, Placement
from ..core.window import Window
from ..levels.policy import LevelPolicy, PAPER_POLICY


class UniformSizedReservationScheduler(ReallocatingScheduler):
    """Theorem 1 guarantees for jobs that all share one size k.

    Parameters
    ----------
    size:
        The uniform job size k (>= 1; 1 degenerates to the unit facade).
    num_machines, gamma, policy:
        Forwarded to the inner :class:`ReservationScheduler`.
    """

    def __init__(
        self,
        size: int,
        num_machines: int = 1,
        *,
        gamma: int = 8,
        policy: LevelPolicy = PAPER_POLICY,
    ) -> None:
        super().__init__(num_machines=num_machines)
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.inner = ReservationScheduler(
            num_machines, gamma=gamma, policy=policy)

    # ------------------------------------------------------------------
    def _coarse_window(self, window: Window) -> Window:
        lo = -(-window.release // self.size)  # ceil
        hi = window.deadline // self.size  # floor
        if hi <= lo:
            raise UnderallocationError(
                f"window {window} admits no start at a multiple of "
                f"{self.size}; too tight for the uniform-size policy"
            )
        return Window(lo, hi)

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return {
            job_id: Placement(pl.machine, pl.slot * self.size)
            for job_id, pl in self.inner.placements.items()
        }

    def _apply_insert(self, job: Job) -> None:
        if job.size != self.size:
            raise InvalidRequestError(
                f"this scheduler handles size-{self.size} jobs only, "
                f"got size {job.size}"
            )
        coarse = Job(job.id, self._coarse_window(job.window))
        self.inner.insert(coarse)

    def _apply_delete(self, job: Job) -> None:
        self.inner.delete(job.id)

    def check_balance(self) -> None:
        self.inner.check_balance()
