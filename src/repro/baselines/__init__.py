"""Baseline reallocating schedulers the experiments compare against.

- :class:`EDFRebuildScheduler` / :class:`LLFRebuildScheduler` — the
  classical greedy policies the paper calls brittle (Section 1);
- :class:`NaivePeckingScheduler` — the Lemma 4 warm-up with
  O(log Delta) cascades;
- :class:`MinChangeMatchingScheduler` — per-request-optimal
  reallocation via the Hungarian method (our yardstick);
- :class:`SizedGreedyScheduler` — first-fit rebuild for the sized-job
  lower bound (Observation 13).
"""

from .edf import EDFRebuildScheduler, edf_schedule
from .llf import LLFRebuildScheduler, llf_schedule
from .matching import MinChangeMatchingScheduler
from .naive_pecking import NaivePeckingScheduler
from .sized_jobs import SizedGreedyScheduler, sized_first_fit
from .uniform_sized import UniformSizedReservationScheduler

__all__ = [
    "UniformSizedReservationScheduler",
    "EDFRebuildScheduler",
    "edf_schedule",
    "LLFRebuildScheduler",
    "llf_schedule",
    "MinChangeMatchingScheduler",
    "NaivePeckingScheduler",
    "SizedGreedyScheduler",
    "sized_first_fit",
]
