"""Greedy rebuild scheduler for jobs with sizes > 1 (Observation 13 support).

The paper's main results are for unit jobs; Observation 13 shows why:
with sizes 1 and k mixed, *any* reallocating scheduler can be forced to
pay Omega(k*n) over Theta(n) requests. To measure that lower bound we
need some scheduler that handles sized jobs at all; this module provides
a deadline-ordered first-fit rebuild:

    sort active jobs by (deadline, -size); place each at the earliest
    admissible start with `size` consecutive free slots on any machine.

Non-preemptive scheduling of mixed-size jobs with windows is NP-hard in
general, so this greedy is *not* exact — it raises
:class:`InfeasibleError` when it fails even though a feasible schedule
might exist. It is exact on the Observation 13 adversary family (one
size-k job plus unit jobs with full windows), which is all the
experiment needs; the docstring of E6 in EXPERIMENTS.md records this
substitution.
"""

from __future__ import annotations

from typing import Mapping

from ..core.base import ReallocatingScheduler
from ..core.exceptions import InfeasibleError
from ..core.job import Job, JobId, Placement


class SizedGreedyScheduler(ReallocatingScheduler):
    """Deadline-ordered first-fit rebuild for jobs of mixed sizes."""

    def __init__(self, num_machines: int = 1) -> None:
        super().__init__(num_machines)
        self._placements: dict[JobId, Placement] = {}

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self._placements

    def _apply_insert(self, job: Job) -> None:
        self._rebuild(self.jobs)

    def _apply_delete(self, job: Job) -> None:
        remaining = {k: v for k, v in self.jobs.items() if k != job.id}
        self._rebuild(remaining)

    def _rebuild(self, jobs: Mapping[JobId, Job]) -> None:
        self._placements = sized_first_fit(jobs, self.num_machines)


def sized_first_fit(
    jobs: Mapping[JobId, Job],
    num_machines: int,
) -> dict[JobId, Placement]:
    """Deadline-ordered first-fit for sized jobs; raises on failure.

    Larger jobs break deadline ties first (they are harder to fit).
    """
    order = sorted(jobs.values(), key=lambda j: (j.deadline, -j.size, str(j.id)))
    occupied: list[set[int]] = [set() for _ in range(num_machines)]
    placements: dict[JobId, Placement] = {}
    for job in order:
        placed = False
        for start in range(job.release, job.deadline - job.size + 1):
            span = range(start, start + job.size)
            for machine in range(num_machines):
                if all(t not in occupied[machine] for t in span):
                    occupied[machine].update(span)
                    placements[job.id] = Placement(machine, start)
                    placed = True
                    break
            if placed:
                break
        if not placed:
            raise InfeasibleError(
                f"first-fit could not place sized job {job.id!r} "
                f"(size {job.size}, window {job.window}); the instance may "
                "still be feasible — this greedy is not exact for mixed sizes"
            )
    return placements
