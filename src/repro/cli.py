"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
- ``demo`` — run a short churn workload through the Theorem 1
  scheduler and print the cost table (sanity check of an install).
- ``compare`` — head-to-head cost comparison of all schedulers on a
  generated workload (``--requests``, ``--machines``, ``--seed``).
- ``engine`` — run one scenario at scale through the batch engine with
  phase-split timing, incremental verification, and checkpoints.
- ``sweep`` — run every (scenario x scheduler) cell through the engine
  and print the comparison table.
- ``generate`` — emit a workload as JSON (replayable with ``replay``).
- ``replay`` — run a JSON request trace through a chosen scheduler,
  verifying feasibility after every request.
- ``bounds`` — print the paper's bound values at given parameters.

``demo``, ``engine``, and ``sweep`` accept ``--batch-size N`` (drive
requests through the transactional ``apply_batch`` API in bursts of N),
``--atomic-batches`` (all-or-nothing bursts), ``--batch-semantics
{strict,flexible}`` (``flexible`` plans each burst jointly — deletes
coalesced, interior insert/delete pairs elided, surviving inserts
placed in span order; bounds-equivalent rather than
placement-identical), and ``--backend
{auto,sequential,batched,sharded}`` — the session drive backend;
``sharded`` fans each burst out to per-machine shard workers on
delegating scheduler stacks. ``--shard-workers {serial,threads,
processes}`` picks the worker flavor (``processes`` keeps each
machine's sub-scheduler resident in a worker process across bursts —
the flavor with real parallelism); the old boolean ``--shard-parallel``
is a deprecated alias for ``--shard-workers threads``.

``engine`` and ``sweep`` support resumable runs: ``--trace FILE`` /
``--trace-dir DIR`` write the session's JSONL checkpoint trace,
``--stop-after N`` ends a run gracefully mid-stream, and ``--resume``
continues from the last checkpoint (completed sweep cells are read
back from their traces without re-running).
"""

from __future__ import annotations

import argparse
import sys

from .analysis.bounds import (
    PAPER_SLACK,
    lemma4_cost_bound,
    lemma11_migration_bound,
    lemma12_reallocation_bound,
    theorem1_cost_bound,
)
from .baselines import (
    EDFRebuildScheduler,
    LLFRebuildScheduler,
    MinChangeMatchingScheduler,
    NaivePeckingScheduler,
)
from .core.api import ReservationScheduler
from .core.base import BATCH_SEMANTICS, SHARD_WORKER_MODES
from .core.requests import RequestSequence
from .sim import (
    format_table,
    run_comparison,
    run_engine,
    run_sequence,
    run_sweep,
    sweep_table,
)
from .workloads import SCENARIOS, AlignedWorkloadConfig, random_aligned_sequence

SCHEDULERS = {
    "reservation": lambda m: ReservationScheduler(m, gamma=8),
    "reservation-deamortized": lambda m: ReservationScheduler(
        m, gamma=8, deamortized=True),
    "edf": lambda m: EDFRebuildScheduler(m),
    "llf": lambda m: LLFRebuildScheduler(m),
    "naive": lambda m: (_require_single(m), NaivePeckingScheduler())[1],
    "matching": lambda m: MinChangeMatchingScheduler(m),
}


def _require_single(m: int) -> None:
    if m != 1:
        raise SystemExit("the naive pecking scheduler is single-machine only")


def resolve_shard_workers(args) -> str:
    """Effective ``--shard-workers`` mode, honoring the deprecated alias.

    An explicit ``--shard-workers`` always wins; ``--shard-parallel``
    alone maps to ``threads`` with a deprecation warning.
    """
    if args.shard_workers is not None:
        return args.shard_workers
    if args.shard_parallel:
        print("warning: --shard-parallel is deprecated; "
              "use --shard-workers threads", file=sys.stderr)
        return "threads"
    return "serial"


def _make_workload(args) -> RequestSequence:
    cfg = AlignedWorkloadConfig(
        num_requests=args.requests,
        num_machines=args.machines,
        gamma=args.gamma,
        horizon=args.horizon,
        max_span=args.horizon,
        delete_fraction=args.delete_fraction,
    )
    return random_aligned_sequence(cfg, seed=args.seed)


def cmd_demo(args) -> int:
    seq = _make_workload(args)
    sched = ReservationScheduler(args.machines, gamma=8)
    result = run_sequence(sched, seq, batch_size=args.batch_size,
                          atomic_batches=args.atomic_batches,
                          batch_semantics=args.batch_semantics,
                          backend=args.backend,
                          shard_workers=resolve_shard_workers(args))
    rows = [[k, v] for k, v in result.summary.items()]
    title = f"Theorem 1 scheduler on {len(seq)} requests"
    if args.batch_size > 1:
        title += (f", batch={args.batch_size}"
                  f"{' atomic' if args.atomic_batches else ''}")
    if args.batch_semantics != "strict":
        title += f", semantics={args.batch_semantics}"
    if args.backend != "auto":
        title += f", backend={args.backend}"
    print(format_table(["metric", "value"], rows, title=title))
    return 0


def cmd_compare(args) -> int:
    seq = _make_workload(args)
    names = args.schedulers.split(",") if args.schedulers else [
        "reservation", "edf", "llf"]
    factories = {}
    for name in names:
        if name not in SCHEDULERS:
            raise SystemExit(
                f"unknown scheduler {name!r}; choices: {sorted(SCHEDULERS)}")
        factories[name] = (lambda nm=name: SCHEDULERS[nm](args.machines))
    results = run_comparison(factories, seq)
    rows = []
    for name, r in results.items():
        s = r.summary
        rows.append([name, s["max_realloc"], s["mean_realloc"],
                     s["max_migration"], s["total_migrations"], s["wall_s"]])
    print(format_table(
        ["scheduler", "max realloc", "mean realloc", "max migr",
         "total migr", "wall s"],
        rows,
        title=f"{len(seq)} requests, m={args.machines}, "
              f"gamma={args.gamma}, seed={args.seed}",
    ))
    return 0


def cmd_engine(args) -> int:
    if args.scenario not in SCENARIOS:
        raise SystemExit(
            f"unknown scenario {args.scenario!r}; choices: {sorted(SCENARIOS)}")
    if args.scheduler not in SCHEDULERS:
        raise SystemExit(
            f"unknown scheduler {args.scheduler!r}; choices: {sorted(SCHEDULERS)}")
    seq = SCENARIOS[args.scenario](args.requests, args.seed, args.machines)
    sched = SCHEDULERS[args.scheduler](args.machines)

    def progress(cp):
        print(f"  [{args.scenario}] {cp.processed} requests, "
              f"{cp.requests_per_second:.0f} req/s "
              f"(sched {cp.scheduler_time_s:.2f}s, verify {cp.verify_time_s:.2f}s, "
              f"validate {cp.validate_time_s:.2f}s)", file=sys.stderr)

    result = run_engine(
        sched, seq,
        batch_size=args.batch_size,
        atomic_batches=args.atomic_batches,
        batch_semantics=args.batch_semantics,
        backend=args.backend,
        shard_workers=resolve_shard_workers(args),
        verify=args.verify,
        checkpoint_every=args.checkpoint_every,
        on_checkpoint=progress if args.checkpoint_every else None,
        stop_after=args.stop_after,
        trace_path=args.trace or None,
        resume=args.resume,
        name=f"{args.scenario}/{args.scheduler}",
    )
    rows = [[k, v] for k, v in result.summary.items()]
    print(format_table(["metric", "value"], rows,
                       title=f"engine: {args.scenario} x {args.scheduler}, "
                             f"{len(seq)} requests"
                             + (f", batch={args.batch_size}"
                                f"{' atomic' if args.atomic_batches else ''}"
                                if args.batch_size > 1 else "")
                             + (f", backend={result.backend}"
                                if args.backend != "auto" else "")))
    return 1 if result.failed else 0


def cmd_sweep(args) -> int:
    scen_names = args.scenarios.split(",") if args.scenarios else sorted(SCENARIOS)
    sched_names = args.schedulers.split(",") if args.schedulers else ["reservation"]
    for name in scen_names:
        if name not in SCENARIOS:
            raise SystemExit(
                f"unknown scenario {name!r}; choices: {sorted(SCENARIOS)}")
    for name in sched_names:
        if name not in SCHEDULERS:
            raise SystemExit(
                f"unknown scheduler {name!r}; choices: {sorted(SCHEDULERS)}")
    scenarios = {
        name: SCENARIOS[name](args.requests, args.seed, args.machines)
        for name in scen_names
    }
    factories = {
        name: (lambda nm=name: SCHEDULERS[nm](args.machines))
        for name in sched_names
    }
    results = run_sweep(scenarios, factories, verify=args.verify,
                        batch_size=args.batch_size,
                        atomic_batches=args.atomic_batches,
                        batch_semantics=args.batch_semantics,
                        backend=args.backend,
                        shard_workers=resolve_shard_workers(args),
                        stop_after=args.stop_after,
                        trace_dir=args.trace_dir or None,
                        resume=args.resume)
    print(sweep_table(
        results,
        title=f"scenario sweep: {args.requests} requests/cell, "
              f"m={args.machines}, seed={args.seed}, verify={args.verify}"
              + (f", backend={args.backend}" if args.backend != "auto" else ""),
    ))
    return 1 if any(r.failed for r in results.values()) else 0


def cmd_generate(args) -> int:
    seq = _make_workload(args)
    out = seq.to_json()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(out)
        print(f"wrote {len(seq)} requests to {args.output}", file=sys.stderr)
    else:
        print(out)
    return 0


def cmd_replay(args) -> int:
    with open(args.trace) as fh:
        seq = RequestSequence.from_json(fh.read())
    if args.scheduler not in SCHEDULERS:
        raise SystemExit(
            f"unknown scheduler {args.scheduler!r}; choices: {sorted(SCHEDULERS)}")
    sched = SCHEDULERS[args.scheduler](args.machines)
    result = run_sequence(sched, seq, stop_on_error=False)
    rows = [[k, v] for k, v in result.summary.items()]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.scheduler} on {args.trace}"))
    return 1 if result.failed else 0


def cmd_lint(args) -> int:
    from .analysis.staticcheck import main as staticcheck_main

    argv = [str(p) for p in args.paths]
    if args.rules:
        argv += ["--rules", args.rules]
    if args.select:
        argv += ["--select", args.select]
    if args.format_ != "text":
        argv += ["--format", args.format_]
    if args.strict:
        argv.append("--strict")
    if args.ratchet:
        argv.append("--ratchet")
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.list_rules:
        argv.append("--list-rules")
    return staticcheck_main(argv)


def cmd_bounds(args) -> int:
    rows = [
        ["Theorem 1 cost (3*log*)", theorem1_cost_bound(args.n, args.delta)],
        ["Lemma 4 naive cost", lemma4_cost_bound(args.n, args.delta)],
        ["Lemma 11 migrations (s=n)", lemma11_migration_bound(args.n)],
        ["Lemma 12 staircase total (eta=n/2)",
         lemma12_reallocation_bound(args.n // 2, args.n // 2)],
        ["composed slack constant", PAPER_SLACK.composed_gamma],
    ]
    print(format_table(["bound", "value"], rows,
                       title=f"paper bounds at n={args.n}, Delta={args.delta}"))
    return 0


DEPRECATION_EPILOG = """\
deprecated options:
  --shard-parallel      superseded by --shard-workers; it maps to
                        --shard-workers threads and warns. Use
                        --shard-workers {serial,threads,processes}
                        instead ('processes' is the flavor with real
                        parallelism). The alias will be removed once
                        downstream scripts have migrated.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, epilog=DEPRECATION_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p):
        p.add_argument("--requests", type=int, default=300)
        p.add_argument("--machines", type=int, default=1)
        p.add_argument("--gamma", type=int, default=8)
        p.add_argument("--horizon", type=int, default=1 << 11)
        p.add_argument("--delete-fraction", type=float, default=0.35,
                       dest="delete_fraction")
        p.add_argument("--seed", type=int, default=0)

    def add_batch_args(p):
        p.add_argument("--batch-size", type=int, default=1, dest="batch_size",
                       help="drive requests through apply_batch in bursts "
                            "of this size (1 = per-request)")
        p.add_argument("--atomic-batches", action="store_true",
                       dest="atomic_batches",
                       help="apply each batch all-or-nothing (rolls the "
                            "whole burst back on a mid-batch failure)")
        p.add_argument("--batch-semantics", default="strict",
                       dest="batch_semantics",
                       choices=list(BATCH_SEMANTICS),
                       help="burst semantics: 'strict' replays bursts "
                            "request-for-request (placement-identical); "
                            "'flexible' plans each burst jointly — "
                            "bounds-equivalent placements, lower cost "
                            "on churny bursts")
        p.add_argument("--backend", default="auto",
                       choices=["auto", "sequential", "batched", "sharded"],
                       help="session drive backend; 'sharded' hands each "
                            "burst's per-machine sub-batches to shard "
                            "workers (delegating stacks only)")
        p.add_argument("--shard-workers", default=None,
                       dest="shard_workers",
                       choices=list(SHARD_WORKER_MODES),
                       help="sharded backend: worker flavor — 'serial' "
                            "(default), 'threads' (GIL-bound pool), or "
                            "'processes' (per-machine sub-schedulers "
                            "resident in worker processes across bursts)")
        p.add_argument("--shard-parallel", action="store_true",
                       dest="shard_parallel",
                       help="DEPRECATED: alias for --shard-workers threads")

    def add_trace_args(p, directory=False):
        if directory:
            p.add_argument("--trace-dir", default="", dest="trace_dir",
                           help="write one JSONL session trace per sweep "
                                "cell into this directory")
        else:
            p.add_argument("--trace", default="",
                           help="write the session's JSONL checkpoint "
                                "trace to this file")
        p.add_argument("--resume", action="store_true",
                       help="continue from the trace's last checkpoint "
                            "(deterministic prefix replay)")
        p.add_argument("--stop-after", type=int, default=0,
                       dest="stop_after",
                       help="end the run gracefully after this many "
                            "requests this session (0 = run to the end)")

    def add_batch_parser(name, help_text):
        p = sub.add_parser(
            name, help=help_text, epilog=DEPRECATION_EPILOG,
            formatter_class=argparse.RawDescriptionHelpFormatter)
        return p

    p = add_batch_parser("demo", "run the Theorem 1 scheduler once")
    add_workload_args(p)
    add_batch_args(p)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("compare", help="compare schedulers on one workload")
    add_workload_args(p)
    p.add_argument("--schedulers", default="",
                   help="comma-separated subset of "
                        f"{sorted(SCHEDULERS)}")
    p.set_defaults(func=cmd_compare)

    p = add_batch_parser("engine", "run one scenario through the batch engine")
    p.add_argument("--scenario", default="steady-state",
                   help=f"one of {sorted(SCENARIOS)}")
    p.add_argument("--scheduler", default="reservation")
    p.add_argument("--requests", type=int, default=10000)
    p.add_argument("--machines", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verify", default="incremental",
                   choices=["incremental", "full", "off"])
    p.add_argument("--checkpoint-every", type=int, default=0,
                   dest="checkpoint_every")
    add_batch_args(p)
    add_trace_args(p)
    p.set_defaults(func=cmd_engine)

    p = add_batch_parser("sweep", "run every scenario x scheduler cell")
    p.add_argument("--scenarios", default="",
                   help=f"comma-separated subset of {sorted(SCENARIOS)}")
    p.add_argument("--schedulers", default="",
                   help=f"comma-separated subset of {sorted(SCHEDULERS)}")
    p.add_argument("--requests", type=int, default=5000)
    p.add_argument("--machines", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verify", default="incremental",
                   choices=["incremental", "full", "off"])
    add_batch_args(p)
    add_trace_args(p, directory=True)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("generate", help="emit a workload trace as JSON")
    add_workload_args(p)
    p.add_argument("--output", default="")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("replay", help="replay a JSON trace")
    p.add_argument("trace")
    p.add_argument("--scheduler", default="reservation")
    p.add_argument("--machines", type=int, default=1)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("bounds", help="print paper bounds at parameters")
    p.add_argument("--n", type=int, default=1024)
    p.add_argument("--delta", type=int, default=1 << 16)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser(
        "lint", help="run the repo contract linter (staticcheck)")
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: the repro package)")
    p.add_argument("--rules", default="",
                   help="comma-separated rule subset (default: all)")
    p.add_argument("--select", default="",
                   help="comma-separated rule families to keep from the "
                        "resolved set (exit 2 on unknown names)")
    p.add_argument("--format", default="text", choices=["text", "json"],
                   dest="format_")
    p.add_argument("--strict", action="store_true",
                   help="fail on warnings too, not just errors")
    p.add_argument("--ratchet", action="store_true",
                   help="run the ratcheted hot-path rules against the "
                        "checked-in baseline")
    p.add_argument("--baseline", default="",
                   help="ratchet baseline path (default: repo root)")
    p.add_argument("--write-baseline", action="store_true",
                   dest="write_baseline",
                   help="regenerate the ratchet baseline from this run")
    p.add_argument("--list-rules", action="store_true", dest="list_rules")
    p.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
