"""Elastic machines: an implementation of a Section 7 open question.

The paper closes with: *"What happens if other types of reallocations
are allowed, such as if new machines can be added or dropped from the
schedule…?"* This module supplies a concrete answer for the delegation
layer: :class:`ElasticScheduler` extends the Section 3 reduction with
``add_machine`` / ``remove_machine`` operations that re-establish the
per-window floor/ceil balance invariant with the *minimum* number of
migrations, and measures that cost in the standard ledger.

What the measurement shows (``bench_elastic.py``'s E13 — distinct from
``bench_throughput.py``'s E13 process-worker bench): adding a machine
to m machines costs about ``sum_W floor(n_W / (m+1))`` migrations —
every window
sheds its share to the newcomer, totalling ~n/(m+1) — and removing a
machine costs ~n/m (its jobs must go somewhere). Both are Theta(n/m)
per elasticity event, and that is optimal to within constants: any
window whose jobs every machine must share forces Omega(n_W/m) moves
onto a new machine, and a dropped machine's jobs must all move. So
unlike inserts/deletes, elasticity events are inherently
linear-in-load — a concrete negative observation for the open question.

The per-window *scheduling* after re-delegation is handled by the
single-machine schedulers exactly as in Section 3; Lemma 3's argument
is unaffected because the ceil(n_W/m) balance bound still holds at the
new machine count.
"""

from __future__ import annotations

from typing import Callable

from ..core.base import ReallocatingScheduler
from ..core.costs import RequestCost, diff_placements
from ..core.exceptions import InvalidRequestError
from ..core.job import Job, JobId
from ..core.window import Window
from .delegation import DelegatingScheduler, WindowBalancer

#: (job, from_machine or None for evicted jobs, to_machine)
Move = tuple[JobId, "int | None", int]


def balanced_targets(total: int, m: int) -> list[int]:
    """Per-machine counts for ``total`` jobs: extras on earliest machines."""
    q, r = divmod(total, m)
    return [q + (1 if i < r else 0) for i in range(m)]


class ElasticWindowBalancer(WindowBalancer):
    """WindowBalancer that supports growing and shrinking the pool."""

    def grow(self) -> list[Move]:
        """Add one machine; return the minimal moves restoring balance."""
        self.m += 1
        moves: list[Move] = []
        for window, members in self._members.items():
            members.append(set())
            moves.extend(self._rebalance_window(window, members))
        return moves

    def shrink(self, index: int) -> list[Move]:
        """Drop machine ``index``; its jobs re-land on the survivors."""
        if self.m <= 1:
            raise ValueError("cannot shrink below one machine")
        self.m -= 1
        moves: list[Move] = []
        for window in list(self._members):
            members = self._members[window]
            homeless = members.pop(index)
            for job_id in homeless:
                del self._where[job_id]
            # Survivors above the dropped index shift down by one.
            for mi in range(index, self.m):
                for job_id in members[mi]:
                    self._where[job_id] = (window, mi)
            moves.extend(self._rebalance_window(window, members,
                                                homeless=homeless))
        return moves

    def _rebalance_window(
        self,
        window: Window,
        members: list[set[JobId]],
        homeless: set[JobId] = frozenset(),
    ) -> list[Move]:
        """Move jobs between machines until counts match the target profile.

        ``homeless`` jobs (from a dropped machine) count toward the
        total and are placed first, emitting ``from_machine=None``
        moves. Job choice is deterministic (min by string id).
        """
        total = sum(len(s) for s in members) + len(homeless)
        target = balanced_targets(total, self.m)
        moves: list[Move] = []
        deficits = [
            i
            for i in range(self.m)
            for _ in range(target[i] - len(members[i]))
            if len(members[i]) < target[i]
        ]
        di = 0
        for job_id in sorted(homeless, key=str):
            dst = deficits[di]
            di += 1
            members[dst].add(job_id)
            self._where[job_id] = (window, dst)
            moves.append((job_id, None, dst))
        for src in range(self.m):
            while len(members[src]) > target[src]:
                job_id = min(members[src], key=str)
                dst = deficits[di]
                di += 1
                members[src].discard(job_id)
                members[dst].add(job_id)
                self._where[job_id] = (window, dst)
                moves.append((job_id, src, dst))
        return moves


class ElasticScheduler(DelegatingScheduler):
    """Delegating scheduler whose machine pool can grow and shrink.

    ``add_machine``/``remove_machine`` are first-class requests with
    measured costs (every moved job counts as a reallocation and a
    migration). Regular inserts/deletes behave exactly as in
    :class:`DelegatingScheduler`.
    """

    def __init__(
        self,
        num_machines: int,
        scheduler_factory: Callable[[], ReallocatingScheduler],
    ) -> None:
        super().__init__(num_machines, scheduler_factory)
        self._factory = scheduler_factory
        self.balancer = ElasticWindowBalancer(num_machines)

    # ------------------------------------------------------------------
    def add_machine(self) -> RequestCost:
        """Add one machine; rebalance every window onto it."""
        if self._batch is not None:
            raise InvalidRequestError(
                "machine pool changes are not allowed inside a batch"
            )
        self._leave_process_mode()
        before = dict(self.placements)
        self.machines.append(self._factory())
        self.num_machines += 1
        moves = self.balancer.grow()
        self._execute(moves)
        self._rebuild_merged()
        cost = diff_placements(
            before, self.placements, kind="add-machine",
            subject=f"machine{self.num_machines - 1}",
            n_active=len(self.jobs), max_span=self._max_span_cache,
        )
        self.ledger.record(cost)
        return cost

    def remove_machine(self, index: int) -> RequestCost:
        """Drop a machine; its jobs migrate to the survivors."""
        if self._batch is not None:
            raise InvalidRequestError(
                "machine pool changes are not allowed inside a batch"
            )
        if self.num_machines <= 1:
            raise ValueError("cannot remove the last machine")
        if not 0 <= index < self.num_machines:
            raise ValueError(f"no machine {index}")
        self._leave_process_mode()
        # Survivor machines above `index` shift down by one position.
        # That relabeling is bookkeeping, not movement, so the cost diff
        # compares against a relabel-corrected snapshot: only jobs that
        # physically changed machines (the evicted ones plus rebalance
        # moves) count as migrations.
        from ..core.job import Placement

        def relabel(pl: Placement) -> Placement:
            if pl.machine > index:
                return Placement(pl.machine - 1, pl.slot)
            if pl.machine == index:
                # Evicted jobs: map to a sentinel position outside the
                # surviving range so any landing spot counts as a move.
                return Placement(self.num_machines, pl.slot)
            return pl

        before = {job_id: relabel(pl)
                  for job_id, pl in self.placements.items()}
        evicted = dict(self.machines[index].jobs)
        del self.machines[index]
        self.num_machines -= 1
        moves = self.balancer.shrink(index)
        self._execute(moves, evicted)
        self._rebuild_merged()
        cost = diff_placements(
            before, self.placements, kind="remove-machine",
            subject=f"machine{index}",
            n_active=len(self.jobs), max_span=self._max_span_cache,
        )
        self.ledger.record(cost)
        return cost

    # ------------------------------------------------------------------
    def _execute(self, moves: list[Move],
                 evicted: dict[JobId, Job] | None = None) -> None:
        """Apply moves through the single-machine scheduler layers."""
        # defensive: both callers already left process mode, but a
        # worker-resident sub must never see a coordinator-side mutation
        # (no-op when no pool is open)
        self._leave_process_mode()
        evicted = evicted or {}
        for job_id, src, dst in moves:
            if src is None:
                job = evicted[job_id]
            else:
                job = self.machines[src].jobs[job_id]
                self.machines[src].delete(job_id)
            self.machines[dst].insert(job)

    def _rebuild_merged(self) -> None:
        """Recompute the merged placement map after an elasticity event.

        Machine indexes shift when the pool changes, so the incremental
        map is rebuilt wholesale — O(n), same order as the event itself.
        """
        from ..core.job import Placement

        out: dict[JobId, Placement] = {}
        for mi, sub in enumerate(self.machines):
            for job_id, pl in sub.placements.items():
                out[job_id] = Placement(mi, pl.slot)
        self._placements = out
