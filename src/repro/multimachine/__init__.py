"""Multi-machine reduction (Section 3) and the elastic-machines extension
(a Section 7 open question)."""

from .delegation import DelegatingScheduler, WindowBalancer
from .elastic import ElasticScheduler, ElasticWindowBalancer, balanced_targets

__all__ = [
    "DelegatingScheduler",
    "WindowBalancer",
    "ElasticScheduler",
    "ElasticWindowBalancer",
    "balanced_targets",
]
