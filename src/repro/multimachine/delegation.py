"""Round-robin per-window delegation (Section 3).

The paper reduces m-machine scheduling to single-machine scheduling by
balancing, *per window*, the jobs across machines: if ``n_W`` jobs share
window ``W``, every machine holds between ``floor(n_W/m)`` and
``ceil(n_W/m)`` of them, with the extras on the earliest machines. The
invariant is maintained with at most one migration per request:

- insert: the new job goes to machine ``n_W mod m`` (0-indexed; the
  paper's ``(n_W + 1) mod m`` is the 1-indexed equivalent);
- delete from machine ``i``: the balance donor is machine
  ``(n_W - 1) mod m`` (the last machine holding an extra job); if
  ``i`` differs, one of the donor's ``W``-jobs migrates to machine ``i``.

Lemma 3 guarantees each machine's sub-instance stays 1-machine
underallocated (losing a factor 6) when the full instance is; the
delegator is scheduler-agnostic and works over any per-machine
:class:`~repro.core.base.ReallocatingScheduler` factory.

Sharded burst execution: because machines never share scheduler state
(the balancer is the only coupling, and it is pure bookkeeping), a whole
burst can be resolved up front into independent per-machine op streams
(:meth:`DelegatingScheduler.plan_shard_execution` — the richer sibling
of :meth:`DelegatingScheduler.machine_sub_batches`) and applied by one
:class:`ShardWorker` per machine — serially, on a thread pool, or by
*process-resident* workers (``workers="processes"``): each machine's
sub-scheduler then lives persistently in a worker process across bursts
(:mod:`repro.multimachine.procworkers`), the only path that escapes the
GIL. :meth:`DelegatingScheduler.apply_batch_sharded` then merges the
per-shard touched-placement logs back into the machine-tagged placement
map, balancer, and ledger in global request order — bit-identical to
sequential processing, with whole-burst rollback on any shard failure
(including a worker process dying mid-burst, after which the worker is
re-seeded from a state snapshot). While a process pool is open, the
in-memory ``machines`` are stale; any in-memory entry point
(``apply``, ``apply_batch``, serial/thread sharded bursts) syncs the
worker state back and closes the pool first, and
:meth:`DelegatingScheduler.close_shard_workers` does so explicitly.
The sharded drive backend (:mod:`repro.sim.session`) is its consumer.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from ..core.base import (
    ReallocatingScheduler,
    _BatchContext,
    resolve_batch_semantics,
    resolve_shard_worker_mode,
)
from ..core.costs import BatchResult, RequestCost, diff_touched
from ..core.exceptions import InvalidRequestError, ReproError
from ..core.job import Job, JobId, Placement
from ..core.requests import Batch, DeleteJob, InsertJob, Request
from ..core.window import Window

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type aliases
    from .procworkers import ProcessShardPool

_NOT_SEEN = object()


def _fresh_member_sets(m: int) -> list[set[JobId]]:
    """One empty job-id set per machine (a balancer membership table)."""
    return [set() for _ in range(m)]


def _failure_index(failure: tuple[int, ReproError]) -> int:
    """Sort key for shard failures: the failing request's global index."""
    return failure[0]


def _changed_ids(sub: ReallocatingScheduler, cost: RequestCost,
                 subject: JobId) -> tuple[JobId, ...]:
    """Ids whose placement a sub-request may have changed.

    A sparse sub-scheduler's ``last_touched`` names every job whose
    placement it may have changed (batch mode suspends sub-costs, so
    the touched log is the one signal available in both modes); a
    non-sparse sub reports them via ``cost.subject`` +
    ``cost.rescheduled``. The request's subject is included explicitly
    — a trimming rebuild suspends its inner touched logs, so the
    triggering job may be absent from them. Shared by the live merge
    (:meth:`DelegatingScheduler._sync_machine`) and the deferred one
    (:class:`ShardWorker`), whose equivalence depends on reading the
    same set.
    """
    changed = sub.last_touched
    if changed is None:
        return (cost.subject, *cost.rescheduled)
    if subject not in changed:
        return (subject, *changed)
    return tuple(changed)


class WindowBalancer:
    """Tracks per-window job counts and machine membership.

    Pure bookkeeping — it decides *where* jobs go; the schedulers decide
    *when* they run. Kept separate from the scheduler wrapper so the
    balance invariant can be unit-tested in isolation.

    Per-window counts are maintained incrementally (O(1) round-robin
    choice instead of an O(m) sum), and mutations can be recorded in a
    transaction log (:meth:`begin_txn`) that :meth:`abort_txn` replays
    backwards — the delegation layer's share of atomic-batch rollback.
    """

    def __init__(self, num_machines: int) -> None:
        if num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        self.m = num_machines
        #: window -> list of per-machine job-id sets
        self._members: dict[Window, list[set[JobId]]] = {}
        #: job id -> (window, machine)
        self._where: dict[JobId, tuple[Window, int]] = {}
        #: window -> total job count (incremental; absent = 0)
        self._count: dict[Window, int] = {}
        #: open transaction log (None outside an atomic batch)
        self._oplog: list[tuple] | None = None

    def count(self, window: Window) -> int:
        return self._count.get(window, 0)

    def machine_of(self, job_id: JobId) -> int:
        return self._where[job_id][1]

    def window_of(self, job_id: JobId) -> Window:
        return self._where[job_id][0]

    def choose_insert_machine(self, window: Window) -> int:
        """Machine for a new job with this window: round-robin position."""
        return self._count.get(window, 0) % self.m

    # ------------------------------------------------------------------
    # transaction log (atomic-batch rollback)
    # ------------------------------------------------------------------
    def begin_txn(self) -> None:
        self._oplog = []

    def commit_txn(self) -> None:
        self._oplog = None

    def abort_txn(self) -> None:
        """Replay the transaction log backwards, restoring pre-txn state."""
        ops, self._oplog = self._oplog, None
        if ops is None:
            return
        members = self._members
        where = self._where
        count = self._count
        for op in reversed(ops):
            kind = op[0]
            if kind == "ins":
                self._unrecord_insert(op[1])
            elif kind == "del":
                _, job_id, window, machine = op
                table = members.get(window)
                if table is None:
                    table = members[window] = _fresh_member_sets(self.m)
                table[machine].add(job_id)
                where[job_id] = (window, machine)
                count[window] = count.get(window, 0) + 1
            else:  # "mig"
                _, job_id, window, old = op
                new = where[job_id][1]
                members[window][new].discard(job_id)
                members[window][old].add(job_id)
                where[job_id] = (window, old)

    def record_insert(self, job_id: JobId, window: Window, machine: int) -> None:
        members = self._members.setdefault(window, _fresh_member_sets(self.m))
        members[machine].add(job_id)
        self._where[job_id] = (window, machine)
        self._count[window] = self._count.get(window, 0) + 1
        if self._oplog is not None:
            self._oplog.append(("ins", job_id))

    def _unrecord_insert(self, job_id: JobId) -> None:
        window, machine = self._where.pop(job_id)
        members = self._members[window]
        members[machine].discard(job_id)
        n = self._count[window] - 1
        if n:
            self._count[window] = n
        else:
            del self._count[window]
        if not any(members):
            del self._members[window]

    def plan_delete(self, job_id: JobId) -> tuple[int, JobId | None]:
        """Plan a deletion: returns (machine of job, migrating job or None).

        The migrating job restores the balance invariant: it is one of
        the donor machine's jobs with the same window, moved onto the
        machine that lost a job. None when the deleted job's machine is
        itself the donor.
        """
        window, machine = self._where[job_id]
        members = self._members[window]
        donor = (self.count(window) - 1) % self.m
        if donor == machine:
            return machine, None
        candidates = members[donor] - {job_id}
        if not candidates:  # pragma: no cover - invariant guarantees a donor job
            raise AssertionError(
                f"balance invariant broken: donor machine {donor} holds no "
                f"job with window {window}"
            )
        # Deterministic choice: smallest by string representation.
        mover = min(candidates, key=str)
        return machine, mover

    def record_delete(self, job_id: JobId) -> None:
        window, machine = self._where.pop(job_id)
        members = self._members[window]
        members[machine].discard(job_id)
        n = self._count[window] - 1
        if n:
            self._count[window] = n
        else:
            del self._count[window]
        if not any(members):
            del self._members[window]
        if self._oplog is not None:
            self._oplog.append(("del", job_id, window, machine))

    def record_migration(self, job_id: JobId, to_machine: int) -> None:
        window, old = self._where[job_id]
        self._members[window][old].discard(job_id)
        self._members[window][to_machine].add(job_id)
        self._where[job_id] = (window, to_machine)
        if self._oplog is not None:
            self._oplog.append(("mig", job_id, window, old))

    def check_balance(self) -> None:
        """Assert the floor/ceil balance invariant for every window."""
        for window, members in self._members.items():
            counts = [len(s) for s in members]
            total = sum(counts)
            if total != self._count.get(window, 0):
                raise AssertionError(
                    f"window {window}: incremental count "
                    f"{self._count.get(window, 0)} != actual {total}"
                )
            lo, hi = total // self.m, -(-total // self.m)
            for i, c in enumerate(counts):
                if not lo <= c <= hi:
                    raise AssertionError(
                        f"window {window}: machine {i} holds {c} jobs, "
                        f"expected in [{lo}, {hi}]"
                    )
            # extras must sit on the earliest machines (paper's invariant)
            extras = [i for i, c in enumerate(counts) if c == hi]
            if hi > lo and extras and max(extras) >= total % self.m:
                raise AssertionError(
                    f"window {window}: extra jobs not on earliest machines "
                    f"(counts {counts})"
                )


class ShardOp:
    """One per-machine operation of a planned sharded burst.

    ``req_index`` ties the op back to the batch request that caused it
    (a rebalancing migration contributes a delete op on the donor shard
    and an insert op on the receiving shard, both tagged with the
    triggering delete's index). The worker fills ``changed`` / ``post``
    while applying: the ids whose sub-placement the op changed and their
    post-op sub-level placements — the raw material of the merge phase.
    """

    __slots__ = ("req_index", "machine", "insert", "job", "job_id",
                 "changed", "post")

    def __init__(self, req_index: int, machine: int, insert: bool,
                 job: Job | None, job_id: JobId) -> None:
        self.req_index = req_index
        self.machine = machine
        self.insert = insert
        self.job = job
        self.job_id = job_id
        self.changed: tuple[JobId, ...] = ()
        self.post: dict[JobId, Placement | None] = {}


class PlannedRequest:
    """One batch request resolved to its shard ops and balancer effects."""

    __slots__ = ("kind", "subject", "job", "ops", "balancer_ops")

    def __init__(self, kind: str, subject: JobId, job: Job | None,
                 ops: list[ShardOp], balancer_ops: list[tuple]) -> None:
        self.kind = kind
        self.subject = subject
        self.job = job
        self.ops = ops
        self.balancer_ops = balancer_ops


class ShardPlan:
    """A burst split into independent per-machine op streams.

    ``requests`` holds the global-order view (one entry per batch
    request); ``per_machine`` the same ops partitioned by shard, each
    shard's list in global op order. The two views share the
    :class:`ShardOp` objects, so worker results are visible to the
    merge phase without any copying.
    """

    __slots__ = ("requests", "per_machine")

    def __init__(self, requests: list[PlannedRequest],
                 per_machine: dict[int, list[ShardOp]]) -> None:
        self.requests = requests
        self.per_machine = per_machine


class ShardWorker:
    """Applies one machine's op stream to its single-machine scheduler.

    Workers are mutually independent: each touches only its own
    sub-scheduler (whose atomic batch context the caller opened — the
    context's rollback journal lives on that sub-scheduler's own
    arena, so thread-pool workers share no journal state and
    consecutive bursts reuse each sub's storage), so m workers can run
    serially or on a thread pool with identical results. Per op the worker records exactly what
    :meth:`DelegatingScheduler._sync_machine` would read live — the
    changed job ids (``last_touched`` for sparse subs, the request cost
    for non-sparse ones, the subject always included) and their post-op
    sub placements. A :class:`~repro.core.exceptions.ReproError` stops
    the worker and is reported in :attr:`failure` for the coordinator's
    all-shard abort.
    """

    def __init__(self, machine: int, sub: ReallocatingScheduler,
                 ops: list[ShardOp]) -> None:
        self.machine = machine
        self.sub = sub
        self.ops = ops
        self.failure: tuple[int, ReproError] | None = None

    def run(self) -> None:
        sub = self.sub
        for op in self.ops:
            try:
                if op.insert:
                    cost = sub.insert(op.job)
                else:
                    cost = sub.delete(op.job_id)
            except ReproError as exc:
                self.failure = (op.req_index, exc)
                return
            sub_placements = sub.placements
            op.changed = _changed_ids(sub, cost, op.job_id)
            post: dict[JobId, Placement | None] = {}
            for jid in op.changed:
                post[jid] = sub_placements.get(jid)
            op.post = post


class DelegatingScheduler(ReallocatingScheduler):
    """m-machine scheduler: per-window round-robin over single-machine schedulers.

    Parameters
    ----------
    num_machines:
        Machine count m.
    scheduler_factory:
        Builds the per-machine single-machine scheduler (any
        :class:`ReallocatingScheduler` with ``num_machines == 1``).

    Guarantees (Section 3): at most one migration per request, and the
    per-machine instances satisfy the ceil(n_W/m) bound of Lemma 3.
    """

    _sparse_costing = True

    def __init__(
        self,
        num_machines: int,
        scheduler_factory: Callable[[], ReallocatingScheduler],
    ) -> None:
        super().__init__(num_machines=num_machines)
        self.machines = [scheduler_factory() for _ in range(num_machines)]
        for i, sub in enumerate(self.machines):
            if sub.num_machines != 1:
                raise ValueError(f"sub-scheduler {i} is not single-machine")
        self.balancer = WindowBalancer(num_machines)
        #: merged machine-tagged placement map, maintained incrementally
        #: from the sub-schedulers' touched logs / request costs
        self._placements: dict[JobId, Placement] = {}
        #: per-batch round-robin plan: window -> machine queue for the
        #: batch's grouped inserts (invalidated per window by deletes)
        self._batch_plan: dict[Window, deque[int]] = {}
        #: open process-resident worker pool (None = in-memory mode);
        #: while open, ``self.machines`` entries are stale snapshots
        self._shard_pool = None

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self._placements

    def _sync_machine(self, machine: int, cost: RequestCost,
                      subject: JobId) -> None:
        """Mirror one sub-request's placement changes into the merged map.

        The changed set comes from :func:`_changed_ids` (shared with the
        sharded merge path); syncing it keeps the merged map O(changes)
        per request.
        """
        sub = self.machines[machine]
        sub_placements = sub.placements
        placements = self._placements
        for job_id in _changed_ids(sub, cost, subject):
            self._log_touch(job_id)
            pl = sub_placements.get(job_id)
            if pl is None:
                placements.pop(job_id, None)
            else:
                placements[job_id] = Placement(machine, pl.slot)

    def _apply_insert(self, job: Job) -> None:
        self._leave_process_mode()
        plan = self._batch_plan
        if plan:
            queue = plan.get(job.window)
            machine = (queue.popleft() if queue
                       else self.balancer.choose_insert_machine(job.window))
        else:
            machine = self.balancer.choose_insert_machine(job.window)
        cost = self.machines[machine].insert(job)
        self.balancer.record_insert(job.id, job.window, machine)
        self._sync_machine(machine, cost, job.id)

    def _apply_delete(self, job: Job) -> None:
        self._leave_process_mode()
        if self._batch_plan:
            # A delete changes this window's round-robin position: the
            # rest of its planned insert machines would be stale.
            self._batch_plan.pop(self.balancer.window_of(job.id), None)
        machine, mover = self.balancer.plan_delete(job.id)
        cost = self.machines[machine].delete(job.id)
        self.balancer.record_delete(job.id)
        self._sync_machine(machine, cost, job.id)
        if mover is not None:
            # The single migration: mover leaves the donor machine and
            # re-enters on the machine that lost a job.
            donor = self.balancer.machine_of(mover)
            mover_job = self.machines[donor].jobs[mover]
            cost = self.machines[donor].delete(mover)
            self._sync_machine(donor, cost, mover)
            cost = self.machines[machine].insert(mover_job)
            self._sync_machine(machine, cost, mover)
            self.balancer.record_migration(mover, machine)

    # ------------------------------------------------------------------
    # batch lifecycle and per-window grouping
    # ------------------------------------------------------------------
    def supports_atomic_batches(self) -> bool:
        return all(sub.supports_atomic_batches() for sub in self.machines)

    def _flexible_insert_order_key(self) -> "Callable[[Job], Any] | None":
        """Adopt the per-machine sub-schedulers' preferred joint order."""
        return self.machines[0]._flexible_insert_order_key()

    def _flexible_size_hint(self, deletes: list[DeleteJob],
                            inserts: list[Job]) -> None:
        """Forward the planned net size change to each machine.

        Deletes are counted on the machine holding the job; inserts are
        not yet assigned to machines at hint time, so every machine
        receives the full insert list as its upper bound. An n*
        overshoot from the bound only widens trim spans, which is safe
        (see :meth:`TrimmedReservationScheduler._flexible_size_hint`).
        """
        per_machine: list[list[DeleteJob]] = [
            [] for _ in range(self.num_machines)
        ]
        machine_of = self.balancer.machine_of
        for request in deletes:
            per_machine[machine_of(request.job_id)].append(request)
        for machine, sub in enumerate(self.machines):
            sub._flexible_size_hint(per_machine[machine], inserts)

    def _batch_prepare(self, inserts: list[Job], *,
                       flexible: bool = False) -> None:
        """Group the batch's inserts per window and plan their machines.

        The plan is the round-robin continuation for each window's
        grouped inserts, computed once per batch instead of per request;
        a mid-batch delete of a window drops that window's remaining
        plan (its round-robin position moved) and those inserts fall
        back to the live choice. Sequential equivalence is exact: the
        planned machine equals ``choose_insert_machine`` at apply time.
        A flexible batch's insert phase runs after its coalesced
        deletes with no deletes interleaved, so the same plan built
        from the live (post-delete) counts is exact there too.
        """
        groups: dict[Window, int] = {}
        for job in inserts:
            groups[job.window] = groups.get(job.window, 0) + 1
        m = self.num_machines
        count = self.balancer.count
        self._batch_plan = {
            window: deque((count(window) + i) % m for i in range(n))
            for window, n in groups.items()
        }

    def machine_sub_batches(
        self, requests: Batch | Iterable[Request],
    ) -> dict[int, list[Request]]:
        """Split a batch into the per-machine sub-batches it would drive.

        Planning only — nothing is applied. A thin view over
        :meth:`plan_shard_execution`: every insert lands on exactly the
        machine ``apply_batch`` would choose and deletes go to the
        machine holding the job (including machines reached by earlier
        in-batch migrations). Rebalancing migrations themselves are not
        part of this view — :class:`ShardPlan` carries them as extra
        shard ops. This is what the sharded drive backend consumes: one
        sub-batch per shard worker.
        """
        batch = requests if isinstance(requests, Batch) else Batch(requests)
        plan = self.plan_shard_execution(batch)
        out: dict[int, list[Request]] = {i: [] for i in range(self.num_machines)}
        for request, planned in zip(batch, plan.requests):
            out[planned.ops[0].machine].append(request)
        return out

    def _sim_count(self, counts: dict[Window, int], window: Window) -> int:
        """Simulated per-window count: burst overlay over the live balancer."""
        c = counts.get(window)
        if c is None:
            c = counts[window] = self.balancer.count(window)
        return c

    def _sim_members(self, members: dict[Window, list[set[JobId]]],
                     window: Window) -> list[set[JobId]]:
        """Simulated per-window membership: copy-on-first-touch overlay."""
        ms = members.get(window)
        if ms is None:
            live = self.balancer._members.get(window)
            ms = ([set(s) for s in live] if live is not None
                  else _fresh_member_sets(self.num_machines))
            members[window] = ms
        return ms

    def plan_shard_execution(
        self, requests: Batch | Iterable[Request],
    ) -> ShardPlan:
        """Resolve a burst into independent per-machine op streams.

        The whole burst is simulated against copy-on-first-touch
        overlays of the balancer's per-window counts and memberships:
        inserts advance each window's round-robin position, deletes
        retract it and — exactly as :meth:`WindowBalancer.plan_delete`
        would at apply time — pick the donor machine and migrating job,
        so cross-shard rebalancing migrations become an explicit
        (delete-on-donor, insert-on-receiver) op pair. Because machines
        never share scheduler state (the balancer is the only coupling,
        and it is fully simulated here), each machine's op stream can
        be applied independently and still reproduce sequential
        execution bit for bit.

        Raises :class:`InvalidRequestError` for protocol violations
        (insert of an active id, delete of an inactive id) — nothing
        has been applied at that point.
        """
        batch = requests if isinstance(requests, Batch) else Batch(requests)
        m = self.num_machines
        balancer = self.balancer
        where_live = balancer._where
        counts: dict[Window, int] = {}
        members: dict[Window, list[set[JobId]]] = {}
        #: overlay of (window, machine) per job; None = deleted in batch
        where: dict[JobId, tuple[Window, int] | None] = {}
        batch_jobs: dict[JobId, Job] = {}

        planned: list[PlannedRequest] = []
        for index, request in enumerate(batch):
            if isinstance(request, InsertJob):
                job = request.job
                jid = job.id
                if where.get(jid) is not None or (
                        jid not in where and jid in self.jobs):
                    raise InvalidRequestError(f"job {jid!r} already active")
                w = job.window
                c = self._sim_count(counts, w)
                machine = c % m
                counts[w] = c + 1
                self._sim_members(members, w)[machine].add(jid)
                where[jid] = (w, machine)
                batch_jobs[jid] = job
                planned.append(PlannedRequest(
                    "insert", jid, job,
                    [ShardOp(index, machine, True, job, jid)],
                    [("ins", jid, w, machine)],
                ))
            else:
                jid = request.job_id
                spot = where.get(jid, _NOT_SEEN)
                if spot is _NOT_SEEN:
                    spot = where_live.get(jid)
                if spot is None:
                    raise InvalidRequestError(f"job {jid!r} not active")
                w, machine = spot
                c = self._sim_count(counts, w)
                mem = self._sim_members(members, w)
                donor = (c - 1) % m
                mover: JobId | None = None
                if donor != machine:
                    candidates = mem[donor] - {jid}
                    if not candidates:  # pragma: no cover - invariant
                        raise AssertionError(
                            f"balance invariant broken: donor machine {donor} "
                            f"holds no job with window {w}"
                        )
                    mover = min(candidates, key=str)
                counts[w] = c - 1
                mem[machine].discard(jid)
                where[jid] = None
                ops = [ShardOp(index, machine, False, None, jid)]
                balancer_ops: list[tuple] = [("del", jid)]
                if mover is not None:
                    mover_job = batch_jobs.get(mover)
                    if mover_job is None:
                        mover_job = self.jobs[mover]
                    ops.append(ShardOp(index, donor, False, None, mover))
                    ops.append(ShardOp(index, machine, True, mover_job, mover))
                    balancer_ops.append(("mig", mover, machine))
                    mem[donor].discard(mover)
                    mem[machine].add(mover)
                    where[mover] = (w, machine)
                planned.append(PlannedRequest(
                    "delete", jid, None, ops, balancer_ops))
        per_machine: dict[int, list[ShardOp]] = {i: [] for i in range(m)}
        for pr in planned:
            for op in pr.ops:
                per_machine[op.machine].append(op)
        return ShardPlan(planned, per_machine)

    # ------------------------------------------------------------------
    # sharded burst execution
    # ------------------------------------------------------------------
    def supports_sharded_batches(self) -> bool:
        """Sharded bursts abort shard-wise, so subs must be atomic-capable."""
        return self.supports_atomic_batches()

    def apply_batch_sharded(
        self,
        requests: Batch | Iterable[Request],
        *,
        workers: str | None = None,
        parallel: bool = False,
        record: bool = True,
        semantics: str = "strict",
    ) -> BatchResult:
        """Apply a burst by handing each machine's sub-batch to a worker.

        Equivalent to ``apply_batch`` — placements, per-request costs,
        and max-span tracking come out identical to sequential
        processing — but driven shard-first: the burst is resolved with
        :meth:`plan_shard_execution`, each machine's op stream runs on
        its own worker, and the per-shard touched logs are then merged
        in global request order into the incrementally-maintained
        machine-tagged placement map, the balancer, and the cost ledger.

        ``workers`` selects how the per-machine workers run:

        - ``"serial"`` (default) — one in-process :class:`ShardWorker`
          per machine, run back to back;
        - ``"threads"`` — the same workers on a thread pool (identical
          results; GIL-bound, an architecture demonstration);
        - ``"processes"`` — *process-resident* workers
          (:class:`~repro.multimachine.procworkers.ProcessShardPool`):
          each machine's sub-scheduler lives persistently in a worker
          process across bursts and only op streams cross the pipe —
          the one mode with real parallelism. The pool opens lazily on
          the first process burst and stays open until any in-memory
          entry point syncs the state back (or
          :meth:`close_shard_workers` is called).

        ``parallel=True`` is the deprecated spelling of
        ``workers="threads"``.

        Sharded bursts are always transactional: a failure on any shard
        aborts every shard's batch context and reports
        ``rolled_back=True`` with the earliest failing request's index,
        leaving the scheduler in its exact pre-burst state (the merge
        phase, which is the only thing that mutates delegator-level
        state, never ran). A worker *process* dying mid-burst is the
        same failure path (``WorkerCrashError``), after which the dead
        worker is re-seeded from its last state snapshot — the
        scheduler stays usable.

        ``record=False`` suspends ledger recording, for wrapper layers
        (alignment) that re-cost the burst against their own view.

        ``semantics="flexible"`` runs the joint burst planner first
        (:meth:`~repro.core.base.ReallocatingScheduler._plan_flexible`):
        the *planned* request stream — coalesced deletes, then the
        reordered elision-free inserts — is what shards and merges, and
        per-request costs are mapped back to arrival positions (elided
        pairs as zero-cost entries) before recording, so callers see
        one cost per submitted request either way.
        """
        mode = resolve_shard_worker_mode(workers, parallel)
        resolve_batch_semantics(semantics)
        batch = requests if isinstance(requests, Batch) else Batch(requests)
        if self._batch is not None:
            raise InvalidRequestError(
                "apply_batch_sharded cannot run inside an open batch")
        if not self.supports_sharded_batches():
            raise InvalidRequestError(
                f"{type(self).__name__} sub-schedulers do not support the "
                "atomic batch contexts sharded bursts abort through"
            )
        if semantics == "flexible":
            # Plan against the authoritative job set (synced back from
            # any open worker pool first).
            self._leave_process_mode()
            flex = self._plan_flexible(batch)
            if flex is not None:
                return self._sharded_flexible(batch, flex, mode,
                                              record=record)
            # Protocol-invalid op streams degrade to strict application.
        return self._sharded_dispatch(batch, mode, record=record)

    def _sharded_flexible(
        self,
        batch: Batch,
        flex: "tuple[list[tuple[int, DeleteJob]], list[tuple[int, InsertJob]], list[tuple[int, Request]]]",
        mode: str,
        *,
        record: bool,
    ) -> BatchResult:
        """Shard a planned flexible burst and re-map costs to arrival order."""
        deletes, inserts, elided = flex
        planned = [*deletes, *inserts]
        order = [index for index, _ in planned]
        inner = self._sharded_dispatch(
            Batch([request for _, request in planned]), mode, record=False)
        if inner.failed:
            failed_index = inner.failed_index
            if failed_index is not None:
                failed_index = order[failed_index]
            return BatchResult(
                costs=[], net=None, size=len(batch), atomic=True,
                failed=True, failed_index=failed_index,
                failure=inner.failure, rolled_back=True, error=inner.error,
            )
        by_index = {order[k]: inner.costs[k] for k in range(len(inner.costs))}
        for index, request in elided:
            by_index[index] = self._elided_cost(request)
        costs = [by_index[i] for i in range(len(batch))]
        if record:
            record_cost = self.ledger.record
            for cost in costs:
                record_cost(cost)
        return BatchResult(costs=costs, net=inner.net, size=len(batch),
                           atomic=True)

    def _sharded_dispatch(self, batch: Batch, mode: str, *,
                          record: bool) -> BatchResult:
        """Run one (already validated) burst in the selected worker mode."""
        if mode == "processes":
            return self._sharded_burst_processes(batch, record=record)
        self._leave_process_mode()
        parallel = mode == "threads"
        try:
            plan = self.plan_shard_execution(batch)
        except ReproError as exc:
            return BatchResult(
                costs=[], net=None, size=len(batch), atomic=True,
                failed=True, failed_index=None,
                failure=f"{type(exc).__name__}: {exc}",
                rolled_back=True, error=exc,
            )
        workers = [ShardWorker(machine, self.machines[machine], ops)
                   for machine, ops in plan.per_machine.items() if ops]
        for worker in workers:
            worker.sub._batch_begin(atomic=True, top=False)
        try:
            if parallel and len(workers) > 1:
                with ThreadPoolExecutor(max_workers=len(workers)) as pool:
                    list(pool.map(ShardWorker.run, workers))
            else:
                for worker in workers:
                    worker.run()
        except BaseException:
            # Unexpected (non-ReproError) failure: nothing has merged,
            # so an all-shard abort restores the pre-burst state exactly.
            for worker in workers:
                worker.sub._batch_abort()
            raise
        failures = [w.failure for w in workers if w.failure is not None]
        if failures:
            for worker in workers:
                worker.sub._batch_abort()
            failed_index, error = min(failures, key=_failure_index)
            return BatchResult(
                costs=[], net=None, size=len(batch), atomic=True,
                failed=True, failed_index=failed_index,
                failure=f"{type(error).__name__}: {error}",
                rolled_back=True, error=error,
            )
        try:
            costs, batch_touched = self._merge_shard_results(plan, record=record)
        finally:
            # Close the sub contexts even if the merge blows up: the
            # shards fully applied their streams, so committing them is
            # the consistent half (mirrors apply_batch's non-atomic
            # BaseException path); the exception still propagates.
            for worker in workers:
                worker.sub._batch_commit()
        net = diff_touched(
            batch_touched, self._placements,
            kind="batch", subject="batch",
            n_active=len(self.jobs), max_span=self._max_span_cache,
        )
        return BatchResult(costs=costs, net=net, size=len(batch), atomic=True)

    # ------------------------------------------------------------------
    # process-resident workers
    # ------------------------------------------------------------------
    def _ensure_shard_pool(self) -> ProcessShardPool:
        pool = self._shard_pool
        if pool is None:
            from .procworkers import ProcessShardPool

            pool = self._shard_pool = ProcessShardPool(self.machines)
        return pool

    def _leave_process_mode(self) -> None:
        """Sync worker-resident state back and close the process pool.

        Called by every in-memory entry point (``_apply_insert`` /
        ``_apply_delete`` / ``_batch_begin`` / serial and thread sharded
        bursts): while a process pool is open, the authoritative
        sub-scheduler state lives in the workers, so it must be pulled
        back before ``self.machines`` is used again. No-op when no pool
        is open; the sync is exact (snapshots are taken at a burst
        boundary; a dead worker's state is rebuilt deterministically).
        """
        pool = self._shard_pool
        if pool is None:
            return
        self._shard_pool = None
        try:
            self.machines[:] = pool.sync_subs()
        finally:
            pool.close()

    def close_shard_workers(self) -> None:
        """Public spelling of :meth:`_leave_process_mode` (see base)."""
        self._leave_process_mode()

    def _sharded_burst_processes(self, batch: Batch, *,
                                 record: bool) -> BatchResult:
        """One burst through the process-resident worker pool.

        Mirrors the in-process sharded path: plan, fan the op streams
        out (over pipes instead of function calls), merge the per-shard
        results in global request order, and deliver the commit verdict
        — the workers hold their atomic batch contexts open until the
        coordinator's verdict, so a failure anywhere rolls the whole
        burst back before anything merges.
        """
        try:
            plan = self.plan_shard_execution(batch)
        except ReproError as exc:
            return BatchResult(
                costs=[], net=None, size=len(batch), atomic=True,
                failed=True, failed_index=None,
                failure=f"{type(exc).__name__}: {exc}",
                rolled_back=True, error=exc,
            )
        pool = self._ensure_shard_pool()
        failure = pool.run_burst(plan)
        if failure is not None:
            failed_index, error = failure
            return BatchResult(
                costs=[], net=None, size=len(batch), atomic=True,
                failed=True, failed_index=failed_index,
                failure=f"{type(error).__name__}: {error}",
                rolled_back=True, error=error,
            )
        try:
            costs, batch_touched = self._merge_shard_results(plan, record=record)
        finally:
            # The workers fully applied their streams; committing them is
            # the consistent half even if the merge blows up (mirrors the
            # in-process path). The exception still propagates.
            pool.commit_burst()
        net = diff_touched(
            batch_touched, self._placements,
            kind="batch", subject="batch",
            n_active=len(self.jobs), max_span=self._max_span_cache,
        )
        return BatchResult(costs=costs, net=net, size=len(batch), atomic=True)

    def _merge_shard_results(
        self, plan: ShardPlan, *, record: bool,
    ) -> tuple[list, dict[JobId, Placement | None]]:
        """Fold the workers' per-op touched logs into delegator state.

        Runs in global request order, so every first touch of a job
        reads the same pre-placement sequential execution would log, and
        each request's cost diff sees exactly the post-request map. This
        is :meth:`_sync_machine` deferred: sub-level placement changes
        are machine-tagged into the merged map, the balancer replays the
        planned mutations, and jobs / span tracking / the ledger advance
        per request just as the base class would.
        """
        placements = self._placements
        balancer = self.balancer
        record_cost = self.ledger.record
        batch_touched: dict[JobId, Placement | None] = {}
        costs = []
        for pr in plan.requests:
            req_touched: dict[JobId, Placement | None] = {}
            for op in pr.ops:
                machine = op.machine
                post = op.post
                for jid in op.changed:
                    if jid not in req_touched:
                        pre = placements.get(jid)
                        req_touched[jid] = pre
                        if jid not in batch_touched:
                            batch_touched[jid] = pre
                    pl = post[jid]
                    if pl is None:
                        placements.pop(jid, None)
                    else:
                        placements[jid] = Placement(machine, pl.slot)
            for bop in pr.balancer_ops:
                if bop[0] == "ins":
                    balancer.record_insert(bop[1], bop[2], bop[3])
                elif bop[0] == "del":
                    balancer.record_delete(bop[1])
                else:
                    balancer.record_migration(bop[1], bop[2])
            if pr.kind == "insert":
                self.jobs[pr.subject] = pr.job
                self._span_add(pr.job.span)
                n_active, max_span = len(self.jobs), self._max_span_cache
            else:
                job = self.jobs[pr.subject]
                n_active, max_span = len(self.jobs), self._max_span_cache
                del self.jobs[pr.subject]
                self._span_remove(job.span)
            cost = diff_touched(
                req_touched, placements,
                kind=pr.kind, subject=pr.subject,
                n_active=n_active, max_span=max_span,
            )
            if record:
                record_cost(cost)
            costs.append(cost)
        self.last_touched = None
        return costs, batch_touched

    def _batch_begin(self, *, atomic: bool, top: bool,
                     ephemeral: bool = False,
                     emit_touched: bool = True) -> None:
        self._leave_process_mode()
        super()._batch_begin(atomic=atomic, top=top, ephemeral=ephemeral,
                             emit_touched=emit_touched)
        if atomic and not ephemeral:
            self.balancer.begin_txn()
        for sub in self.machines:
            sub._batch_begin(atomic=atomic, top=False, ephemeral=ephemeral)

    def _batch_commit(self) -> None:
        super()._batch_commit()
        self._batch_plan = {}
        self.balancer.commit_txn()
        for sub in self.machines:
            sub._batch_commit()

    def _batch_restore(self, ctx: _BatchContext) -> None:
        self._batch_plan = {}
        for sub in self.machines:
            sub._batch_abort()
        self.balancer.abort_txn()
        self._restore_placement_map(self._placements, ctx.touched)

    def check_balance(self) -> None:
        self.balancer.check_balance()
