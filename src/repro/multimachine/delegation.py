"""Round-robin per-window delegation (Section 3).

The paper reduces m-machine scheduling to single-machine scheduling by
balancing, *per window*, the jobs across machines: if ``n_W`` jobs share
window ``W``, every machine holds between ``floor(n_W/m)`` and
``ceil(n_W/m)`` of them, with the extras on the earliest machines. The
invariant is maintained with at most one migration per request:

- insert: the new job goes to machine ``n_W mod m`` (0-indexed; the
  paper's ``(n_W + 1) mod m`` is the 1-indexed equivalent);
- delete from machine ``i``: the balance donor is machine
  ``(n_W - 1) mod m`` (the last machine holding an extra job); if
  ``i`` differs, one of the donor's ``W``-jobs migrates to machine ``i``.

Lemma 3 guarantees each machine's sub-instance stays 1-machine
underallocated (losing a factor 6) when the full instance is; the
delegator is scheduler-agnostic and works over any per-machine
:class:`~repro.core.base.ReallocatingScheduler` factory.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.base import ReallocatingScheduler
from ..core.job import Job, JobId, Placement
from ..core.window import Window


class WindowBalancer:
    """Tracks per-window job counts and machine membership.

    Pure bookkeeping — it decides *where* jobs go; the schedulers decide
    *when* they run. Kept separate from the scheduler wrapper so the
    balance invariant can be unit-tested in isolation.
    """

    def __init__(self, num_machines: int) -> None:
        if num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        self.m = num_machines
        #: window -> list of per-machine job-id sets
        self._members: dict[Window, list[set[JobId]]] = {}
        #: job id -> (window, machine)
        self._where: dict[JobId, tuple[Window, int]] = {}

    def count(self, window: Window) -> int:
        members = self._members.get(window)
        return sum(len(s) for s in members) if members else 0

    def machine_of(self, job_id: JobId) -> int:
        return self._where[job_id][1]

    def choose_insert_machine(self, window: Window) -> int:
        """Machine for a new job with this window: round-robin position."""
        return self.count(window) % self.m

    def record_insert(self, job_id: JobId, window: Window, machine: int) -> None:
        members = self._members.setdefault(
            window, [set() for _ in range(self.m)]
        )
        members[machine].add(job_id)
        self._where[job_id] = (window, machine)

    def plan_delete(self, job_id: JobId) -> tuple[int, JobId | None]:
        """Plan a deletion: returns (machine of job, migrating job or None).

        The migrating job restores the balance invariant: it is one of
        the donor machine's jobs with the same window, moved onto the
        machine that lost a job. None when the deleted job's machine is
        itself the donor.
        """
        window, machine = self._where[job_id]
        members = self._members[window]
        donor = (self.count(window) - 1) % self.m
        if donor == machine:
            return machine, None
        candidates = members[donor] - {job_id}
        if not candidates:  # pragma: no cover - invariant guarantees a donor job
            raise AssertionError(
                f"balance invariant broken: donor machine {donor} holds no "
                f"job with window {window}"
            )
        # Deterministic choice: smallest by string representation.
        mover = min(candidates, key=str)
        return machine, mover

    def record_delete(self, job_id: JobId) -> None:
        window, machine = self._where.pop(job_id)
        members = self._members[window]
        members[machine].discard(job_id)
        if not any(members):
            del self._members[window]

    def record_migration(self, job_id: JobId, to_machine: int) -> None:
        window, old = self._where[job_id]
        self._members[window][old].discard(job_id)
        self._members[window][to_machine].add(job_id)
        self._where[job_id] = (window, to_machine)

    def check_balance(self) -> None:
        """Assert the floor/ceil balance invariant for every window."""
        for window, members in self._members.items():
            counts = [len(s) for s in members]
            total = sum(counts)
            lo, hi = total // self.m, -(-total // self.m)
            for i, c in enumerate(counts):
                if not lo <= c <= hi:
                    raise AssertionError(
                        f"window {window}: machine {i} holds {c} jobs, "
                        f"expected in [{lo}, {hi}]"
                    )
            # extras must sit on the earliest machines (paper's invariant)
            extras = [i for i, c in enumerate(counts) if c == hi]
            if hi > lo and extras and max(extras) >= total % self.m:
                raise AssertionError(
                    f"window {window}: extra jobs not on earliest machines "
                    f"(counts {counts})"
                )


class DelegatingScheduler(ReallocatingScheduler):
    """m-machine scheduler: per-window round-robin over single-machine schedulers.

    Parameters
    ----------
    num_machines:
        Machine count m.
    scheduler_factory:
        Builds the per-machine single-machine scheduler (any
        :class:`ReallocatingScheduler` with ``num_machines == 1``).

    Guarantees (Section 3): at most one migration per request, and the
    per-machine instances satisfy the ceil(n_W/m) bound of Lemma 3.
    """

    _sparse_costing = True

    def __init__(
        self,
        num_machines: int,
        scheduler_factory: Callable[[], ReallocatingScheduler],
    ) -> None:
        super().__init__(num_machines=num_machines)
        self.machines = [scheduler_factory() for _ in range(num_machines)]
        for i, sub in enumerate(self.machines):
            if sub.num_machines != 1:
                raise ValueError(f"sub-scheduler {i} is not single-machine")
        self.balancer = WindowBalancer(num_machines)
        #: merged machine-tagged placement map, maintained incrementally
        #: from the sub-schedulers' per-request costs
        self._placements: dict[JobId, Placement] = {}

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self._placements

    def _sync_machine(self, machine: int, cost) -> None:
        """Mirror one sub-request's placement changes into the merged map.

        ``cost.subject`` plus ``cost.rescheduled`` are exactly the jobs
        whose placement the sub-scheduler changed; everything else is
        untouched, so the merged map stays O(changes) per request.
        """
        sub_placements = self.machines[machine].placements
        for job_id in (cost.subject, *cost.rescheduled):
            self._log_touch(job_id)
            pl = sub_placements.get(job_id)
            if pl is None:
                self._placements.pop(job_id, None)
            else:
                self._placements[job_id] = Placement(machine, pl.slot)

    def _apply_insert(self, job: Job) -> None:
        machine = self.balancer.choose_insert_machine(job.window)
        cost = self.machines[machine].insert(job)
        self.balancer.record_insert(job.id, job.window, machine)
        self._sync_machine(machine, cost)

    def _apply_delete(self, job: Job) -> None:
        machine, mover = self.balancer.plan_delete(job.id)
        cost = self.machines[machine].delete(job.id)
        self.balancer.record_delete(job.id)
        self._sync_machine(machine, cost)
        if mover is not None:
            # The single migration: mover leaves the donor machine and
            # re-enters on the machine that lost a job.
            donor = self.balancer.machine_of(mover)
            mover_job = self.machines[donor].jobs[mover]
            cost = self.machines[donor].delete(mover)
            self._sync_machine(donor, cost)
            cost = self.machines[machine].insert(mover_job)
            self._sync_machine(machine, cost)
            self.balancer.record_migration(mover, machine)

    def check_balance(self) -> None:
        self.balancer.check_balance()
