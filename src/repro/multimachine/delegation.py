"""Round-robin per-window delegation (Section 3).

The paper reduces m-machine scheduling to single-machine scheduling by
balancing, *per window*, the jobs across machines: if ``n_W`` jobs share
window ``W``, every machine holds between ``floor(n_W/m)`` and
``ceil(n_W/m)`` of them, with the extras on the earliest machines. The
invariant is maintained with at most one migration per request:

- insert: the new job goes to machine ``n_W mod m`` (0-indexed; the
  paper's ``(n_W + 1) mod m`` is the 1-indexed equivalent);
- delete from machine ``i``: the balance donor is machine
  ``(n_W - 1) mod m`` (the last machine holding an extra job); if
  ``i`` differs, one of the donor's ``W``-jobs migrates to machine ``i``.

Lemma 3 guarantees each machine's sub-instance stays 1-machine
underallocated (losing a factor 6) when the full instance is; the
delegator is scheduler-agnostic and works over any per-machine
:class:`~repro.core.base.ReallocatingScheduler` factory.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Mapping

from ..core.base import ReallocatingScheduler
from ..core.job import Job, JobId, Placement
from ..core.requests import Batch, DeleteJob, InsertJob, Request
from ..core.window import Window


class WindowBalancer:
    """Tracks per-window job counts and machine membership.

    Pure bookkeeping — it decides *where* jobs go; the schedulers decide
    *when* they run. Kept separate from the scheduler wrapper so the
    balance invariant can be unit-tested in isolation.

    Per-window counts are maintained incrementally (O(1) round-robin
    choice instead of an O(m) sum), and mutations can be recorded in a
    transaction log (:meth:`begin_txn`) that :meth:`abort_txn` replays
    backwards — the delegation layer's share of atomic-batch rollback.
    """

    def __init__(self, num_machines: int) -> None:
        if num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        self.m = num_machines
        #: window -> list of per-machine job-id sets
        self._members: dict[Window, list[set[JobId]]] = {}
        #: job id -> (window, machine)
        self._where: dict[JobId, tuple[Window, int]] = {}
        #: window -> total job count (incremental; absent = 0)
        self._count: dict[Window, int] = {}
        #: open transaction log (None outside an atomic batch)
        self._oplog: list[tuple] | None = None

    def count(self, window: Window) -> int:
        return self._count.get(window, 0)

    def machine_of(self, job_id: JobId) -> int:
        return self._where[job_id][1]

    def window_of(self, job_id: JobId) -> Window:
        return self._where[job_id][0]

    def choose_insert_machine(self, window: Window) -> int:
        """Machine for a new job with this window: round-robin position."""
        return self._count.get(window, 0) % self.m

    # ------------------------------------------------------------------
    # transaction log (atomic-batch rollback)
    # ------------------------------------------------------------------
    def begin_txn(self) -> None:
        self._oplog = []

    def commit_txn(self) -> None:
        self._oplog = None

    def abort_txn(self) -> None:
        """Replay the transaction log backwards, restoring pre-txn state."""
        ops, self._oplog = self._oplog, None
        if ops is None:
            return
        for op in reversed(ops):
            kind = op[0]
            if kind == "ins":
                self._unrecord_insert(op[1])
            elif kind == "del":
                _, job_id, window, machine = op
                self._members.setdefault(
                    window, [set() for _ in range(self.m)]
                )[machine].add(job_id)
                self._where[job_id] = (window, machine)
                self._count[window] = self._count.get(window, 0) + 1
            else:  # "mig"
                _, job_id, window, old = op
                new = self._where[job_id][1]
                self._members[window][new].discard(job_id)
                self._members[window][old].add(job_id)
                self._where[job_id] = (window, old)

    def record_insert(self, job_id: JobId, window: Window, machine: int) -> None:
        members = self._members.setdefault(
            window, [set() for _ in range(self.m)]
        )
        members[machine].add(job_id)
        self._where[job_id] = (window, machine)
        self._count[window] = self._count.get(window, 0) + 1
        if self._oplog is not None:
            self._oplog.append(("ins", job_id))

    def _unrecord_insert(self, job_id: JobId) -> None:
        window, machine = self._where.pop(job_id)
        members = self._members[window]
        members[machine].discard(job_id)
        n = self._count[window] - 1
        if n:
            self._count[window] = n
        else:
            del self._count[window]
        if not any(members):
            del self._members[window]

    def plan_delete(self, job_id: JobId) -> tuple[int, JobId | None]:
        """Plan a deletion: returns (machine of job, migrating job or None).

        The migrating job restores the balance invariant: it is one of
        the donor machine's jobs with the same window, moved onto the
        machine that lost a job. None when the deleted job's machine is
        itself the donor.
        """
        window, machine = self._where[job_id]
        members = self._members[window]
        donor = (self.count(window) - 1) % self.m
        if donor == machine:
            return machine, None
        candidates = members[donor] - {job_id}
        if not candidates:  # pragma: no cover - invariant guarantees a donor job
            raise AssertionError(
                f"balance invariant broken: donor machine {donor} holds no "
                f"job with window {window}"
            )
        # Deterministic choice: smallest by string representation.
        mover = min(candidates, key=str)
        return machine, mover

    def record_delete(self, job_id: JobId) -> None:
        window, machine = self._where.pop(job_id)
        members = self._members[window]
        members[machine].discard(job_id)
        n = self._count[window] - 1
        if n:
            self._count[window] = n
        else:
            del self._count[window]
        if not any(members):
            del self._members[window]
        if self._oplog is not None:
            self._oplog.append(("del", job_id, window, machine))

    def record_migration(self, job_id: JobId, to_machine: int) -> None:
        window, old = self._where[job_id]
        self._members[window][old].discard(job_id)
        self._members[window][to_machine].add(job_id)
        self._where[job_id] = (window, to_machine)
        if self._oplog is not None:
            self._oplog.append(("mig", job_id, window, old))

    def check_balance(self) -> None:
        """Assert the floor/ceil balance invariant for every window."""
        for window, members in self._members.items():
            counts = [len(s) for s in members]
            total = sum(counts)
            if total != self._count.get(window, 0):
                raise AssertionError(
                    f"window {window}: incremental count "
                    f"{self._count.get(window, 0)} != actual {total}"
                )
            lo, hi = total // self.m, -(-total // self.m)
            for i, c in enumerate(counts):
                if not lo <= c <= hi:
                    raise AssertionError(
                        f"window {window}: machine {i} holds {c} jobs, "
                        f"expected in [{lo}, {hi}]"
                    )
            # extras must sit on the earliest machines (paper's invariant)
            extras = [i for i, c in enumerate(counts) if c == hi]
            if hi > lo and extras and max(extras) >= total % self.m:
                raise AssertionError(
                    f"window {window}: extra jobs not on earliest machines "
                    f"(counts {counts})"
                )


class DelegatingScheduler(ReallocatingScheduler):
    """m-machine scheduler: per-window round-robin over single-machine schedulers.

    Parameters
    ----------
    num_machines:
        Machine count m.
    scheduler_factory:
        Builds the per-machine single-machine scheduler (any
        :class:`ReallocatingScheduler` with ``num_machines == 1``).

    Guarantees (Section 3): at most one migration per request, and the
    per-machine instances satisfy the ceil(n_W/m) bound of Lemma 3.
    """

    _sparse_costing = True

    def __init__(
        self,
        num_machines: int,
        scheduler_factory: Callable[[], ReallocatingScheduler],
    ) -> None:
        super().__init__(num_machines=num_machines)
        self.machines = [scheduler_factory() for _ in range(num_machines)]
        for i, sub in enumerate(self.machines):
            if sub.num_machines != 1:
                raise ValueError(f"sub-scheduler {i} is not single-machine")
        self.balancer = WindowBalancer(num_machines)
        #: merged machine-tagged placement map, maintained incrementally
        #: from the sub-schedulers' touched logs / request costs
        self._placements: dict[JobId, Placement] = {}
        #: per-batch round-robin plan: window -> machine queue for the
        #: batch's grouped inserts (invalidated per window by deletes)
        self._batch_plan: dict[Window, deque[int]] = {}

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self._placements

    def _sync_machine(self, machine: int, cost, subject: JobId) -> None:
        """Mirror one sub-request's placement changes into the merged map.

        A sparse sub-scheduler's ``last_touched`` names every job whose
        placement it may have changed (batch mode suspends sub-costs, so
        the touched log is the one signal available in both modes); a
        non-sparse sub reports them via ``cost.subject`` +
        ``cost.rescheduled``. The request's subject is synced explicitly
        — a trimming rebuild suspends its inner touched logs, so the
        triggering job may be absent from them. Either way the merged
        map stays O(changes) per request.
        """
        sub = self.machines[machine]
        changed = sub.last_touched
        if changed is None:
            changed = (cost.subject, *cost.rescheduled)
        elif subject not in changed:
            changed = (subject, *changed)
        sub_placements = sub.placements
        for job_id in changed:
            self._log_touch(job_id)
            pl = sub_placements.get(job_id)
            if pl is None:
                self._placements.pop(job_id, None)
            else:
                self._placements[job_id] = Placement(machine, pl.slot)

    def _apply_insert(self, job: Job) -> None:
        plan = self._batch_plan
        if plan:
            queue = plan.get(job.window)
            machine = (queue.popleft() if queue
                       else self.balancer.choose_insert_machine(job.window))
        else:
            machine = self.balancer.choose_insert_machine(job.window)
        cost = self.machines[machine].insert(job)
        self.balancer.record_insert(job.id, job.window, machine)
        self._sync_machine(machine, cost, job.id)

    def _apply_delete(self, job: Job) -> None:
        if self._batch_plan:
            # A delete changes this window's round-robin position: the
            # rest of its planned insert machines would be stale.
            self._batch_plan.pop(self.balancer.window_of(job.id), None)
        machine, mover = self.balancer.plan_delete(job.id)
        cost = self.machines[machine].delete(job.id)
        self.balancer.record_delete(job.id)
        self._sync_machine(machine, cost, job.id)
        if mover is not None:
            # The single migration: mover leaves the donor machine and
            # re-enters on the machine that lost a job.
            donor = self.balancer.machine_of(mover)
            mover_job = self.machines[donor].jobs[mover]
            cost = self.machines[donor].delete(mover)
            self._sync_machine(donor, cost, mover)
            cost = self.machines[machine].insert(mover_job)
            self._sync_machine(machine, cost, mover)
            self.balancer.record_migration(mover, machine)

    # ------------------------------------------------------------------
    # batch lifecycle and per-window grouping
    # ------------------------------------------------------------------
    def supports_atomic_batches(self) -> bool:
        return all(sub.supports_atomic_batches() for sub in self.machines)

    def _batch_prepare(self, inserts: list[Job]) -> None:
        """Group the batch's inserts per window and plan their machines.

        The plan is the round-robin continuation for each window's
        grouped inserts, computed once per batch instead of per request;
        a mid-batch delete of a window drops that window's remaining
        plan (its round-robin position moved) and those inserts fall
        back to the live choice. Sequential equivalence is exact: the
        planned machine equals ``choose_insert_machine`` at apply time.
        """
        groups: dict[Window, int] = {}
        for job in inserts:
            groups[job.window] = groups.get(job.window, 0) + 1
        m = self.num_machines
        count = self.balancer.count
        self._batch_plan = {
            window: deque((count(window) + i) % m for i in range(n))
            for window, n in groups.items()
        }

    def machine_sub_batches(
        self, requests: Batch | Iterable[Request],
    ) -> dict[int, list[Request]]:
        """Split a batch into the per-machine sub-batches it would drive.

        Planning only — nothing is applied. The batch's effect on each
        window's round-robin position is simulated request by request
        (inserts advance it, deletes retract it), so every insert lands
        on exactly the machine ``apply_batch`` would choose. Deletes go
        to the machine holding the job — for jobs inserted earlier in
        the same batch, the machine just planned for them; rebalancing
        migrations that deletes may trigger are decided at apply time
        and are not part of the split. This is the consumption shape
        the multimachine sharding layer will use: one sub-batch per
        shard worker.
        """
        batch = requests if isinstance(requests, Batch) else Batch(requests)
        m = self.num_machines
        counts: dict[Window, int] = {}
        planned: dict[JobId, tuple[Window, int]] = {}
        out: dict[int, list[Request]] = {i: [] for i in range(m)}
        for request in batch:
            if isinstance(request, InsertJob):
                window = request.job.window
                count = counts.get(window)
                if count is None:
                    count = self.balancer.count(window)
                machine = count % m
                counts[window] = count + 1
                planned[request.job.id] = (window, machine)
            else:
                plan = planned.pop(request.job_id, None)
                if plan is not None:
                    window, machine = plan
                else:
                    window = self.balancer.window_of(request.job_id)
                    machine = self.balancer.machine_of(request.job_id)
                count = counts.get(window)
                if count is None:
                    count = self.balancer.count(window)
                counts[window] = count - 1
            out[machine].append(request)
        return out

    def _batch_begin(self, *, atomic: bool, top: bool,
                     ephemeral: bool = False,
                     emit_touched: bool = True) -> None:
        super()._batch_begin(atomic=atomic, top=top, ephemeral=ephemeral,
                             emit_touched=emit_touched)
        if atomic and not ephemeral:
            self.balancer.begin_txn()
        for sub in self.machines:
            sub._batch_begin(atomic=atomic, top=False, ephemeral=ephemeral)

    def _batch_commit(self) -> None:
        super()._batch_commit()
        self._batch_plan = {}
        self.balancer.commit_txn()
        for sub in self.machines:
            sub._batch_commit()

    def _batch_restore(self, ctx) -> None:
        self._batch_plan = {}
        for sub in self.machines:
            sub._batch_abort()
        self.balancer.abort_txn()
        self._restore_placement_map(self._placements, ctx.touched)

    def check_balance(self) -> None:
        self.balancer.check_balance()
