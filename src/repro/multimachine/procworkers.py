"""Process-resident shard workers: true parallelism for sharded bursts.

The thread/serial shard workers of :mod:`repro.multimachine.delegation`
proved exact m-way independence per burst, but CPython's GIL keeps them
on one core (bench E12: ~1.08x sequential). This module turns that
measured independence into wall-clock speedup: each machine's
single-machine sub-scheduler lives *persistently* in a worker process
across bursts — state never ships per burst — and the coordinator
streams only per-burst op streams (planned by
``DelegatingScheduler.plan_shard_execution``) over a ``multiprocessing``
pipe, collecting per-op touched logs back for the existing global-order
merge.

Protocol (coordinator -> worker, one duplex pipe per worker)
------------------------------------------------------------
- ``("burst", ops)`` — apply one burst's op stream under an atomic
  batch context and reply ``("ok", results)`` (per-op changed ids and
  post-op slots — exactly what the in-process
  :class:`~repro.multimachine.delegation.ShardWorker` records) or
  ``("fail", req_index, failure)`` after self-aborting. The context
  stays open until the verdict arrives.
- ``("commit",)`` / ``("abort",)`` — the coordinator's verdict after
  *all* shards answered: commit on success, abort when any shard
  failed (whole-burst rollback).
- ``("snapshot",)`` — reply with the pickled sub-scheduler (valid only
  between bursts; used on the snapshot cadence and to sync state back
  before the parent resumes in-memory execution).
- ``("crash_after", k)`` — test hook: hard-exit after applying ``k``
  ops of the next burst (deterministic mid-burst crash injection).
- ``("stop",)`` — exit the worker loop.

Failure semantics
-----------------
A worker that *reports* a failure (``ReproError``) aborts its own batch
context; the coordinator then aborts every other shard, so the burst
rolls back wholesale and nothing merges. A worker that *dies* (pipe
EOF) triggers the same all-shard abort, after which the coordinator
re-seeds a fresh worker process from the dead shard's last state
snapshot plus the op streams committed since (bounded by
``snapshot_every``), reporting the burst as failed with
:class:`~repro.core.exceptions.WorkerCrashError`. Either way the
delegating scheduler stays usable and equivalent to one that never saw
the burst.

Serialization boundary
----------------------
Seeding and re-seeding pickle whole sub-schedulers (the reservation
stack supports this via ``__getstate__``/``__setstate__`` — hook
closures are rebuilt on restore, and the scheduler's undo-journal
arena is dropped and rebuilt fresh: journals are empty at every legal
pickling point, and the restored worker's arena is then reused for
every burst of its lifetime — each burst's atomic batch log borrows
the same containers). Everything else on the pipe is op streams
(:class:`~repro.core.job.Job` objects and ids) and per-op
``(changed, post-slots)`` results. Exceptions are pickled when
possible, else reconstructed from their message.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.base import ReallocatingScheduler
from ..core.exceptions import ReproError, WorkerCrashError
from ..core.job import JobId, Placement

if TYPE_CHECKING:  # pragma: no cover - avoids a runtime import cycle
    from .delegation import ShardPlan

#: default number of committed bursts between worker state snapshots —
#: bounds crash-recovery replay (and coordinator memory) without
#: shipping state per burst
DEFAULT_SNAPSHOT_EVERY = 64

#: one planned shard op on the wire: (req_index, is_insert, Job | JobId)
WireOp = tuple


def _failure_index(failure: tuple[int, ReproError]) -> int:
    """Sort key for shard failures: the failing request's global index."""
    return failure[0]


def _describe_failure(exc: ReproError) -> tuple:
    """Best-effort picklable form of a worker-side scheduler failure."""
    try:
        return ("pickle", pickle.dumps(exc))
    except Exception:
        return ("repr", type(exc).__name__, str(exc))


def _restore_failure(blob: tuple) -> ReproError:
    if blob[0] == "pickle":
        try:
            exc = pickle.loads(blob[1])
            if isinstance(exc, ReproError):
                return exc
        except Exception:
            pass
        return ReproError("shard worker failure (unpicklable exception)")
    return ReproError(f"{blob[1]}: {blob[2]}")


def apply_op_stream(
    sub: ReallocatingScheduler,
    ops: Sequence[WireOp],
    *,
    crash_after: int | None = None,
) -> tuple[list, tuple | None]:
    """Apply one burst's op stream under a fresh atomic batch context.

    Returns ``(results, failure)``: per-op ``(changed_ids, post_slots)``
    tuples — the raw material of the delegator's global-order merge —
    and, on a scheduler failure, ``(req_index, failure_blob)``. The
    batch context is left OPEN on success (the caller commits or aborts
    on the coordinator's verdict) and is already aborted on failure.
    Shared by the worker loop and the coordinator's local crash-rebuild.
    """
    from .delegation import _changed_ids

    sub._batch_begin(atomic=True, top=False)
    results: list[tuple[tuple, dict]] = []
    applied = 0
    for req_index, is_insert, payload in ops:
        if crash_after is not None and applied >= crash_after:
            os._exit(1)
        try:
            if is_insert:
                cost = sub.insert(payload)
                jid: JobId = payload.id
            else:
                cost = sub.delete(payload)
                jid = payload
        except ReproError as exc:
            sub._batch_abort()
            return results, (req_index, _describe_failure(exc))
        applied += 1
        changed = _changed_ids(sub, cost, jid)
        placements = sub.placements
        post = {}
        for j in changed:
            pl = placements.get(j)
            post[j] = None if pl is None else pl.slot
        results.append((changed, post))
    return results, None


def _worker_main(conn: Connection, machine: int, snapshot: bytes) -> None:
    """The worker-process loop: one resident sub-scheduler, many bursts."""
    sub: ReallocatingScheduler = pickle.loads(snapshot)
    crash_after: int | None = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # coordinator is gone; nothing to clean up
        kind = msg[0]
        if kind == "burst":
            results, failure = apply_op_stream(sub, msg[1],
                                               crash_after=crash_after)
            crash_after = None
            if failure is None:
                conn.send(("ok", results))
            else:
                conn.send(("fail", failure[0], failure[1]))
        elif kind == "commit":
            sub._batch_commit()
        elif kind == "abort":
            sub._batch_abort()
        elif kind == "snapshot":
            conn.send(("snapshot", pickle.dumps(sub)))
        elif kind == "crash_after":
            crash_after = msg[1]
        elif kind == "stop":
            break
    conn.close()


class _WorkerHandle:
    """Coordinator-side state for one shard's worker process."""

    __slots__ = ("machine", "process", "conn", "snapshot", "replay",
                 "bursts_since_snapshot")

    def __init__(self, machine: int, process: BaseProcess,
                 conn: Connection, snapshot: bytes) -> None:
        self.machine = machine
        self.process = process
        self.conn = conn
        #: pickled sub-scheduler as of the last snapshot point
        self.snapshot = snapshot
        #: op streams committed since the snapshot (crash replay log)
        self.replay: list[Sequence[WireOp]] = []
        self.bursts_since_snapshot = 0


class ProcessShardPool:
    """One persistent worker process per machine, coordinated per burst.

    Built from the delegator's live sub-schedulers (pickled once as the
    initial seed). ``run_burst`` streams each shard's planned ops out
    and fills the plan's :class:`~repro.multimachine.delegation.ShardOp`
    results in; ``commit_burst`` delivers the commit verdict and
    advances the snapshot cadence; ``abort`` paths are handled inside
    ``run_burst``. ``sync_subs`` pulls every shard's full state back
    (for the parent to resume in-memory execution) and ``close`` ends
    the worker processes.
    """

    def __init__(
        self,
        subs: Iterable[ReallocatingScheduler],
        *,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        start_method: str | None = None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.snapshot_every = snapshot_every
        self.workers: list[_WorkerHandle] = [
            self._spawn(i, pickle.dumps(sub), ())
            for i, sub in enumerate(subs)
        ]
        #: streams of the in-flight (applied, unverdicted) burst
        self._pending: dict[int, Sequence[WireOp]] | None = None
        self.closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, machine: int, snapshot: bytes,
               replay: Sequence[Sequence[WireOp]]) -> _WorkerHandle:
        """Start a worker from ``snapshot`` and replay committed bursts.

        The pipe is created immediately before the fork and the child
        end closed in the parent right after, so a worker's death is
        always observable as EOF (no other process holds the write end).
        """
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, machine, snapshot),
            name=f"shard-worker-{machine}", daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(machine, process, parent_conn, snapshot)
        replay_log = handle.replay
        for ops in replay:
            parent_conn.send(("burst", ops))
            reply = parent_conn.recv()
            if reply[0] != "ok":  # pragma: no cover - replay is deterministic
                raise RuntimeError(
                    f"shard worker {machine} failed replaying a committed "
                    f"burst: {reply!r}"
                )
            parent_conn.send(("commit",))
            replay_log.append(ops)
        handle.bursts_since_snapshot = len(replay_log)
        return handle

    def _respawn(self, machine: int) -> None:
        """Replace a dead worker: last snapshot + committed-burst replay."""
        handle = self.workers[machine]
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        if handle.process.is_alive():  # pragma: no cover - defensive
            handle.process.kill()
        handle.process.join()
        self.workers[machine] = self._spawn(
            machine, handle.snapshot, handle.replay)

    def close(self) -> None:
        """Stop every worker process (state is NOT synced back)."""
        if self.closed:
            return
        self.closed = True
        for handle in self.workers:
            try:
                handle.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for handle in self.workers:
            handle.process.join(timeout=5)
            if handle.process.is_alive():  # pragma: no cover - defensive
                handle.process.kill()
                handle.process.join()

    def sync_subs(self) -> list[ReallocatingScheduler]:
        """Pull every shard's resident sub-scheduler state back.

        Live workers answer a snapshot request; a dead worker's state is
        rebuilt locally from its last snapshot plus the committed replay
        log (bit-identical: the streams are deterministic). Valid only
        between bursts.
        """
        if self._pending is not None:  # pragma: no cover - defensive
            raise RuntimeError("cannot sync shard state mid-burst")
        subs: list[ReallocatingScheduler] = []
        for handle in self.workers:
            sub = None
            try:
                handle.conn.send(("snapshot",))
                reply = handle.conn.recv()
                sub = pickle.loads(reply[1])
            except (EOFError, OSError, BrokenPipeError):
                sub = self._rebuild_local(handle)
            subs.append(sub)
        return subs

    @staticmethod
    def _rebuild_local(handle: _WorkerHandle) -> ReallocatingScheduler:
        sub = pickle.loads(handle.snapshot)
        for ops in handle.replay:
            _, failure = apply_op_stream(sub, ops)
            if failure is not None:  # pragma: no cover - deterministic
                raise RuntimeError(
                    f"shard {handle.machine} local rebuild failed: {failure!r}")
            sub._batch_commit()
        return sub

    # ------------------------------------------------------------------
    # the per-burst drive
    # ------------------------------------------------------------------
    def run_burst(self,
                  plan: ShardPlan) -> tuple[int | None, ReproError] | None:
        """Stream one planned burst to the workers and collect results.

        On success fills every :class:`ShardOp`'s ``changed`` / ``post``
        (single-machine placements are machine-tagged later by the
        delegator's merge) and leaves the burst pending for
        :meth:`commit_burst`; returns None. On any shard failure or
        worker crash, aborts every shard, re-seeds crashed workers, and
        returns ``(failed_index, error)`` — the burst never merges.
        """
        if self._pending is not None:  # pragma: no cover - defensive
            raise RuntimeError("previous burst has no verdict yet")
        streams: dict[int, list[WireOp]] = {}
        for machine, ops in plan.per_machine.items():
            if not ops:
                continue
            stream: list[WireOp] = []
            for op in ops:
                stream.append((op.req_index, op.insert,
                               op.job if op.insert else op.job_id))
            streams[machine] = stream
        crashed: list[int] = []
        active: list[int] = []
        for machine, payload in streams.items():
            try:
                self.workers[machine].conn.send(("burst", payload))
                active.append(machine)
            except (OSError, BrokenPipeError):
                crashed.append(machine)
        replies: dict[int, tuple] = {}
        for machine in active:
            try:
                replies[machine] = self.workers[machine].conn.recv()
            except (EOFError, OSError):
                crashed.append(machine)
        failures = [(reply[1], _restore_failure(reply[2]))
                    for reply in replies.values() if reply[0] == "fail"]
        if crashed or failures:
            # whole-burst rollback: abort every shard that applied its
            # stream (failed shards aborted themselves; crashed shards
            # lost their state and are re-seeded below)
            for machine, reply in replies.items():
                if reply[0] != "ok":
                    continue
                try:
                    self.workers[machine].conn.send(("abort",))
                except (OSError, BrokenPipeError):
                    crashed.append(machine)
            for machine in dict.fromkeys(crashed):
                self._respawn(machine)
            if failures:
                return min(failures, key=_failure_index)
            dead = sorted(dict.fromkeys(crashed))
            return None, WorkerCrashError(
                f"shard worker(s) {dead} died mid-burst; burst rolled "
                "back, worker(s) re-seeded from the last state snapshot"
            )
        for machine in active:
            results = replies[machine][1]
            for op, (changed, post) in zip(plan.per_machine[machine], results):
                op.changed = tuple(changed)
                restored: dict[JobId, Placement | None] = {}
                for jid, slot in post.items():
                    restored[jid] = None if slot is None else Placement(0, slot)
                op.post = restored
        self._pending = streams
        return None

    def commit_burst(self) -> None:
        """Deliver the commit verdict for the pending burst.

        Appends each shard's stream to its crash-replay log *before*
        sending the verdict, so a worker that dies around the commit is
        re-seeded to the committed state (which the coordinator has
        already merged). Every ``snapshot_every`` committed bursts the
        worker's state is re-snapshotted and the replay log cleared.
        """
        streams, self._pending = self._pending, None
        if streams is None:  # pragma: no cover - defensive
            raise RuntimeError("no pending burst to commit")
        for machine, payload in streams.items():
            handle = self.workers[machine]
            handle.replay.append(payload)
            handle.bursts_since_snapshot += 1
            try:
                handle.conn.send(("commit",))
            except (OSError, BrokenPipeError):
                self._respawn(machine)
                continue
            if handle.bursts_since_snapshot >= self.snapshot_every:
                try:
                    handle.conn.send(("snapshot",))
                    reply = handle.conn.recv()
                    handle.snapshot = reply[1]
                    handle.replay.clear()
                    handle.bursts_since_snapshot = 0
                except (EOFError, OSError, BrokenPipeError):
                    self._respawn(machine)

    # ------------------------------------------------------------------
    # crash injection (tests)
    # ------------------------------------------------------------------
    def kill_worker(self, machine: int) -> None:
        """Hard-kill one worker process (external-failure simulation)."""
        handle = self.workers[machine]
        handle.process.kill()
        handle.process.join()

    def crash_worker_after(self, machine: int, ops: int) -> None:
        """Arm a deterministic crash: exit after ``ops`` ops next burst."""
        self.workers[machine].conn.send(("crash_after", ops))

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
