"""Window trimming to ~n and schedule rebuilding (Section 4, end).

The raw reservation scheduler's cost depends on log* of the largest
window span Delta. To also achieve the ``log* n`` bound, the paper
maintains an estimate ``n*`` of the active job count (doubling when
exceeded, halving when the count drops below ``n*/4``) and trims every
window to span at most ``2 * gamma * n*`` — the trimmed instance stays
gamma-underallocated because at most ``n*`` other jobs live in the
trimmed window. Each change of ``n*`` rebuilds the schedule from
scratch, an amortized O(1) reallocations per request (a rebuild of k
jobs happens at most once per Omega(k) requests).

:class:`TrimmedReservationScheduler` implements exactly this wrapper
around :class:`AlignedReservationScheduler`. The deamortized variant
(even/odd-slot incremental rebuild) lives in ``deamortized.py``.

Trimming keeps the *left-aligned prefix* of the (already aligned)
window: an aligned window's power-of-two prefix is itself aligned, so
the inner scheduler's alignment requirement is preserved, and the
trimmed window nests inside the original, so any feasible placement for
the trimmed instance is feasible for the true instance.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.base import ReallocatingScheduler, _BatchContext
from ..core.events import EventTracer, NullTracer
from ..core.exceptions import InvalidRequestError
from ..core.job import Job, JobId, Placement
from ..core.requests import DeleteJob
from ..core.window import Window
from ..levels.policy import LevelPolicy, PAPER_POLICY
from .scheduler import AlignedReservationScheduler, flexible_span_order


def trim_aligned(window: Window, max_span: int) -> Window:
    """Left prefix of an aligned window with span <= max_span (still aligned)."""
    if not window.is_aligned:
        raise ValueError(f"{window} is not aligned")
    if window.span <= max_span:
        return window
    # Largest power of two <= max_span; the prefix of that span is aligned.
    span = 1 << (max_span.bit_length() - 1)
    return Window(window.release, window.release + span)


class TrimmedReservationScheduler(ReallocatingScheduler):
    """Aligned single-machine reservation scheduler with n*-trimming.

    Parameters
    ----------
    gamma:
        The underallocation constant used for the trim bound
        ``2 * gamma * n*`` (power of two; the paper's Lemma 8 needs the
        *instance* to be 8-underallocated — gamma defaults to 8).
    policy:
        Level policy for the inner schedulers.
    min_n_star:
        Floor for the n* estimate (avoids degenerate trims at tiny n).
    journal:
        Undo-journal representation of the inner schedulers (``"arena"``
        default, ``"closure"`` oracle — see
        :class:`AlignedReservationScheduler`). Rebuilds carry it to the
        fresh inner.
    """

    _sparse_costing = True

    #: Rebuild journal diet: survivor re-inserts during a *non-atomic*
    #: rebuild skip the per-request undo journal entirely. The journal
    #: exists to restore pre-request state when a request fails — but a
    #: failed rebuild poisons the scheduler regardless (half-built
    #: inners are unusable either way), so the per-survivor journal
    #: work is pure waste; the atomic-batch path already runs rebuilds
    #: rollback-free by discarding the fresh inner wholesale on abort.
    #: Class-level so the equivalence test can pin the journaled oracle.
    rebuild_journal_diet = True

    def __init__(
        self,
        gamma: int = 8,
        policy: LevelPolicy = PAPER_POLICY,
        *,
        min_n_star: int = 4,
        tracer: EventTracer | NullTracer | None = None,
        journal: str = "arena",
    ) -> None:
        super().__init__(num_machines=1)
        if gamma < 1 or gamma & (gamma - 1):
            raise ValueError("gamma must be a positive power of two")
        if min_n_star < 1 or min_n_star & (min_n_star - 1):
            raise ValueError("min_n_star must be a positive power of two")
        self.gamma = gamma
        self.policy = policy
        self.min_n_star = min_n_star
        self.n_star = min_n_star
        self.tracer = tracer if tracer is not None else NullTracer()
        self.journal_impl = journal
        self.inner = AlignedReservationScheduler(policy, tracer=self.tracer,
                                                 journal=journal)
        self.rebuilds = 0
        #: journal entries recorded by inners replaced in rebuilds
        #: (``journal_entries_total`` folds the live inner back in)
        self._journal_entries_carry = 0
        #: planned final job count of the current flexible batch
        #: (None outside flexible batches; see _flexible_size_hint)
        self._flex_final_hint: int | None = None

    # ------------------------------------------------------------------
    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self.inner.placements

    @property
    def trim_span(self) -> int:
        """Current maximum effective window span: 2 * gamma * n*."""
        return 2 * self.gamma * self.n_star

    def effective_window(self, window: Window) -> Window:
        return trim_aligned(window, self.trim_span)

    def _apply_insert(self, job: Job) -> None:
        if not job.window.is_aligned:
            raise InvalidRequestError(
                f"window {job.window} is not aligned; use the alignment wrapper"
            )
        if len(self.jobs) > self.n_star:
            self._resize(self.n_star * 2)
        eff = job.with_window(self.effective_window(job.window))
        self.inner.insert(eff)
        # placements are coordinate-identical to the inner scheduler's,
        # so its touched log folds straight into this request's.
        self._merge_touched(self.inner.last_touched)

    def _apply_delete(self, job: Job) -> None:
        self.inner.delete(job.id)
        self._merge_touched(self.inner.last_touched)
        active = len(self.jobs) - 1  # base class removes after we return
        if active < self.n_star // 4 and self.n_star > self.min_n_star:
            hint = self._flex_final_hint
            if hint is not None and hint >= self.n_star // 4:
                # Flexible burst with a planned refill: the batch's own
                # inserts restore n >= n*/4 before the next request, so
                # the halving rebuild (and the doubling rebuild that
                # would follow it) is pure thrash.
                return
            self._resize(max(self.min_n_star, self.n_star // 2))

    def _resize(self, new_n_star: int) -> None:
        """Change n* and rebuild the schedule from scratch (amortized O(1))."""
        self.n_star = new_n_star
        self.rebuilds += 1
        self.tracer.emit("rebuild", None, None,
                         f"n*={new_n_star}, jobs={len(self.inner.jobs)}")
        # A rebuild can move every survivor: log all pre-rebuild
        # placements (O(n), amortized O(1) like the rebuild itself).
        self._merge_touched(dict(self.inner.placements))
        survivors = [job for jid, job in self.jobs.items()
                     if jid in self.inner.jobs]
        self._journal_entries_carry += self.inner.journal_entries_total
        self.inner = AlignedReservationScheduler(self.policy, tracer=self.tracer,
                                                 journal=self.journal_impl)
        ctx = self._batch
        if ctx is not None:
            # Inside an atomic batch the fresh inner is ephemeral: an
            # abort restores the saved pre-batch inner and discards this
            # one, so its rebuild inserts skip all rollback tracking.
            # Its touched logs are suspended too — the wholesale
            # pre-rebuild merge above already logged every survivor.
            self.inner._batch_begin(atomic=ctx.atomic, top=False,
                                    ephemeral=ctx.atomic or ctx.ephemeral,
                                    emit_touched=False)
        if self.rebuild_journal_diet and (ctx is None or not ctx.atomic):
            # Journal diet: a failed rebuild poisons regardless, so the
            # fresh inner's survivor inserts run journal-free (atomic
            # batches already do, via the ephemeral discard-on-abort path).
            self.inner._journal_enabled = False
        # Deterministic rebuild order: short spans first, then by release.
        survivors.sort(key=lambda j: (j.span, j.release, str(j.id)))
        try:
            for job in survivors:
                eff = job.with_window(self.effective_window(job.window))
                self.inner.insert(eff)
        finally:
            self.inner._journal_enabled = True
        if ctx is not None:
            # Touched logs stay off only for the rebuild itself; later
            # requests in the batch need them (their displacements must
            # reach the wrappers' merged maps).
            self.inner._batch.emit_touched = True

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    #: placements pass through the inner scheduler, whose own abort
    #: restores them — no batch touched log needed at this layer
    _batch_restore_needs_touched = False

    def supports_atomic_batches(self) -> bool:
        return self.inner.supports_atomic_batches()

    def _flexible_insert_order_key(self) -> "Callable[[Job], object] | None":
        """Joint inserts in rebuild order (span-ascending, see _resize)."""
        return flexible_span_order

    def _flexible_size_hint(self, deletes: list[DeleteJob],
                            inserts: list[Job]) -> None:
        """Pre-size n* for the batch's planned final count (no rebuild).

        Raising n* without rebuilding is safe: already-placed jobs keep
        their narrower trimmed windows, which nest inside the wider
        trim bound, so every existing placement stays feasible, and
        window-containment sets can only shrink — the instance stays
        gamma-underallocated (Lemma 8's argument needs n <= n*, which
        the planned final count satisfies by construction). Only
        placements differ from the strict replay, which the flexible
        contract allows; the rebuilds this skips were the dominant
        per-batch cost under churn.

        The hint runs after ``_batch_begin`` snapshotted ``n_star``, so
        an atomic abort restores the pre-batch value exactly.
        """
        final = len(self.jobs) - len(deletes) + len(inserts)
        target = self.n_star
        while final > target:
            target *= 2
        if target > self.n_star:
            self.n_star = target
        self._flex_final_hint = final

    def _batch_begin(self, *, atomic: bool, top: bool,
                     ephemeral: bool = False,
                     emit_touched: bool = True) -> None:
        super()._batch_begin(atomic=atomic, top=top, ephemeral=ephemeral,
                             emit_touched=emit_touched)
        if atomic and not ephemeral:
            self._batch.saved["trim"] = (self.inner, self.n_star, self.rebuilds,
                                         self._journal_entries_carry)
        self.inner._batch_begin(atomic=atomic, top=False, ephemeral=ephemeral)

    def _batch_commit(self) -> None:
        self._flex_final_hint = None
        super()._batch_commit()
        self.inner._batch_commit()

    def _batch_restore(self, ctx: _BatchContext) -> None:
        # If a rebuild replaced the inner mid-batch, the saved pre-batch
        # inner swaps back and the replacement is simply dropped — the
        # rebuild's carry increment rolls back with it, so
        # journal_entries_total matches a scheduler that never saw the
        # batch (the restored inner still holds its own lifetime count).
        self._flex_final_hint = None
        (self.inner, self.n_star, self.rebuilds,
         self._journal_entries_carry) = ctx.saved["trim"]
        self.inner._batch_abort()

    # ------------------------------------------------------------------
    @property
    def journal_entries_total(self) -> int:
        """Lifetime undo-journal entries, rebuild-replaced inners included."""
        return self._journal_entries_carry + self.inner.journal_entries_total

    @property
    def poisoned(self) -> bool:
        return self.inner.poisoned

    def active_levels(self) -> dict[int, int]:
        return self.inner.active_levels()
