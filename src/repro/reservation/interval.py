"""Level-l interval state: allowance, reservations, fulfillment, assignment.

An :class:`Interval` is one aligned block of ``L_l`` slots at reservation
level ``l``. It tracks:

- ``lower_occupied`` — slots currently holding jobs of level < l. The
  complement within the interval is the paper's *allowance*.
- ``dynamic_res`` — dynamic reservation counts per enclosing window
  (2 per job, round-robin); the *baseline* reservation (1 per enclosing
  window, always present) is added implicitly by :meth:`demands`.
- ``assigned`` / ``slot_owner`` — which allowance slots currently back
  fulfilled reservations of which window.

Which reservations are fulfilled is a pure function of the demand
multiset and the allowance size (:meth:`target_fulfilled`): sort
enclosing windows shortest-span first (ties by start) and grant greedily
— Observation 7's history independence. :meth:`rebalance` reconciles the
assignment with the target after any change, returning the level-l jobs
whose backing slot was revoked (the scheduler then MOVEs them).

Fast path (engine-scale runs). The enclosing windows of an interval form
a fixed tuple (one window per legal span), so demand, assignment counts,
and the fulfillment target are all kept *positionally* — plain int lists
indexed by span position — avoiding a Window hash per lookup on the hot
path; the Window-keyed dicts remain the public API and stay in sync. The
target list is *memoized* and explicitly invalidated by every mutation
that can change it (:meth:`add_dynamic`, :meth:`slot_lowered`,
:meth:`slot_raised`, :meth:`swap_slots`) — safe because the target is a
pure function of demand and allowance (Observation 7), so the memo is
bitwise-identical to a recomputation until one of those inputs changes;
:meth:`compute_target_fresh` recomputes from scratch and is the oracle
the property tests compare against. A sorted index of *free* allowance
slots (backing nothing) lets :meth:`rebalance` top up fulfillments
without scanning the ``L_l`` slot range, and rebalance exits O(1)-early
when nothing changed since the last reconciliation. The optional
``on_assign`` / ``on_release`` hooks notify the owning scheduler of
assignment changes so it can maintain per-window backed-slot indexes,
and when ``undo_log`` is set every mutation appends its exact inverse —
the scheduler's failed-request rollback journal. Journal entries are
tuple opcodes (one allocation each, dispatched by
:func:`~repro.reservation.journal.replay_entries`); setting
``closure_undo`` switches an interval to the original closure-per-entry
representation, kept as the rollback-equivalence oracle (the
``_closure_*`` helpers are the pre-arena implementation verbatim,
out-of-line so the hot path pays no cell-variable setup for them).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Callable

from ..core.job import JobId
from ..core.window import Window, aligned_window_covering
from .journal import (
    OP_ASSIGN,
    OP_DYNAMIC,
    OP_LOWERED,
    OP_RAISED,
    OP_RELEASE,
    OP_SWAP,
)


@dataclass
class Interval:
    """One level-l interval (an aligned ``L_l``-slot block)."""

    level: int
    index: int
    lo: int
    hi: int
    #: legal level-l window spans (from the policy), smallest first
    enclosing_spans: tuple[int, ...]
    lower_occupied: set[int] = field(default_factory=set)
    dynamic_res: dict[Window, int] = field(default_factory=dict)
    assigned: dict[Window, set[int]] = field(default_factory=dict)
    slot_owner: dict[int, Window] = field(default_factory=dict)
    #: scheduler hooks fired on every assignment change (slot gained /
    #: lost by a window); None outside a scheduler (unit tests).
    on_assign: Callable[[Window, int], None] | None = field(
        default=None, repr=False, compare=False)
    on_release: Callable[[Window, int], None] | None = field(
        default=None, repr=False, compare=False)
    #: when set (by the scheduler, per request), every mutation appends
    #: its inverse here — replayed in reverse to roll back a failed request
    undo_log: list | None = field(default=None, repr=False, compare=False)
    #: True switches undo entries from tuple opcodes to the original
    #: per-mutation closures (the journal-equivalence test oracle)
    closure_undo: bool = field(default=False, repr=False, compare=False)
    #: cached enclosing-window tuple (immutable geometry, lazily built)
    _windows: tuple[Window, ...] | None = field(
        default=None, repr=False, compare=False)
    #: positional dynamic counts (index = span position); lazily built
    _dyn: list[int] | None = field(default=None, repr=False, compare=False)
    #: positional assigned-slot counts; lazily built
    _counts: list[int] | None = field(default=None, repr=False, compare=False)
    #: memoized positional fulfillment target; None = invalidated
    _tlist: list[int] | None = field(default=None, repr=False, compare=False)
    #: sorted free allowance slots (in allowance, no owner); None = lazily built
    _free: list[int] | None = field(default=None, repr=False, compare=False)
    #: True when a mutation since the last rebalance may have unbalanced
    #: the assignment (fresh intervals start unreconciled)
    _stale: bool = field(default=True, repr=False, compare=False)

    # ------------------------------------------------------------------
    # serialization (worker-resident schedulers cross a process boundary)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Picklable state: everything but the scheduler-owned callables.

        ``on_assign`` / ``on_release`` are closures over the owning
        scheduler and ``undo_log`` is only ever set inside a request, so
        all three are dropped; the scheduler's own ``__setstate__``
        re-attaches its hooks to every interval it restores.
        """
        state = self.__dict__.copy()
        state["on_assign"] = None
        state["on_release"] = None
        state["undo_log"] = None
        return state

    # ------------------------------------------------------------------
    # geometry / demand
    # ------------------------------------------------------------------
    @property
    def span(self) -> int:
        return self.hi - self.lo

    def slots(self) -> range:
        return range(self.lo, self.hi)

    def _enclosing(self) -> tuple[Window, ...]:
        ws = self._windows
        if ws is None:
            ws = self._windows = tuple(
                aligned_window_covering(self.lo, s) for s in self.enclosing_spans
            )
        return ws

    def enclosing_windows(self) -> list[Window]:
        """All legal level-l windows containing this interval, shortest first."""
        return list(self._enclosing())

    def _pos(self, window: Window) -> int:
        """Position of an enclosing window in the span ladder (no hashing)."""
        return window.span.bit_length() - self.enclosing_spans[0].bit_length()

    def allowance_size(self) -> int:
        return self.span - len(self.lower_occupied)

    def in_allowance(self, slot: int) -> bool:
        return self.lo <= slot < self.hi and slot not in self.lower_occupied

    def _dyn_list(self) -> list[int]:
        dyn = self._dyn
        if dyn is None:
            get = self.dynamic_res.get
            dyn = self._dyn = [get(w, 0) for w in self._enclosing()]
        return dyn

    def _counts_list(self) -> list[int]:
        counts = self._counts
        if counts is None:
            assigned = self.assigned
            counts = self._counts = [
                len(assigned.get(w, ())) for w in self._enclosing()
            ]
        return counts

    def demands(self) -> list[tuple[Window, int]]:
        """(window, demand) for every enclosing window, priority order.

        Demand = 1 baseline + dynamic reservations. Every enclosing
        window always demands at least its baseline (Observation 7:
        fulfillment must not depend on which windows happen to have
        jobs). Priority: shortest span first, ties by window start.
        """
        # enclosing windows are already shortest-first; starts are unique
        # per span (one window per span covers this interval), so the
        # span order is a total priority order.
        return [(w, 1 + d) for w, d in zip(self._enclosing(), self._dyn_list())]

    def _target_list(self) -> list[int]:
        target = self._tlist
        if target is None:
            target = self._tlist = self._compute_target_list()
        return target

    def _compute_target_list(self) -> list[int]:
        remaining = self.allowance_size()
        out = []
        for d in self._dyn_list():
            if remaining <= 0:
                out.append(0)
                continue
            take = d + 1
            if take > remaining:
                take = remaining
            out.append(take)
            remaining -= take
        return out

    def target_fulfilled(self) -> dict[Window, int]:
        """Fulfilled-reservation counts per window (pure function).

        Greedy by priority: each window receives
        ``min(demand, remaining allowance)``. Served from the memoized
        positional target (invalidated on every demand or allowance
        mutation); :meth:`compute_target_fresh` is the uncached oracle.
        """
        return dict(zip(self._enclosing(), self._target_list()))

    def compute_target_fresh(self) -> dict[Window, int]:
        """Recompute the fulfillment target from scratch (no memo).

        The history-independence guard: the property tests assert this
        always equals :meth:`target_fulfilled` under arbitrary
        insert/delete interleavings.
        """
        remaining = self.allowance_size()
        get = self.dynamic_res.get
        target: dict[Window, int] = {}
        for w in self._enclosing():
            take = min(1 + get(w, 0), remaining)
            target[w] = take
            remaining -= take
        return target

    def waitlisted(self) -> dict[Window, int]:
        """Demand minus fulfilled, per enclosing window (zero entries kept)."""
        target = self.target_fulfilled()
        return {w: d - target[w] for w, d in self.demands()}

    def _invalidate(self) -> None:
        self._tlist = None
        self._stale = True

    # ------------------------------------------------------------------
    # free-slot index (allowance slots backing nothing)
    # ------------------------------------------------------------------
    def free_slots(self) -> list[int]:
        """Sorted allowance slots currently backing no reservation.

        Maintained incrementally; treat as read-only.
        """
        free = self._free
        if free is None:
            low = self.lower_occupied
            owned = self.slot_owner
            free = self._free = [
                s for s in self.slots() if s not in low and s not in owned
            ]
        return free

    def _free_add(self, slot: int) -> None:
        if self._free is not None:
            insort(self._free, slot)

    def _free_discard(self, slot: int) -> None:
        free = self._free
        if free is not None:
            i = bisect_left(free, slot)
            if i < len(free) and free[i] == slot:
                del free[i]

    # ------------------------------------------------------------------
    # reservation mutation (dynamic part only)
    # ------------------------------------------------------------------
    def add_dynamic(self, window: Window, delta: int) -> None:
        """Adjust dynamic reservation count for a window by +/- delta."""
        new = self.dynamic_res.get(window, 0) + delta
        if new < 0:
            raise ValueError(
                f"dynamic reservations for {window} would go negative at "
                f"interval {self.index} (level {self.level})"
            )
        # position lookup first: it is the only raise-capable step, and
        # it must not fire between the container mutation and the undo
        # append (rollback would miss the mutation)
        if self._dyn is not None:
            self._dyn[self._pos(window)] += delta
        if new:
            self.dynamic_res[window] = new
        else:
            self.dynamic_res.pop(window, None)
        self._invalidate()
        log = self.undo_log
        if log is not None:
            log.append(self._closure_dynamic(window, delta)
                       if self.closure_undo
                       else (OP_DYNAMIC, self, window, delta))

    def _closure_dynamic(self, window: Window, delta: int) -> Callable[[], None]:
        return lambda: self._undo_dynamic(window, delta)

    def _undo_dynamic(self, window: Window, delta: int) -> None:
        new = self.dynamic_res.get(window, 0) - delta
        if new:
            self.dynamic_res[window] = new
        else:
            self.dynamic_res.pop(window, None)
        if self._dyn is not None:
            self._dyn[self._pos(window)] -= delta
        self._invalidate()

    # ------------------------------------------------------------------
    # assignment primitives (keep dicts, counts, free index, hooks, undo
    # log consistent in one place)
    # ------------------------------------------------------------------
    def _do_assign(self, window: Window, pos: int, slot: int) -> None:
        have = self.assigned.get(window)
        if have is None:
            have = self.assigned[window] = set()
        have.add(slot)
        self.slot_owner[slot] = window
        self._free_discard(slot)
        if self._counts is not None:
            self._counts[pos] += 1
        # undo entry before the hook: the scheduler-side hook can raise
        # (underallocation checks), and a raise between the mutation and
        # the append would leave the assign invisible to rollback
        log = self.undo_log
        if log is not None:
            log.append(self._closure_assign(window, pos, slot)
                       if self.closure_undo
                       else (OP_ASSIGN, self, window, pos, slot))
        if self.on_assign is not None:
            self.on_assign(window, slot)

    def _closure_assign(self, window: Window, pos: int, slot: int) -> Callable[[], None]:
        return lambda: self._undo_assign(window, pos, slot)

    def _undo_assign(self, window: Window, pos: int, slot: int) -> None:
        have = self.assigned.get(window)
        if have is not None:
            have.discard(slot)
            if not have:
                del self.assigned[window]
        self.slot_owner.pop(slot, None)
        self._free_add(slot)
        if self._counts is not None:
            self._counts[pos] -= 1
        self._stale = True

    def _do_release(self, window: Window, pos: int, slot: int) -> None:
        have = self.assigned[window]
        have.discard(slot)
        if not have:
            del self.assigned[window]
        del self.slot_owner[slot]
        self._free_add(slot)
        if self._counts is not None:
            self._counts[pos] -= 1
        # undo entry before the hook, same ordering contract as
        # _do_assign: a raising hook must find the release journaled
        log = self.undo_log
        if log is not None:
            log.append(self._closure_release(window, pos, slot)
                       if self.closure_undo
                       else (OP_RELEASE, self, window, pos, slot))
        if self.on_release is not None:
            self.on_release(window, slot)

    def _closure_release(self, window: Window, pos: int, slot: int) -> Callable[[], None]:
        return lambda: self._undo_release(window, pos, slot)

    def _undo_release(self, window: Window, pos: int, slot: int) -> None:
        self.assigned.setdefault(window, set()).add(slot)
        self.slot_owner[slot] = window
        self._free_discard(slot)
        if self._counts is not None:
            self._counts[pos] += 1
        self._stale = True

    # ------------------------------------------------------------------
    # allowance mutation
    # ------------------------------------------------------------------
    def slot_lowered(self, slot: int) -> None:
        """A job of level < l now occupies ``slot`` (it leaves the allowance).

        Any assignment backing the slot is revoked; the caller must
        rebalance afterwards.
        """
        if not self.lo <= slot < self.hi:
            raise ValueError(f"slot {slot} outside interval [{self.lo},{self.hi})")
        if slot in self.lower_occupied:
            return
        # raise-capable position lookup before any mutation, and the
        # undo entry before the hook: a raise between mutating and
        # appending would leave the revocation invisible to rollback
        owner = self.slot_owner.get(slot)
        if owner is not None and self._counts is not None:
            self._counts[self._pos(owner)] -= 1
        self.lower_occupied.add(slot)
        if owner is not None:
            del self.slot_owner[slot]
            have = self.assigned[owner]
            have.discard(slot)
            if not have:
                del self.assigned[owner]
        else:
            self._free_discard(slot)
        self._invalidate()
        log = self.undo_log
        if log is not None:
            log.append(self._closure_slot_lowered(slot, owner)
                       if self.closure_undo
                       else (OP_LOWERED, self, slot, owner))
        if owner is not None and self.on_release is not None:
            self.on_release(owner, slot)

    def _closure_slot_lowered(self, slot: int, owner: Window | None) -> Callable[[], None]:
        return lambda: self._undo_slot_lowered(slot, owner)

    def _undo_slot_lowered(self, slot: int, owner: Window | None) -> None:
        self.lower_occupied.discard(slot)
        if owner is not None:
            self.assigned.setdefault(owner, set()).add(slot)
            self.slot_owner[slot] = owner
            if self._counts is not None:
                self._counts[self._pos(owner)] += 1
        else:
            self._free_add(slot)
        self._invalidate()

    def slot_raised(self, slot: int) -> None:
        """The lower-level occupant of ``slot`` left (slot rejoins allowance)."""
        if slot not in self.lower_occupied:
            return
        self.lower_occupied.discard(slot)
        self._free_add(slot)
        self._invalidate()
        log = self.undo_log
        if log is not None:
            log.append(self._closure_slot_raised(slot)
                       if self.closure_undo
                       else (OP_RAISED, self, slot))

    def _closure_slot_raised(self, slot: int) -> Callable[[], None]:
        return lambda: self._undo_slot_raised(slot)

    def _undo_slot_raised(self, slot: int) -> None:
        self.lower_occupied.add(slot)
        self._free_discard(slot)
        self._invalidate()

    # ------------------------------------------------------------------
    # assignment reconciliation
    # ------------------------------------------------------------------
    def rebalance(
        self,
        level_job_at: Callable[[int], JobId | None],
        empty_at: Callable[[int], bool],
    ) -> list[JobId]:
        """Reconcile slot assignments with :meth:`target_fulfilled`.

        Parameters
        ----------
        level_job_at:
            slot -> id of the level-l job occupying it (None otherwise).
            Used to avoid revoking occupied backing slots when an empty
            one can be released instead, and to report forced moves.
        empty_at:
            slot -> True iff *no* job of any level occupies it. Used to
            prefer truly empty slots when assigning, minimizing future
            cross-level displacement.

        Returns the level-l jobs whose backing slot was revoked; the
        scheduler must MOVE each of them.

        O(1) when nothing changed since the last reconciliation; when
        work is needed, only diverging windows are touched and top-up
        slots come from the free index instead of a range scan.
        """
        if not self._stale:
            return []
        target = self._target_list()
        counts = self._counts_list()
        if counts == target:
            self._stale = False
            return []
        windows = self._enclosing()
        revoked: list[JobId] = []
        deficit = 0

        # Phase 1: releases (excess assignments), empty slots first.
        for pos, want in enumerate(target):
            have = counts[pos]
            if have < want:
                deficit += want - have
                continue
            if have == want:
                continue
            w = windows[pos]
            excess = have - want
            # Single sorted pass partitioning empty vs occupied backing
            # slots (empties release first); stops probing once enough
            # empties are in hand, since occupied slots then never
            # release.
            empties: list[int] = []
            occupied: list[int] = []
            for s in sorted(self.assigned[w]):
                if level_job_at(s) is None:
                    empties.append(s)
                    if len(empties) == excess:
                        break
                else:
                    occupied.append(s)
            for s in empties:
                self._do_release(w, pos, s)
            for s in occupied[:excess - len(empties)]:
                self._do_release(w, pos, s)
                job = level_job_at(s)
                if job is not None:
                    revoked.append(job)

        # Phase 2: top-ups from the free index, truly empty slots first,
        # then slots under higher-level jobs. The scan stops as soon as
        # enough empty slots are found (they always rank first).
        if deficit:
            empties = []
            covered = []
            for s in self.free_slots():
                if empty_at(s):
                    empties.append(s)
                    if len(empties) == deficit:
                        break
                else:
                    covered.append(s)
            pool = empties + covered
            fi = 0
            for pos, want in enumerate(target):
                need = want - counts[pos]
                if need <= 0:
                    continue
                if fi + need > len(pool):  # pragma: no cover - defensive
                    raise AssertionError(
                        f"interval {self.index} (level {self.level}): target "
                        "fulfillment exceeds allowance"
                    )
                w = windows[pos]
                for s in pool[fi:fi + need]:
                    self._do_assign(w, pos, s)
                fi += need
        self._stale = False
        return revoked

    # ------------------------------------------------------------------
    # swap support (the MOVE trick of Figure 1, lines 12-13)
    # ------------------------------------------------------------------
    def swap_slots(self, s1: int, s2: int) -> None:
        """Exchange the roles of two slots in this interval's bookkeeping.

        Swaps allowance membership and assignment ownership. Used by
        MOVE at ancestor levels so that relocating a lower-level job
        between two slots of the same ancestor interval is invisible to
        this level (net allowance change zero).
        """
        if s1 == s2:
            return
        self._swap_raw(s1, s2, fire_hooks=True)
        log = self.undo_log
        if log is not None:
            # the raw swap is an involution; hooks are not refired on
            # undo (the scheduler's window-state journal restores those)
            log.append(self._closure_swap(s1, s2) if self.closure_undo
                       else (OP_SWAP, self, s1, s2))

    def _closure_swap(self, s1: int, s2: int) -> Callable[[], None]:
        return lambda: self._swap_raw(s1, s2, fire_hooks=False)

    def _swap_raw(self, s1: int, s2: int, *, fire_hooks: bool) -> None:
        in1 = s1 in self.lower_occupied
        in2 = s2 in self.lower_occupied
        if in1 != in2:
            if in1:
                self.lower_occupied.discard(s1)
                self.lower_occupied.add(s2)
            else:
                self.lower_occupied.discard(s2)
                self.lower_occupied.add(s1)
        o1 = self.slot_owner.pop(s1, None)
        o2 = self.slot_owner.pop(s2, None)
        if o1 is not None:
            self.assigned[o1].discard(s1)
            if fire_hooks and self.on_release is not None:
                self.on_release(o1, s1)
        if o2 is not None:
            self.assigned[o2].discard(s2)
            if fire_hooks and self.on_release is not None:
                self.on_release(o2, s2)
        if o1 is not None:
            self.slot_owner[s2] = o1
            self.assigned[o1].add(s2)
            if fire_hooks and self.on_assign is not None:
                self.on_assign(o1, s2)
        if o2 is not None:
            self.slot_owner[s1] = o2
            self.assigned[o2].add(s1)
            if fire_hooks and self.on_assign is not None:
                self.on_assign(o2, s1)
        # Per-window assignment counts are unchanged (each owner keeps
        # the same number of slots). Recompute free membership for both
        # endpoints from first principles (allowance + unowned).
        for s in (s1, s2):
            self._free_discard(s)
            if s not in self.lower_occupied and s not in self.slot_owner:
                self._free_add(s)
        self._invalidate()

    # ------------------------------------------------------------------
    def total_demand(self) -> int:
        return sum(d for _, d in self.demands())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Interval(level={self.level}, idx={self.index}, "
                f"[{self.lo},{self.hi}), lower={len(self.lower_occupied)}, "
                f"assigned={sum(len(v) for v in self.assigned.values())})")
