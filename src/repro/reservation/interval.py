"""Level-l interval state: allowance, reservations, fulfillment, assignment.

An :class:`Interval` is one aligned block of ``L_l`` slots at reservation
level ``l``. It tracks:

- ``lower_occupied`` — slots currently holding jobs of level < l. The
  complement within the interval is the paper's *allowance*.
- ``dynamic_res`` — dynamic reservation counts per enclosing window
  (2 per job, round-robin); the *baseline* reservation (1 per enclosing
  window, always present) is added implicitly by :meth:`demands`.
- ``assigned`` / ``slot_owner`` — which allowance slots currently back
  fulfilled reservations of which window.

Which reservations are fulfilled is a pure function of the demand
multiset and the allowance size (:meth:`target_fulfilled`): sort
enclosing windows shortest-span first (ties by start) and grant greedily
— Observation 7's history independence. :meth:`rebalance` reconciles the
assignment with the target after any change, returning the level-l jobs
whose backing slot was revoked (the scheduler then MOVEs them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.job import JobId
from ..core.window import Window, aligned_window_covering


@dataclass
class Interval:
    """One level-l interval (an aligned ``L_l``-slot block)."""

    level: int
    index: int
    lo: int
    hi: int
    #: legal level-l window spans (from the policy), smallest first
    enclosing_spans: tuple[int, ...]
    lower_occupied: set[int] = field(default_factory=set)
    dynamic_res: dict[Window, int] = field(default_factory=dict)
    assigned: dict[Window, set[int]] = field(default_factory=dict)
    slot_owner: dict[int, Window] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # geometry / demand
    # ------------------------------------------------------------------
    @property
    def span(self) -> int:
        return self.hi - self.lo

    def slots(self) -> range:
        return range(self.lo, self.hi)

    def enclosing_windows(self) -> list[Window]:
        """All legal level-l windows containing this interval, shortest first."""
        return [aligned_window_covering(self.lo, s) for s in self.enclosing_spans]

    def allowance_size(self) -> int:
        return self.span - len(self.lower_occupied)

    def in_allowance(self, slot: int) -> bool:
        return self.lo <= slot < self.hi and slot not in self.lower_occupied

    def demands(self) -> list[tuple[Window, int]]:
        """(window, demand) for every enclosing window, priority order.

        Demand = 1 baseline + dynamic reservations. Every enclosing
        window always demands at least its baseline (Observation 7:
        fulfillment must not depend on which windows happen to have
        jobs). Priority: shortest span first, ties by window start.
        """
        out = []
        for w in self.enclosing_windows():
            out.append((w, 1 + self.dynamic_res.get(w, 0)))
        # enclosing_windows is already shortest-first; starts are unique
        # per span (one window per span covers this interval), so the
        # span order is a total priority order.
        return out

    def target_fulfilled(self) -> dict[Window, int]:
        """Fulfilled-reservation counts per window (pure function).

        Greedy by priority: each window receives
        ``min(demand, remaining allowance)``.
        """
        remaining = self.allowance_size()
        target: dict[Window, int] = {}
        for w, demand in self.demands():
            take = min(demand, remaining)
            target[w] = take
            remaining -= take
        return target

    def waitlisted(self) -> dict[Window, int]:
        """Demand minus fulfilled, per enclosing window (zero entries kept)."""
        target = self.target_fulfilled()
        return {w: d - target[w] for w, d in self.demands()}

    # ------------------------------------------------------------------
    # reservation mutation (dynamic part only)
    # ------------------------------------------------------------------
    def add_dynamic(self, window: Window, delta: int) -> None:
        """Adjust dynamic reservation count for a window by +/- delta."""
        new = self.dynamic_res.get(window, 0) + delta
        if new < 0:
            raise ValueError(
                f"dynamic reservations for {window} would go negative at "
                f"interval {self.index} (level {self.level})"
            )
        if new:
            self.dynamic_res[window] = new
        else:
            self.dynamic_res.pop(window, None)

    # ------------------------------------------------------------------
    # allowance mutation
    # ------------------------------------------------------------------
    def slot_lowered(self, slot: int) -> None:
        """A job of level < l now occupies ``slot`` (it leaves the allowance).

        Any assignment backing the slot is revoked; the caller must
        rebalance afterwards.
        """
        if not self.lo <= slot < self.hi:
            raise ValueError(f"slot {slot} outside interval [{self.lo},{self.hi})")
        self.lower_occupied.add(slot)
        owner = self.slot_owner.pop(slot, None)
        if owner is not None:
            self.assigned[owner].discard(slot)
            if not self.assigned[owner]:
                del self.assigned[owner]

    def slot_raised(self, slot: int) -> None:
        """The lower-level occupant of ``slot`` left (slot rejoins allowance)."""
        self.lower_occupied.discard(slot)

    # ------------------------------------------------------------------
    # assignment reconciliation
    # ------------------------------------------------------------------
    def rebalance(
        self,
        level_job_at: Callable[[int], JobId | None],
        empty_at: Callable[[int], bool],
    ) -> list[JobId]:
        """Reconcile slot assignments with :meth:`target_fulfilled`.

        Parameters
        ----------
        level_job_at:
            slot -> id of the level-l job occupying it (None otherwise).
            Used to avoid revoking occupied backing slots when an empty
            one can be released instead, and to report forced moves.
        empty_at:
            slot -> True iff *no* job of any level occupies it. Used to
            prefer truly empty slots when assigning, minimizing future
            cross-level displacement.

        Returns the level-l jobs whose backing slot was revoked; the
        scheduler must MOVE each of them.
        """
        target = self.target_fulfilled()
        revoked: list[JobId] = []

        # Phase 1: releases (excess assignments), empty slots first.
        for w in list(self.assigned):
            have = self.assigned[w]
            want = target.get(w, 0)
            excess = len(have) - want
            if excess <= 0:
                continue
            empties = sorted(s for s in have if level_job_at(s) is None)
            occupied = sorted(s for s in have if level_job_at(s) is not None)
            for s in (empties + occupied)[:excess]:
                have.discard(s)
                del self.slot_owner[s]
                job = level_job_at(s)
                if job is not None:
                    revoked.append(job)
            if not have:
                del self.assigned[w]

        # Phase 2: top-ups. Free = allowance slots backing nothing.
        free = [s for s in self.slots()
                if s not in self.lower_occupied and s not in self.slot_owner]
        # Truly empty slots first, then slots under higher-level jobs.
        free.sort(key=lambda s: (not empty_at(s), s))
        fi = 0
        for w, want in target.items():
            have = self.assigned.get(w)
            need = want - (len(have) if have else 0)
            if need <= 0:
                continue
            if fi + need > len(free):  # pragma: no cover - defensive
                raise AssertionError(
                    f"interval {self.index} (level {self.level}): target "
                    "fulfillment exceeds allowance"
                )
            chosen = free[fi:fi + need]
            fi += need
            if have is None:
                have = self.assigned[w] = set()
            for s in chosen:
                have.add(s)
                self.slot_owner[s] = w
        return revoked

    # ------------------------------------------------------------------
    # swap support (the MOVE trick of Figure 1, lines 12-13)
    # ------------------------------------------------------------------
    def swap_slots(self, s1: int, s2: int) -> None:
        """Exchange the roles of two slots in this interval's bookkeeping.

        Swaps allowance membership and assignment ownership. Used by
        MOVE at ancestor levels so that relocating a lower-level job
        between two slots of the same ancestor interval is invisible to
        this level (net allowance change zero).
        """
        if s1 == s2:
            return
        in1 = s1 in self.lower_occupied
        in2 = s2 in self.lower_occupied
        if in1 != in2:
            if in1:
                self.lower_occupied.discard(s1)
                self.lower_occupied.add(s2)
            else:
                self.lower_occupied.discard(s2)
                self.lower_occupied.add(s1)
        o1 = self.slot_owner.pop(s1, None)
        o2 = self.slot_owner.pop(s2, None)
        if o1 is not None:
            self.assigned[o1].discard(s1)
        if o2 is not None:
            self.assigned[o2].discard(s2)
        if o1 is not None:
            self.slot_owner[s2] = o1
            self.assigned[o1].add(s2)
        if o2 is not None:
            self.slot_owner[s1] = o2
            self.assigned[o2].add(s1)
        for owner in (o1, o2):
            if owner is not None and not self.assigned.get(owner, {1}):
                self.assigned.pop(owner, None)

    # ------------------------------------------------------------------
    def total_demand(self) -> int:
        return sum(d for _, d in self.demands())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Interval(level={self.level}, idx={self.index}, "
                f"[{self.lo},{self.hi}), lower={len(self.lower_occupied)}, "
                f"assigned={sum(len(v) for v in self.assigned.values())})")
