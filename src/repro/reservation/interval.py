"""Level-l interval state: allowance, reservations, fulfillment, assignment.

An :class:`Interval` is one aligned block of ``L_l`` slots at reservation
level ``l``. It tracks:

- the *allowance* — which of its slots currently hold jobs of level < l
  (the paper's lower-occupied set; the complement is the allowance);
- *dynamic reservations* per enclosing window (2 per job, round-robin);
  the *baseline* reservation (1 per enclosing window, always present)
  is added implicitly by :meth:`demands`;
- the *assignment* — which allowance slots currently back fulfilled
  reservations of which window.

Which reservations are fulfilled is a pure function of the demand
multiset and the allowance size (:meth:`target_fulfilled`): sort
enclosing windows shortest-span first (ties by start) and grant greedily
— Observation 7's history independence. :meth:`rebalance` reconciles the
assignment with the target after any change, returning the level-l jobs
whose backing slot was revoked (the scheduler then MOVEs them).

Flattened hot state (engine-scale runs). The enclosing windows of an
interval form a fixed tuple (one per legal span), and its slots a fixed
``[lo, hi)`` block — so *all* hot state is positional, no Window or slot
hashing anywhere on the mutation path:

- ``_lower`` — a ``bytearray`` over the slot block (1 = lower-occupied),
  with ``_n_lower`` tracking its popcount (allowance size in O(1));
- ``_dyn`` / ``_counts`` — dynamic-reservation and assigned-slot counts
  per ladder position, with ``_dyn_total`` the running demand sum;
- ``_aslots`` — the assigned slot set per ladder position, and
  ``_owner`` — the inverse map as a per-slot position array (-1 free);
- ``_ws`` — the owning scheduler's per-position
  :class:`~repro.reservation.window_state.WindowState` cache, so the
  assignment hooks hand the scheduler the state object directly instead
  of a Window to hash-look-up.

The legacy Window-keyed mappings (``lower_occupied``, ``dynamic_res``,
``assigned``, ``slot_owner``) survive as derived read-only properties —
the validation layer cross-checks them against the flattened forms.

The fulfillment target is *memoized* (``_tlist`` / ``_tvalid``) and
maintained incrementally where the slack structure allows: whenever the
allowance covers every demand (``allowance >= n_positions + _dyn_total``)
the target is exactly ``1 + dyn`` per position, so a dynamic delta
adjusts one entry and pure allowance changes leave it untouched; outside
slack the memo is invalidated and :meth:`_target_list` recomputes.
:meth:`compute_target_fresh` recomputes from the derived mappings and is
the oracle the property tests compare against. A sorted index of *free*
allowance slots (backing nothing) lets :meth:`rebalance` top up
fulfillments without scanning the ``L_l`` slot range, and rebalance
exits O(1)-early when nothing changed since the last reconciliation.

When ``undo_log`` is set every mutation appends its exact inverse — the
scheduler's failed-request rollback journal. Journal entries are tuple
opcodes addressing state positionally (one allocation each, dispatched
by :func:`~repro.reservation.journal.replay_entries`); setting
``closure_undo`` switches an interval to the original closure-per-entry
representation, kept as the rollback-equivalence oracle (the
``_closure_*`` helpers are out-of-line so the hot path pays no
cell-variable setup for them).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Callable

from ..core.job import JobId
from ..core.window import Window, aligned_window_covering
from .journal import (
    OP_ASSIGN,
    OP_DYNAMIC,
    OP_LOWERED,
    OP_RAISED,
    OP_RELEASE,
    OP_SWAP,
)


class Interval:
    """One level-l interval (an aligned ``L_l``-slot block)."""

    def __init__(self, *, level: int, index: int, lo: int, hi: int,
                 enclosing_spans: tuple[int, ...],
                 on_assign: Callable | None = None,
                 on_release: Callable | None = None,
                 undo_log: list | None = None,
                 closure_undo: bool = False) -> None:
        self.level = level
        self.index = index
        self.lo = lo
        self.hi = hi
        #: legal level-l window spans (from the policy), smallest first
        self.enclosing_spans = enclosing_spans
        #: bit length of the smallest enclosing span (ladder-position
        #: arithmetic base, hoisted out of the hot ``_pos`` lookup)
        self._span_bits0 = enclosing_spans[0].bit_length()
        #: scheduler hooks fired on every assignment change (slot gained /
        #: lost by a window state); None outside a scheduler (unit tests)
        self.on_assign = on_assign
        self.on_release = on_release
        #: when set (by the scheduler, per request), every mutation appends
        #: its inverse here — replayed in reverse to roll back a failure
        self.undo_log = undo_log
        #: True switches undo entries from tuple opcodes to the original
        #: per-mutation closures (the journal-equivalence test oracle)
        self.closure_undo = closure_undo
        span = hi - lo
        npos = len(enclosing_spans)
        #: enclosing-window tuple, one per ladder position (immutable)
        self._windows: tuple[Window, ...] = tuple(
            aligned_window_covering(lo, s) for s in enclosing_spans
        )
        #: per-slot lower-occupied bits (index = slot - lo)
        self._lower = bytearray(span)
        #: popcount of ``_lower`` (allowance size = span - _n_lower)
        self._n_lower = 0
        #: dynamic reservation count per ladder position
        self._dyn = [0] * npos
        #: running sum of ``_dyn`` (slack test input)
        self._dyn_total = 0
        #: assigned slot set per ladder position
        self._aslots: list[set[int]] = [set() for _ in range(npos)]
        #: assigned slot count per ladder position (len of _aslots entry)
        self._counts = [0] * npos
        #: per-slot owner ladder position (-1 = unowned; index = slot - lo)
        self._owner = [-1] * span
        #: owning scheduler's WindowState per ladder position (None when
        #: the window is inactive); maintained by the scheduler
        self._ws: list[object | None] = [None] * npos
        #: sorted free allowance slots (in allowance, backing nothing)
        self._free = list(range(lo, hi))
        #: memoized positional fulfillment target + validity flag
        self._tlist = [0] * npos
        self._tvalid = False
        #: ladder positions whose counts may diverge from the target
        #: since the last rebalance; ``_dirty_all`` widens the next
        #: reconciliation to every position (target memo invalidated)
        self._dirty: set[int] = set()
        self._dirty_all = True
        #: True when a mutation since the last rebalance may have
        #: unbalanced the assignment (fresh intervals start unreconciled)
        self._stale = True

    # ------------------------------------------------------------------
    # serialization (worker-resident schedulers cross a process boundary)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Picklable state: everything but the scheduler-owned callables.

        ``on_assign`` / ``on_release`` are bound methods of the owning
        scheduler and ``undo_log`` is only ever set inside a request, so
        all three are dropped; the scheduler's own ``__setstate__``
        re-attaches its hooks to every interval it restores. The ``_ws``
        cache rides along — its WindowState objects are shared with the
        scheduler's own tables, so pickling the scheduler graph
        preserves the identity.
        """
        state = self.__dict__.copy()
        state["on_assign"] = None
        state["on_release"] = None
        state["undo_log"] = None
        return state

    # ------------------------------------------------------------------
    # geometry / demand
    # ------------------------------------------------------------------
    @property
    def span(self) -> int:
        return self.hi - self.lo

    def slots(self) -> range:
        return range(self.lo, self.hi)

    def enclosing_windows(self) -> list[Window]:
        """All legal level-l windows containing this interval, shortest first."""
        return list(self._windows)

    def _pos(self, window: Window) -> int:
        """Position of an enclosing window in the span ladder (no hashing)."""
        return window.span.bit_length() - self._span_bits0

    def allowance_size(self) -> int:
        return self.span - self._n_lower

    def in_allowance(self, slot: int) -> bool:
        return self.lo <= slot < self.hi and not self._lower[slot - self.lo]

    # ------------------------------------------------------------------
    # derived Window-keyed views (validation / test surface; the hot
    # path never builds these)
    # ------------------------------------------------------------------
    @property
    def lower_occupied(self) -> set[int]:
        """Slots currently holding jobs of level < l (derived view)."""
        lo = self.lo
        return {lo + i for i, b in enumerate(self._lower) if b}

    @property
    def dynamic_res(self) -> dict[Window, int]:
        """Dynamic reservation count per enclosing window (derived view)."""
        return {w: d for w, d in zip(self._windows, self._dyn) if d}

    @property
    def assigned(self) -> dict[Window, set[int]]:
        """Assigned slot set per enclosing window (derived view)."""
        return {w: set(s) for w, s in zip(self._windows, self._aslots) if s}

    @property
    def slot_owner(self) -> dict[int, Window]:
        """slot -> owning window for every assigned slot (derived view)."""
        lo = self.lo
        windows = self._windows
        return {lo + i: windows[p] for i, p in enumerate(self._owner) if p >= 0}

    def demands(self) -> list[tuple[Window, int]]:
        """(window, demand) for every enclosing window, priority order.

        Demand = 1 baseline + dynamic reservations. Every enclosing
        window always demands at least its baseline (Observation 7:
        fulfillment must not depend on which windows happen to have
        jobs). Priority: shortest span first, ties by window start.
        """
        # enclosing windows are already shortest-first; starts are unique
        # per span (one window per span covers this interval), so the
        # span order is a total priority order.
        return [(w, 1 + d) for w, d in zip(self._windows, self._dyn)]

    # ------------------------------------------------------------------
    # fulfillment target (memoized, incrementally maintained under slack)
    # ------------------------------------------------------------------
    def _target_list(self) -> list[int]:
        if self._tvalid:
            return self._tlist
        remaining = self.span - self._n_lower
        out = []
        for d in self._dyn:
            if remaining <= 0:
                out.append(0)
                continue
            take = d + 1
            if take > remaining:
                take = remaining
            out.append(take)
            remaining -= take
        self._tlist = out
        self._tvalid = True
        return out

    def target_fulfilled(self) -> dict[Window, int]:
        """Fulfilled-reservation counts per window (pure function).

        Greedy by priority: each window receives
        ``min(demand, remaining allowance)``. Served from the memoized
        positional target; :meth:`compute_target_fresh` is the uncached
        oracle.
        """
        return dict(zip(self._windows, self._target_list()))

    def compute_target_fresh(self) -> dict[Window, int]:
        """Recompute the fulfillment target from scratch (no memo).

        The history-independence guard: the property tests assert this
        always equals :meth:`target_fulfilled` under arbitrary
        insert/delete interleavings. Reads through the derived
        Window-keyed views, so it also cross-checks the flattened state.
        """
        remaining = self.allowance_size()
        get = self.dynamic_res.get
        target: dict[Window, int] = {}
        for w in self._windows:
            take = min(1 + get(w, 0), remaining)
            target[w] = take
            remaining -= take
        return target

    def waitlisted(self) -> dict[Window, int]:
        """Demand minus fulfilled, per enclosing window (zero entries kept)."""
        target = self.target_fulfilled()
        return {w: d - target[w] for w, d in self.demands()}

    def _note_allowance_shrunk(self, had_owner: bool) -> None:
        """Maintain the memo after a slot left the allowance."""
        slack = (self.span - self._n_lower
                 >= len(self._dyn) + self._dyn_total)
        if had_owner:
            # an assignment was revoked: counts diverge from the target
            # (the caller marks the revoked position dirty)
            self._stale = True
            if not slack:
                self._tvalid = False
                self._dirty_all = True
        elif not (self._tvalid and slack):
            # outside slack the tail targets shift with the allowance
            self._tvalid = False
            self._dirty_all = True
            self._stale = True
        # a free slot lowered under slack changes neither the target nor
        # the counts — no rebalance needed

    def _note_allowance_grown(self) -> None:
        """Maintain the memo *before* a slot rejoins the allowance."""
        if (self._tvalid and self.span - self._n_lower
                >= len(self._dyn) + self._dyn_total):
            return  # full demand already met; growth changes nothing
        self._tvalid = False
        self._dirty_all = True
        self._stale = True

    # ------------------------------------------------------------------
    # free-slot index (allowance slots backing nothing)
    # ------------------------------------------------------------------
    def free_slots(self) -> list[int]:
        """Sorted allowance slots currently backing no reservation.

        Maintained incrementally; treat as read-only.
        """
        return self._free

    def _free_add(self, slot: int) -> None:
        insort(self._free, slot)

    def _free_discard(self, slot: int) -> None:
        free = self._free
        i = bisect_left(free, slot)
        if i < len(free) and free[i] == slot:
            del free[i]

    # ------------------------------------------------------------------
    # reservation mutation (dynamic part only)
    # ------------------------------------------------------------------
    def add_dynamic(self, window: Window, delta: int) -> None:
        """Adjust dynamic reservation count for a window by +/- delta."""
        # position lookup and validation first: nothing may raise between
        # the container mutation and the undo append (rollback would
        # miss the mutation)
        pos = window.span.bit_length() - self._span_bits0
        dyn = self._dyn
        new = dyn[pos] + delta
        if new < 0:
            raise ValueError(
                f"dynamic reservations for {window} would go negative at "
                f"interval {self.index} (level {self.level})"
            )
        dyn[pos] = new
        log = self.undo_log
        if log is not None:
            log.append(self._closure_dynamic(pos, delta)
                       if self.closure_undo
                       else (OP_DYNAMIC, self, pos, delta))
        # memo maintenance, inlined from the former _note_dyn_changed
        # (this is the single hottest interval mutation): under slack
        # (allowance covers every demand, before and after) the target
        # is exactly ``1 + dyn`` per position, so the memo adjusts in
        # place; otherwise it is invalidated.
        old_total = self._dyn_total
        new_total = old_total + delta
        self._dyn_total = new_total
        if self._tvalid:
            worst = old_total if old_total > new_total else new_total
            if self.span - self._n_lower >= len(dyn) + worst:
                self._tlist[pos] += delta
                self._dirty.add(pos)
            else:
                self._tvalid = False
                self._dirty_all = True
        else:
            self._dirty_all = True
        self._stale = True

    def _closure_dynamic(self, pos: int, delta: int) -> Callable[[], None]:
        return lambda: self._undo_dynamic(pos, delta)

    def _undo_dynamic(self, pos: int, delta: int) -> None:
        self._dyn[pos] -= delta
        self._dyn_total -= delta
        self._tvalid = False
        self._dirty_all = True
        self._stale = True

    # ------------------------------------------------------------------
    # assignment primitives (keep slots, counts, free index, hooks, undo
    # log consistent in one place)
    # ------------------------------------------------------------------
    def _do_assign(self, pos: int, slot: int) -> None:
        self._aslots[pos].add(slot)
        self._owner[slot - self.lo] = pos
        self._counts[pos] += 1
        self._free_discard(slot)
        # undo entry before the hook: the scheduler-side hook can raise
        # (underallocation checks), and a raise between the mutation and
        # the append would leave the assign invisible to rollback
        log = self.undo_log
        if log is not None:
            log.append(self._closure_assign(pos, slot)
                       if self.closure_undo
                       else (OP_ASSIGN, self, pos, slot))
        on_assign = self.on_assign
        if on_assign is not None:
            ws = self._ws[pos]
            if ws is not None:
                on_assign(ws, slot)

    def _closure_assign(self, pos: int, slot: int) -> Callable[[], None]:
        return lambda: self._undo_assign(pos, slot)

    def _undo_assign(self, pos: int, slot: int) -> None:
        self._aslots[pos].discard(slot)
        self._owner[slot - self.lo] = -1
        self._counts[pos] -= 1
        self._free_add(slot)
        self._dirty.add(pos)
        self._stale = True

    def _do_release(self, pos: int, slot: int) -> None:
        self._aslots[pos].discard(slot)
        self._owner[slot - self.lo] = -1
        self._counts[pos] -= 1
        self._free_add(slot)
        # undo entry before the hook, same ordering contract as
        # _do_assign: a raising hook must find the release journaled
        log = self.undo_log
        if log is not None:
            log.append(self._closure_release(pos, slot)
                       if self.closure_undo
                       else (OP_RELEASE, self, pos, slot))
        on_release = self.on_release
        if on_release is not None:
            ws = self._ws[pos]
            if ws is not None:
                on_release(ws, slot)

    def _closure_release(self, pos: int, slot: int) -> Callable[[], None]:
        return lambda: self._undo_release(pos, slot)

    def _undo_release(self, pos: int, slot: int) -> None:
        self._aslots[pos].add(slot)
        self._owner[slot - self.lo] = pos
        self._counts[pos] += 1
        self._free_discard(slot)
        self._dirty.add(pos)
        self._stale = True

    # ------------------------------------------------------------------
    # allowance mutation
    # ------------------------------------------------------------------
    def slot_lowered(self, slot: int) -> None:
        """A job of level < l now occupies ``slot`` (it leaves the allowance).

        Any assignment backing the slot is revoked; the caller must
        rebalance afterwards.
        """
        if not self.lo <= slot < self.hi:
            raise ValueError(f"slot {slot} outside interval [{self.lo},{self.hi})")
        i = slot - self.lo
        if self._lower[i]:
            return
        opos = self._owner[i]
        self._lower[i] = 1
        self._n_lower += 1
        if opos >= 0:
            self._owner[i] = -1
            self._aslots[opos].discard(slot)
            self._counts[opos] -= 1
            self._dirty.add(opos)
        else:
            self._free_discard(slot)
        log = self.undo_log
        if log is not None:
            log.append(self._closure_slot_lowered(slot, opos)
                       if self.closure_undo
                       else (OP_LOWERED, self, slot, opos))
        self._note_allowance_shrunk(opos >= 0)
        on_release = self.on_release
        if opos >= 0 and on_release is not None:
            ws = self._ws[opos]
            if ws is not None:
                on_release(ws, slot)

    def _closure_slot_lowered(self, slot: int, opos: int) -> Callable[[], None]:
        return lambda: self._undo_slot_lowered(slot, opos)

    def _undo_slot_lowered(self, slot: int, opos: int) -> None:
        i = slot - self.lo
        self._lower[i] = 0
        self._n_lower -= 1
        if opos >= 0:
            self._aslots[opos].add(slot)
            self._owner[i] = opos
            self._counts[opos] += 1
        else:
            self._free_add(slot)
        self._tvalid = False
        self._dirty_all = True
        self._stale = True

    def slot_raised(self, slot: int) -> None:
        """The lower-level occupant of ``slot`` left (slot rejoins allowance)."""
        if not self.lo <= slot < self.hi:
            return
        i = slot - self.lo
        if not self._lower[i]:
            return
        # memo bookkeeping reads the pre-growth allowance, so it runs
        # first (it mutates nothing the undo entry must cover)
        self._note_allowance_grown()
        self._lower[i] = 0
        self._n_lower -= 1
        self._free_add(slot)
        log = self.undo_log
        if log is not None:
            log.append(self._closure_slot_raised(slot)
                       if self.closure_undo
                       else (OP_RAISED, self, slot))

    def _closure_slot_raised(self, slot: int) -> Callable[[], None]:
        return lambda: self._undo_slot_raised(slot)

    def _undo_slot_raised(self, slot: int) -> None:
        self._lower[slot - self.lo] = 1
        self._n_lower += 1
        self._free_discard(slot)
        self._tvalid = False
        self._dirty_all = True
        self._stale = True

    # ------------------------------------------------------------------
    # materialization seeding
    # ------------------------------------------------------------------
    def seed_lower(self, slots: list[int]) -> None:
        """Seed lower-occupied membership at materialization time.

        Exempt from per-mutation journaling: the scheduler journals the
        materialization wholesale (an ``OP_POP`` dropping the interval
        from its table), so rollback discards the object rather than
        unwinding the seed.
        """
        lower = self._lower
        lo = self.lo
        added = 0
        for s in slots:
            i = s - lo
            if not lower[i]:
                lower[i] = 1
                added += 1
        self._n_lower += added
        owner = self._owner
        self._free = [s for s in range(lo, self.hi)
                      if not lower[s - lo] and owner[s - lo] < 0]
        self._tvalid = False
        self._dirty_all = True
        self._stale = True

    # ------------------------------------------------------------------
    # assignment reconciliation
    # ------------------------------------------------------------------
    def rebalance(
        self,
        level_job_at: Callable[[int], JobId | None],
        empty_at: Callable[[int], bool],
    ) -> list[JobId]:
        """Reconcile slot assignments with :meth:`target_fulfilled`.

        Parameters
        ----------
        level_job_at:
            slot -> id of the level-l job occupying it (None otherwise).
            Used to avoid revoking occupied backing slots when an empty
            one can be released instead, and to report forced moves.
        empty_at:
            slot -> True iff *no* job of any level occupies it. Used to
            prefer truly empty slots when assigning, minimizing future
            cross-level displacement.

        Returns the level-l jobs whose backing slot was revoked; the
        scheduler must MOVE each of them.

        O(1) when nothing changed since the last reconciliation; when
        work is needed, only diverging windows are touched (the dirty
        position set narrows the scan while the target memo is valid)
        and top-up slots come from the free index instead of a range
        scan.
        """
        if not self._stale:
            return []
        counts = self._counts
        if self._dirty_all or not self._tvalid:
            target = self._target_list()
            self._dirty_all = False
            self._dirty.clear()
            if counts == target:
                self._stale = False
                return []
            positions = [p for p in range(len(target))
                         if counts[p] != target[p]]
        else:
            target = self._tlist
            dirty = self._dirty
            positions = [p for p in dirty if counts[p] != target[p]]
            dirty.clear()
            if not positions:
                self._stale = False
                return []
            if len(positions) > 1:
                positions.sort()
        aslots = self._aslots
        revoked: list[JobId] = []
        deficit = 0
        deficit_pos: list[int] = []

        # Phase 1: releases (excess assignments), empty slots first.
        for pos in positions:
            want = target[pos]
            have = counts[pos]
            if have < want:
                deficit += want - have
                deficit_pos.append(pos)
                continue
            excess = have - want
            # Single sorted pass partitioning empty vs occupied backing
            # slots (empties release first); stops probing once enough
            # empties are in hand, since occupied slots then never
            # release.
            empties: list[int] = []
            occupied: list[int] = []
            for s in sorted(aslots[pos]):
                if level_job_at(s) is None:
                    empties.append(s)
                    if len(empties) == excess:
                        break
                else:
                    occupied.append(s)
            for s in empties:
                self._do_release(pos, s)
            for s in occupied[:excess - len(empties)]:
                self._do_release(pos, s)
                job = level_job_at(s)
                if job is not None:
                    revoked.append(job)

        # Phase 2: top-ups from the free index, truly empty slots first,
        # then slots under higher-level jobs. The scan stops as soon as
        # enough empty slots are found (they always rank first).
        if deficit:
            empties = []
            covered = []
            for s in self._free:
                if empty_at(s):
                    empties.append(s)
                    if len(empties) == deficit:
                        break
                else:
                    covered.append(s)
            pool = empties + covered
            fi = 0
            for pos in deficit_pos:
                need = target[pos] - counts[pos]
                if need <= 0:
                    continue
                if fi + need > len(pool):  # pragma: no cover - defensive
                    raise AssertionError(
                        f"interval {self.index} (level {self.level}): target "
                        "fulfillment exceeds allowance"
                    )
                for s in pool[fi:fi + need]:
                    self._do_assign(pos, s)
                fi += need
        self._stale = False
        return revoked

    # ------------------------------------------------------------------
    # swap support (the MOVE trick of Figure 1, lines 12-13)
    # ------------------------------------------------------------------
    def swap_slots(self, s1: int, s2: int) -> None:
        """Exchange the roles of two slots in this interval's bookkeeping.

        Swaps allowance membership and assignment ownership. Used by
        MOVE at ancestor levels so that relocating a lower-level job
        between two slots of the same ancestor interval is invisible to
        this level (net allowance change zero).
        """
        if s1 == s2:
            return
        self._swap_raw(s1, s2, fire_hooks=True)
        log = self.undo_log
        if log is not None:
            # the raw swap is an involution; hooks are not refired on
            # undo (the scheduler's window-state journal restores those)
            log.append(self._closure_swap(s1, s2) if self.closure_undo
                       else (OP_SWAP, self, s1, s2))

    def _closure_swap(self, s1: int, s2: int) -> Callable[[], None]:
        return lambda: self._swap_raw(s1, s2, fire_hooks=False)

    def _swap_raw(self, s1: int, s2: int, *, fire_hooks: bool) -> None:
        lo = self.lo
        i1 = s1 - lo
        i2 = s2 - lo
        lower = self._lower
        if lower[i1] != lower[i2]:
            lower[i1], lower[i2] = lower[i2], lower[i1]
        owner = self._owner
        o1 = owner[i1]
        o2 = owner[i2]
        owner[i1] = owner[i2] = -1
        aslots = self._aslots
        ws_list = self._ws
        on_release = self.on_release
        on_assign = self.on_assign
        if o1 >= 0:
            aslots[o1].discard(s1)
            if fire_hooks and on_release is not None:
                ws = ws_list[o1]
                if ws is not None:
                    on_release(ws, s1)
        if o2 >= 0:
            aslots[o2].discard(s2)
            if fire_hooks and on_release is not None:
                ws = ws_list[o2]
                if ws is not None:
                    on_release(ws, s2)
        if o1 >= 0:
            owner[i2] = o1
            aslots[o1].add(s2)
            if fire_hooks and on_assign is not None:
                ws = ws_list[o1]
                if ws is not None:
                    on_assign(ws, s2)
        if o2 >= 0:
            owner[i1] = o2
            aslots[o2].add(s1)
            if fire_hooks and on_assign is not None:
                ws = ws_list[o2]
                if ws is not None:
                    on_assign(ws, s1)
        # Per-position assignment counts are unchanged (each owner keeps
        # the same number of slots), and the target is a pure function
        # of allowance *size* and demand — both unchanged — so the memo
        # and the staleness flag survive a swap. Recompute free
        # membership for both endpoints from first principles.
        for s in (s1, s2):
            self._free_discard(s)
            i = s - lo
            if not lower[i] and owner[i] < 0:
                self._free_add(s)

    # ------------------------------------------------------------------
    def total_demand(self) -> int:
        return sum(d for _, d in self.demands())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Interval(level={self.level}, idx={self.index}, "
                f"[{self.lo},{self.hi}), lower={self._n_lower}, "
                f"assigned={sum(self._counts)})")
