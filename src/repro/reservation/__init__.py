"""The paper's core contribution: pecking-order scheduling with reservations."""

from .deamortized import DeamortizedReservationScheduler, virtual_window
from .interval import Interval
from .scheduler import AlignedReservationScheduler
from .trimming import TrimmedReservationScheduler
from .validation import validate_scheduler
from .window_state import WindowState, dynamic_count, rr_counts, rr_diff

__all__ = [
    "DeamortizedReservationScheduler",
    "virtual_window",
    "Interval",
    "AlignedReservationScheduler",
    "TrimmedReservationScheduler",
    "validate_scheduler",
    "WindowState",
    "dynamic_count",
    "rr_counts",
    "rr_diff",
]
