"""Per-window reservation state and the round-robin distribution law.

Invariant 5 of the paper: a level-l window ``W`` with span ``2**k * L_l``
containing ``x`` jobs holds exactly ``2x + 2**k`` reservations in level-l
intervals — one standing ("baseline") reservation per enclosed interval
plus two per job — distributed round-robin with the leftmost intervals
holding the most.

We implement the distribution as a *pure function* of ``x``
(:func:`rr_counts`): interval at position ``i`` (0-based from the left)
holds ``1 + floor(2x / 2**k) + (1 if i < (2x mod 2**k) else 0)``
reservations. Incrementing ``x`` changes exactly two positions by +1 and
decrementing reverses it (:func:`rr_diff`), which is precisely the
paper's "send two new reservations to the leftmost intervals that have
the least" / "remove one from each of the two rightmost with the most".
Keeping the law functional makes Observation 7 (history independence of
the fulfilled sets) literally true by construction.

Fast-path indexes: :class:`SlotIndex` is a bisect-backed sorted slot
set, and :class:`WindowState` carries two of them — ``backed_empty``
(slots backing a fulfilled reservation of this window that are truly
empty) and ``backed_covered`` (backing slots occupied by a *higher*
level job). Together they let PLACE/MOVE find the preferred fulfilled
slot in O(1) instead of scanning the window's slot range; the scheduler
maintains them on every assignment and occupancy change.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..core.job import JobId
from ..core.window import Window


class SlotIndex:
    """A sorted set of slot numbers (bisect-backed).

    Supports O(log k) membership, cheap ordered iteration, and O(1)
    access to the smallest element — the operations the PLACE/MOVE fast
    path needs. Mutation is O(k) worst case but the lists are small
    (bounded by a window's fulfilled-reservation count) and the shifts
    run at C speed.
    """

    __slots__ = ("_slots",)

    def __init__(self, items: Iterable[int] = ()) -> None:
        self._slots: list[int] = sorted(items)

    def add(self, slot: int) -> None:
        i = bisect_left(self._slots, slot)
        if i == len(self._slots) or self._slots[i] != slot:
            self._slots.insert(i, slot)

    def discard(self, slot: int) -> None:
        i = bisect_left(self._slots, slot)
        if i < len(self._slots) and self._slots[i] == slot:
            del self._slots[i]

    def first(self, exclude: int | None = None) -> int | None:
        """Smallest slot, optionally skipping one excluded value."""
        for s in self._slots[:2]:
            if s != exclude:
                return s
        return None

    def __contains__(self, slot: int) -> bool:
        i = bisect_left(self._slots, slot)
        return i < len(self._slots) and self._slots[i] == slot

    def __len__(self) -> int:
        return len(self._slots)

    def __bool__(self) -> bool:
        return bool(self._slots)

    def __iter__(self) -> Iterator[int]:
        return iter(self._slots)

    def snapshot(self) -> list[int]:
        return list(self._slots)

    def restore(self, snap: list[int]) -> None:
        self._slots = snap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlotIndex({self._slots})"


def rr_counts(x: int, n_intervals: int) -> list[int]:
    """Reservation count per interval position for a window with x jobs.

    Includes the baseline (the leading ``1 +``). ``n_intervals`` must be
    the window's ``2**k`` interval count.
    """
    if x < 0:
        raise ValueError("x must be >= 0")
    if n_intervals < 1:
        raise ValueError("n_intervals must be >= 1")
    q, r = divmod(2 * x, n_intervals)
    return [1 + q + (1 if i < r else 0) for i in range(n_intervals)]


def rr_diff(x_old: int, x_new: int, n_intervals: int) -> dict[int, int]:
    """Positions whose reservation count changes when x_old -> x_new.

    Returns {position: delta}. For ``|x_new - x_old| == 1`` exactly two
    positions change by +/-1 (possibly wrapping around the interval
    list), matching the paper's incremental description.
    """
    # O(1) unit-step fast path (the scheduler's only hot shape): adding
    # one job advances the round-robin remainder r = 2x mod n by two, so
    # exactly positions r and r+1 (mod n) gain a reservation; removing
    # one job is the mirror image. Both collapse onto one doubled
    # position when n == 1. Cross-checked against the list-diff general
    # path by the unit-test property suite.
    if x_new == x_old + 1 and x_old >= 0:
        r = (2 * x_old) % n_intervals
        p1, p2 = r, (r + 1) % n_intervals
        return {p1: 2} if p1 == p2 else {p1: 1, p2: 1}
    if x_new == x_old - 1 and x_new >= 0:
        r = (2 * x_new) % n_intervals
        p1, p2 = r, (r + 1) % n_intervals
        return {p1: -2} if p1 == p2 else {p1: -1, p2: -1}
    old = rr_counts(x_old, n_intervals)
    new = rr_counts(x_new, n_intervals)
    return {i: new[i] - old[i] for i in range(n_intervals) if new[i] != old[i]}


def dynamic_count(x: int, n_intervals: int, position: int) -> int:
    """Dynamic (non-baseline) reservations at one position: rr_counts - 1."""
    q, r = divmod(2 * x, n_intervals)
    return q + (1 if position < r else 0)


@dataclass
class WindowState:
    """Mutable bookkeeping for one active level-l window.

    Created when the window's first job arrives (x: 0 -> 1) and dropped
    when its last job leaves. The *baseline* reservation (one per
    interval) is conceptually eternal — the intervals account for it
    implicitly for every enclosing window, so it does not appear here.

    Attributes
    ----------
    window:
        The aligned level-l window.
    level:
        Reservation level (>= 1).
    interval_ids:
        Indices of the ``2**k`` level-l intervals partitioning the window.
    jobs:
        Ids of active jobs whose (effective) window is exactly this one.
    backed_empty:
        Slots backing a fulfilled reservation of this window that hold
        no job at all (PLACE's preferred targets), sorted.
    backed_covered:
        Backing slots holding a job of a *higher* level (PLACE's
        displacement fallback), sorted. Slots under this window's own
        level-l jobs appear in neither index.
    ladder_pos:
        The window's ladder position inside each member interval
        (identical across members: a function of span and level alone).
        Set by the scheduler when the state is published; -1 until then.
        Keyed into ``Interval._ws`` so hooks and backed-index refreshes
        never hash the window.
    """

    window: Window
    level: int
    interval_ids: range
    jobs: set[JobId] = field(default_factory=set)
    backed_empty: SlotIndex = field(default_factory=SlotIndex, repr=False,
                                    compare=False)
    backed_covered: SlotIndex = field(default_factory=SlotIndex, repr=False,
                                      compare=False)
    ladder_pos: int = field(default=-1, repr=False, compare=False)

    @property
    def x(self) -> int:
        return len(self.jobs)

    @property
    def n_intervals(self) -> int:
        return len(self.interval_ids)

    def position_of(self, interval_id: int) -> int:
        """0-based left-to-right position of an interval inside the window."""
        pos = interval_id - self.interval_ids.start
        if not 0 <= pos < self.n_intervals:
            raise ValueError(f"interval {interval_id} not in window {self.window}")
        return pos

    def expected_dynamic(self, interval_id: int) -> int:
        """Dynamic reservation count this window should hold at an interval."""
        return dynamic_count(self.x, self.n_intervals, self.position_of(interval_id))
