"""Per-window reservation state and the round-robin distribution law.

Invariant 5 of the paper: a level-l window ``W`` with span ``2**k * L_l``
containing ``x`` jobs holds exactly ``2x + 2**k`` reservations in level-l
intervals — one standing ("baseline") reservation per enclosed interval
plus two per job — distributed round-robin with the leftmost intervals
holding the most.

We implement the distribution as a *pure function* of ``x``
(:func:`rr_counts`): interval at position ``i`` (0-based from the left)
holds ``1 + floor(2x / 2**k) + (1 if i < (2x mod 2**k) else 0)``
reservations. Incrementing ``x`` changes exactly two positions by +1 and
decrementing reverses it (:func:`rr_diff`), which is precisely the
paper's "send two new reservations to the leftmost intervals that have
the least" / "remove one from each of the two rightmost with the most".
Keeping the law functional makes Observation 7 (history independence of
the fulfilled sets) literally true by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.job import JobId
from ..core.window import Window


def rr_counts(x: int, n_intervals: int) -> list[int]:
    """Reservation count per interval position for a window with x jobs.

    Includes the baseline (the leading ``1 +``). ``n_intervals`` must be
    the window's ``2**k`` interval count.
    """
    if x < 0:
        raise ValueError("x must be >= 0")
    if n_intervals < 1:
        raise ValueError("n_intervals must be >= 1")
    q, r = divmod(2 * x, n_intervals)
    return [1 + q + (1 if i < r else 0) for i in range(n_intervals)]


def rr_diff(x_old: int, x_new: int, n_intervals: int) -> dict[int, int]:
    """Positions whose reservation count changes when x_old -> x_new.

    Returns {position: delta}. For ``|x_new - x_old| == 1`` exactly two
    positions change by +/-1 (possibly wrapping around the interval
    list), matching the paper's incremental description.
    """
    old = rr_counts(x_old, n_intervals)
    new = rr_counts(x_new, n_intervals)
    return {i: new[i] - old[i] for i in range(n_intervals) if new[i] != old[i]}


def dynamic_count(x: int, n_intervals: int, position: int) -> int:
    """Dynamic (non-baseline) reservations at one position: rr_counts - 1."""
    q, r = divmod(2 * x, n_intervals)
    return q + (1 if position < r else 0)


@dataclass
class WindowState:
    """Mutable bookkeeping for one active level-l window.

    Created when the window's first job arrives (x: 0 -> 1) and dropped
    when its last job leaves. The *baseline* reservation (one per
    interval) is conceptually eternal — the intervals account for it
    implicitly for every enclosing window, so it does not appear here.

    Attributes
    ----------
    window:
        The aligned level-l window.
    level:
        Reservation level (>= 1).
    interval_ids:
        Indices of the ``2**k`` level-l intervals partitioning the window.
    jobs:
        Ids of active jobs whose (effective) window is exactly this one.
    """

    window: Window
    level: int
    interval_ids: range
    jobs: set[JobId] = field(default_factory=set)

    @property
    def x(self) -> int:
        return len(self.jobs)

    @property
    def n_intervals(self) -> int:
        return len(self.interval_ids)

    def position_of(self, interval_id: int) -> int:
        """0-based left-to-right position of an interval inside the window."""
        pos = interval_id - self.interval_ids.start
        if not 0 <= pos < self.n_intervals:
            raise ValueError(f"interval {interval_id} not in window {self.window}")
        return pos

    def expected_dynamic(self, interval_id: int) -> int:
        """Dynamic reservation count this window should hold at an interval."""
        return dynamic_count(self.x, self.n_intervals, self.position_of(interval_id))
