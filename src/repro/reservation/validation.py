"""Deep invariant validation for the reservation scheduler.

:func:`validate_scheduler` audits the entire internal state of an
:class:`~repro.reservation.scheduler.AlignedReservationScheduler`
against first principles (recomputing everything from the occupancy and
active-job maps), raising :class:`ValidationError` with a precise
message on the first violation. The checks mirror the paper's
invariants:

1. occupancy/placement maps are mutually consistent and feasible;
2. every job's level matches the policy (pecking-order layering);
3. every materialized interval's ``lower_occupied`` equals the true set
   of slots under lower-level jobs;
4. assigned slots lie in the allowance, the owner maps are mutually
   inverse, and per-window assignment counts equal the pure-function
   fulfillment target (Observation 7 / Invariants 5-6);
5. dynamic reservation counts equal the round-robin law for every
   active window, and no stray reservations exist;
6. every level-l job sits on a slot assigned to its own window
   (Invariant 6);
7. (Lemma 8 health check, optional) every active window retains at
   least one job-free fulfilled slot.

The test-suite and the simulation driver run this after every request
in validation mode, so any bookkeeping drift is caught at the request
that introduced it.
"""

from __future__ import annotations

from ..core.exceptions import ValidationError
from ..core.window import Window
from .interval import Interval
from .scheduler import AlignedReservationScheduler
from .window_state import dynamic_count


def validate_scheduler(
    sched: AlignedReservationScheduler,
    *,
    check_lemma8: bool = True,
) -> None:
    """Audit all internal invariants; raise ValidationError on failure."""
    _check_occupancy(sched)
    _check_levels(sched)
    for level, table in sched.intervals.items():
        for iv in table.values():
            _check_interval(sched, level, iv)
    _check_window_states(sched)
    _check_job_backing(sched)
    _check_fast_path_indexes(sched)
    if check_lemma8:
        _check_lemma8(sched)


def check_rebuild_equivalence(sched: AlignedReservationScheduler) -> None:
    """The strongest Observation 7 check: fulfilled sets equal a rebuild's.

    Builds a fresh scheduler, inserts the same active jobs (sorted
    deterministically), and compares per-interval fulfilled targets on
    all intervals that carry dynamic reservations in either scheduler.
    For single-level states this must match exactly; for multi-level
    states the allowances depend on lower-level *placements*, which are
    not history independent, so intervals whose ``lower_occupied`` sets
    differ are skipped (the pure fulfillment function is still compared
    wherever the inputs agree).
    """
    rebuilt = AlignedReservationScheduler(sched.policy)
    for job in sorted(sched.jobs.values(), key=lambda j: (j.span, j.release, str(j.id))):
        rebuilt.insert(job)
    for level, table in sched.intervals.items():
        for idx, iv in table.items():
            other = rebuilt.intervals[level].get(idx)
            if other is None:
                if iv.dynamic_res:
                    raise ValidationError(
                        f"rebuild lacks interval {idx} at level {level} "
                        "despite live dynamic reservations"
                    )
                continue
            if iv.dynamic_res != other.dynamic_res:
                raise ValidationError(
                    f"dynamic reservations diverge from rebuild at level "
                    f"{level} interval {idx}: {iv.dynamic_res} vs "
                    f"{other.dynamic_res}"
                )
            if iv.lower_occupied == other.lower_occupied:
                if iv.target_fulfilled() != other.target_fulfilled():
                    raise ValidationError(
                        f"fulfillment diverges from rebuild at level {level} "
                        f"interval {idx}"
                    )


def _fail(msg: str) -> None:
    raise ValidationError(msg)


def _check_occupancy(sched: AlignedReservationScheduler) -> None:
    if set(sched.job_slot) != set(sched.jobs):
        _fail("job_slot keys do not match active jobs")
    for job_id, slot in sched.job_slot.items():
        if sched.slot_job.get(slot) != job_id:
            _fail(f"slot_job[{slot}] != {job_id!r}")
        job = sched.jobs[job_id]
        if slot not in job.window:
            _fail(f"job {job_id!r} at slot {slot} outside window {job.window}")
        pl = sched.placements.get(job_id)
        if pl is None or pl.slot != slot or pl.machine != 0:
            _fail(f"placements out of sync for job {job_id!r}")
    for slot, job_id in sched.slot_job.items():
        if sched.job_slot.get(job_id) != slot:
            _fail(f"slot {slot} occupant {job_id!r} has inconsistent job_slot")
    if len(sched.placements) != len(sched.jobs):
        _fail("placements size mismatch")


def _check_levels(sched: AlignedReservationScheduler) -> None:
    if set(sched._job_levels) != set(sched.jobs):
        _fail("_job_levels keys do not match active jobs")
    for job_id, level in sched._job_levels.items():
        expected = sched.policy.level_of_span(sched.jobs[job_id].span)
        if level != expected:
            _fail(f"job {job_id!r} level {level} != policy level {expected}")
        if not sched.jobs[job_id].window.is_aligned:
            _fail(f"job {job_id!r} window not aligned")


def _check_interval(sched: AlignedReservationScheduler, level: int,
                    iv: Interval) -> None:
    where = f"interval level={level} idx={iv.index}"
    # lower_occupied recomputed from occupancy
    true_lower = {
        s for s in iv.slots()
        if (occ := sched.slot_job.get(s)) is not None
        and sched._job_levels[occ] < level
    }
    if iv.lower_occupied != true_lower:
        _fail(f"{where}: lower_occupied {sorted(iv.lower_occupied)} != "
              f"true {sorted(true_lower)}")
    # owner maps mutually inverse, assigned within allowance
    seen: dict[int, Window] = {}
    for w, slots in iv.assigned.items():
        if not slots:
            _fail(f"{where}: empty assigned set kept for {w}")
        for s in slots:
            if not iv.in_allowance(s):
                _fail(f"{where}: assigned slot {s} of {w} outside allowance")
            if s in seen:
                _fail(f"{where}: slot {s} assigned to both {seen[s]} and {w}")
            seen[s] = w
            if iv.slot_owner.get(s) != w:
                _fail(f"{where}: slot_owner[{s}] != {w}")
    if set(iv.slot_owner) != set(seen):
        _fail(f"{where}: slot_owner keys inconsistent with assigned sets")
    # fulfillment equals the pure-function target (Observation 7)
    target = iv.target_fulfilled()
    for w, want in target.items():
        have = len(iv.assigned.get(w, ()))
        if have != want:
            _fail(f"{where}: window {w} assigned {have} != target {want}")
    for w in iv.assigned:
        if w not in target:
            _fail(f"{where}: assignment for non-enclosing window {w}")
    # no stray dynamic reservations
    for w, count in iv.dynamic_res.items():
        if count <= 0:
            _fail(f"{where}: non-positive dynamic count for {w}")
        ws = sched.window_states[level].get(w)
        if ws is None:
            _fail(f"{where}: dynamic reservations for inactive window {w}")


def _check_window_states(sched: AlignedReservationScheduler) -> None:
    for level, states in sched.window_states.items():
        for w, ws in states.items():
            if ws.x == 0:
                _fail(f"window state kept for empty window {w}")
            if ws.level != level:
                _fail(f"window state level mismatch for {w}")
            for job_id in sorted(ws.jobs, key=str):
                if job_id not in sched.jobs:
                    _fail(f"window {w} tracks inactive job {job_id!r}")
                if sched.jobs[job_id].window != w:
                    _fail(f"job {job_id!r} tracked under wrong window {w}")
            # round-robin law (Invariant 5): check materialized intervals;
            # non-materialized intervals must be owed zero dynamics.
            for idx in ws.interval_ids:
                pos = ws.position_of(idx)
                expected = dynamic_count(ws.x, ws.n_intervals, pos)
                iv = sched.intervals[level].get(idx)
                actual = iv.dynamic_res.get(w, 0) if iv is not None else 0
                if actual != expected:
                    _fail(
                        f"window {w} interval {idx}: dynamic reservations "
                        f"{actual} != round-robin law {expected}"
                    )
    # every active job of level >= 1 is tracked by exactly one window state
    for job_id, level in sched._job_levels.items():
        if level == 0:
            continue
        w = sched.jobs[job_id].window
        ws = sched.window_states[level].get(w)
        if ws is None or job_id not in ws.jobs:
            _fail(f"job {job_id!r} missing from window state of {w}")


def _check_job_backing(sched: AlignedReservationScheduler) -> None:
    """Invariant 6: every level-l (l>=1) job sits on its window's slot."""
    for job_id, level in sched._job_levels.items():
        if level == 0:
            continue
        slot = sched.job_slot[job_id]
        w = sched.jobs[job_id].window
        idx = sched.policy.interval_index(level, slot)
        iv = sched.intervals[level].get(idx)
        if iv is None:
            _fail(f"job {job_id!r} placed in non-materialized interval {idx}")
        if slot not in iv.assigned.get(w, ()):
            _fail(
                f"job {job_id!r} at slot {slot} not backed by a fulfilled "
                f"reservation of its window {w}"
            )


def _check_fast_path_indexes(sched: AlignedReservationScheduler) -> None:
    """The engine fast path's caches must equal a fresh recomputation.

    Cross-checks, per interval: the memoized fulfillment target against
    :meth:`~repro.reservation.interval.Interval.compute_target_fresh`
    (Observation 7's history-independence guard), the maintained
    free-slot index against a full allowance scan, and the flattened
    slot-indexed arrays (``_lower``/``_owner``/``_aslots`` and their
    maintained counters) against each other and against the scheduler's
    window-state tables (the ``_ws`` ladder-cache invariant); per window
    state: the backed_empty/backed_covered indexes against a rescan of
    the window's assignments, and the indexed PLACE choice against the
    reference scan.
    """
    for level, table in sched.intervals.items():
        states = sched.window_states[level]
        for iv in table.values():
            where = f"interval level={level} idx={iv.index}"
            if iv.target_fulfilled() != iv.compute_target_fresh():
                _fail(f"{where}: memoized fulfillment target diverges from "
                      "fresh recomputation")
            expected_free = [
                s for s in iv.slots()
                if s not in iv.lower_occupied and s not in iv.slot_owner
            ]
            if iv.free_slots() != expected_free:
                _fail(f"{where}: free-slot index {iv.free_slots()} != "
                      f"recomputed {expected_free}")
            # flattened-array internal consistency
            if iv._n_lower != sum(iv._lower):
                _fail(f"{where}: _n_lower {iv._n_lower} != popcount "
                      f"{sum(iv._lower)}")
            if iv._dyn_total != sum(iv._dyn):
                _fail(f"{where}: _dyn_total {iv._dyn_total} != "
                      f"sum(_dyn) {sum(iv._dyn)}")
            for pos, slots in enumerate(iv._aslots):
                if iv._counts[pos] != len(slots):
                    _fail(f"{where}: _counts[{pos}] {iv._counts[pos]} != "
                          f"len(_aslots[{pos}]) {len(slots)}")
                for s in sorted(slots):
                    if iv._owner[s - iv.lo] != pos:
                        _fail(f"{where}: _owner[{s - iv.lo}] != ladder "
                              f"position {pos} of its assigned slot {s}")
            for i, pos in enumerate(iv._owner):
                if pos >= 0 and iv.lo + i not in iv._aslots[pos]:
                    _fail(f"{where}: _owner claims slot {iv.lo + i} for "
                          f"position {pos} but _aslots disagrees")
                if pos >= 0 and iv._lower[i]:
                    _fail(f"{where}: slot {iv.lo + i} both owned and "
                          "lowered")
            # ladder-cache invariant: _ws mirrors the published tables
            for pos, w in enumerate(iv._windows):
                if iv._ws[pos] is not states.get(w):
                    _fail(f"{where}: _ws[{pos}] out of sync with "
                          f"window_states for {w}")
    for level, states in sched.window_states.items():
        for w, ws in states.items():
            empty: set[int] = set()
            covered: set[int] = set()
            for idx in ws.interval_ids:
                iv = sched.intervals[level].get(idx)
                if iv is None:
                    continue
                for s in sorted(iv.assigned.get(w, ())):
                    occ = sched.slot_job.get(s)
                    if occ is None:
                        empty.add(s)
                    elif sched._job_levels[occ] != level:
                        covered.add(s)
            if set(ws.backed_empty) != empty:
                _fail(f"window {w}: backed_empty {sorted(ws.backed_empty)} != "
                      f"recomputed {sorted(empty)}")
            if set(ws.backed_covered) != covered:
                _fail(f"window {w}: backed_covered "
                      f"{sorted(ws.backed_covered)} != recomputed {sorted(covered)}")
            indexed = sched._find_fulfilled_free_slot(w, level)
            scanned = sched._scan_fulfilled_free_slot(w, level)
            if indexed != scanned:
                _fail(f"window {w}: indexed PLACE choice {indexed} != "
                      f"reference scan {scanned}")


def _check_lemma8(sched: AlignedReservationScheduler) -> None:
    """Every active window keeps >= 1 job-free fulfilled slot (Lemma 8)."""
    for level, states in sched.window_states.items():
        for w, ws in states.items():
            free = 0
            occupied_by_own = 0
            for idx in ws.interval_ids:
                iv = sched.intervals[level].get(idx)
                if iv is None:
                    continue
                for s in sorted(iv.assigned.get(w, ())):
                    occ = sched.slot_job.get(s)
                    if occ is not None and sched._job_levels[occ] == level:
                        occupied_by_own += 1
                    else:
                        free += 1
            if occupied_by_own != ws.x:
                _fail(
                    f"window {w}: {occupied_by_own} fulfilled slots hold "
                    f"level-{level} jobs but x={ws.x}"
                )
            if free < 1:
                _fail(
                    f"window {w}: no job-free fulfilled slot remains "
                    f"(x={ws.x}); Lemma 8 margin exhausted"
                )
