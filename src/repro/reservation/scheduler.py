"""Single-machine pecking-order scheduling with reservations (Section 4).

This is the paper's core contribution (Figure 1), implemented faithfully:

- Jobs are split by window span into a base level (spans <= L_1 = 32,
  handled by constant-cost naive pecking-order displacement) and
  reservation levels l >= 1 (spans in (L_l, L_{l+1}]).
- Each reservation level partitions time into L_l-slot *intervals*
  (:class:`~repro.reservation.interval.Interval`). Every enclosing
  window holds one standing baseline reservation per interval; a window
  with x jobs holds 2x additional reservations spread round-robin
  (Invariant 5, implemented as a pure function of x in
  ``window_state.rr_counts``).
- Intervals fulfill reservations shortest-window-first within their
  *allowance* (slots not occupied by lower-level jobs); the rest are
  waitlisted (Observation 7: the fulfilled multiset is a pure function
  of the demand and allowance — history independent by construction).
- PLACE puts a job on one of its window's fulfilled slots, displacing at
  most one higher-level job, whose reinsertion cascades strictly upward
  (Figure 1, lines 15-23). MOVE relocates a job whose backing slot was
  revoked, swapping the two slots' roles inside every ancestor interval
  so the net allowance change is zero and at most one higher-level job
  relocates (lines 10-14).

Pecking order means lower levels never consult higher-level state; they
see higher-level jobs only as displaceable squatters. Consequently each
request touches O(1) jobs per level and there are O(log* Delta) levels —
Lemma 9's bound.

Deviations from the paper's prose (documented per DESIGN.md):

- Where the paper says "any slot"/"any job", we use deterministic
  preferences: truly empty slots before slots under higher-level jobs,
  then lowest slot number; smallest adequate victim span. These only
  improve constants.
- Intervals materialize lazily (scanning current occupancy on
  creation), so no time horizon needs declaring up front.

Fast path: PLACE and MOVE consult per-window backed-slot indexes
(:class:`~repro.reservation.window_state.WindowState` ``backed_empty`` /
``backed_covered``, maintained on every assignment and occupancy change)
instead of scanning the window's slot range, intervals memoize their
fulfillment targets (see ``interval.py``), and cost accounting uses the
base class's sparse touched-placement log. Failed requests roll back: an
undo journal records the pre-state of every structure touched by a
request, and an :class:`UnderallocationError` / :class:`InfeasibleError`
replays it in reverse before poisoning, so a poisoned scheduler's state
still equals the state before the failing request (post-mortem
validation sees no phantom jobs).

Batched fast path: inside an *atomic* ``apply_batch`` the per-request
journal is replaced by batch-scoped rollback (:class:`_AtomicBatchLog`)
— one undo journal spans the burst's interval mutations, window states
and their tables are snapshotted once per batch on first touch, the
placement maps rewind from the batch-level touched log, and job levels
rebuild from spans on the (rare) abort. The per-request journal
setup/teardown and all placement-map journaling disappear entirely,
while a mid-batch failure still restores the exact pre-batch state.

Placement-map journal diet: the same touched-log rewind covers the
*per-request* journal too. ``_set_placement`` / ``_clear_placement``
are the only mutators of the three placement maps and always record
the touched job first, so whenever a live touched log exists the
failed-request rollback rewinds the maps from it
(:meth:`AlignedReservationScheduler._rollback`) and the journal skips
them entirely; when no touched log is live (``emit_touched=False``
rebuild inners), one combined ``OP_PLACE`` / ``OP_UNPLACE`` entry per
mutation replaces the three per-map entries. Setting
``_placement_diet = False`` restores full per-map journaling — the
equivalence oracle for the diet's property tests.

Journal representation (the allocation diet): undo entries are tuple
opcodes replayed by one dispatch loop, and both the per-request journal
and the atomic batch log live on a per-scheduler
:class:`~repro.reservation.journal.UndoArena` — reusable containers
with watermark truncation, so steady-state request processing allocates
one tuple per recorded mutation and nothing else. Constructing with
``journal="closure"`` selects the original closure-per-entry journal
with fresh per-request containers, kept as the rollback-equivalence
oracle for the property tests and bench E11b.

The scheduler requires *aligned* windows and sufficient underallocation
(Lemma 8 needs 8-underallocation); when slack runs out it raises
:class:`UnderallocationError` and poisons itself — wrap with the
trimming/alignment/multi-machine layers for the full Theorem 1
scheduler.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

from ..analysis.sanitize import install_sanitizer, sanitize_enabled
from ..core.base import ReallocatingScheduler, _BatchContext
from ..core.events import EventTracer, NullTracer
from ..core.exceptions import (
    InfeasibleError,
    InvalidRequestError,
    UnderallocationError,
)
from ..core.job import Job, JobId, Placement
from ..core.window import Window
from ..levels.policy import LevelPolicy, PAPER_POLICY
from .interval import Interval
from .journal import (
    OP_PLACE,
    OP_POP,
    OP_SET,
    OP_UNPLACE,
    OP_WINDOW_STATE,
    UndoArena,
    replay_entries,
)
from .window_state import WindowState, rr_diff

_MISSING = object()


def flexible_span_order(job: Job) -> tuple[int, int, str]:
    """Span-ascending joint insert order for flexible batches.

    The same ``(span, release, id)`` order the trimming rebuild uses:
    placing small-span jobs first means later (larger-span) inserts can
    only displace *upward* in the pecking order, so a joint burst never
    builds the insert-then-displace move chains an arrival-order burst
    can. Shared by every layer of the reservation stack via
    ``_flexible_insert_order_key`` so the whole stack agrees.
    """
    return (job.span, job.release, str(job.id))


def _closure_pop(d: dict, key: Hashable) -> Callable[[], None]:
    """Closure-journal oracle entry equivalent to ``(OP_POP, d, key)``."""
    return lambda: d.pop(key, None)


def _closure_place(sched: "AlignedReservationScheduler", job_id: JobId,
                   slot: int) -> Callable[[], None]:
    """Closure-journal oracle entry equivalent to ``(OP_PLACE, ...)``."""
    return lambda: sched._undo_place(job_id, slot)


def _closure_unplace(sched: "AlignedReservationScheduler", job_id: JobId,
                     slot: int) -> Callable[[], None]:
    """Closure-journal oracle entry equivalent to ``(OP_UNPLACE, ...)``."""
    return lambda: sched._undo_unplace(job_id, slot)


def _closure_set(d: dict, key: Hashable, old: object) -> Callable[[], None]:
    """Closure-journal oracle entry equivalent to ``(OP_SET, d, key, old)``."""
    return lambda: d.__setitem__(key, old)


def _closure_window_state(ws: WindowState) -> Callable[[], None]:
    """Closure-journal oracle entry restoring a window state snapshot."""
    jobs = set(ws.jobs)
    empty = ws.backed_empty.snapshot()
    covered = ws.backed_covered.snapshot()

    def undo() -> None:
        ws.jobs = jobs
        ws.backed_empty.restore(empty)
        ws.backed_covered.restore(covered)

    return undo


class _AtomicBatchLog:
    """Batch-scoped rollback log for atomic batches.

    Inside an atomic batch the *per-request* undo journal is switched
    off. Intervals share ONE undo journal spanning the whole batch,
    attached on first touch — the per-request attach/detach cycle and
    the placement-map journaling disappear, which is where the batched
    fast path's journal amortization comes from. Window states and
    window-state tables are snapshotted once per batch on first touch
    (id-keyed dedup); placement maps rewind from the batch-level touched
    log. :meth:`AlignedReservationScheduler._batch_restore` replays the
    journal backwards and reinstates the snapshots on abort.

    When an :class:`~repro.reservation.journal.UndoArena` is supplied
    the log borrows the arena's containers instead of allocating fresh
    ones — worker-resident schedulers open one atomic context per burst,
    so the same storage serves every burst of a worker's lifetime.
    Ephemeral (discard-on-abort) schedulers and the closure-journal
    oracle keep cheap private containers.
    """

    __slots__ = ("seen", "journal", "journal_ivs", "windows", "dicts",
                 "created", "track", "arena")

    def __init__(self, arena: UndoArena | None = None, *,
                 track: bool = True) -> None:
        #: False for ephemeral (discard-on-abort) schedulers: the
        #: journal stays off and nothing is recorded either
        self.track = track
        self.arena = arena if track else None
        if self.arena is not None:
            self.seen = arena.seen
            self.journal = arena.entries
            self.journal_ivs = arena.intervals
            self.windows = arena.windows
            self.dicts = arena.dicts
            self.created = arena.created
            return
        self.seen: set[int] = set()
        #: batch-wide undo journal shared by every touched interval
        self.journal: list = []
        #: intervals whose undo_log points at the batch journal
        self.journal_ivs: list[Interval] = []
        #: (window_state, jobs copy, backed_empty snap, backed_covered snap)
        self.windows: list = []
        #: (dict, shallow copy) — window-state tables
        self.dicts: list = []
        #: (interval table, index) for intervals materialized mid-batch
        self.created: list = []


class AlignedReservationScheduler(ReallocatingScheduler):
    """Reallocating scheduler for aligned unit jobs on one machine.

    Parameters
    ----------
    policy:
        Level decomposition (defaults to the paper's tower).
    tracer:
        Optional :class:`EventTracer` receiving fine-grained events.
    journal:
        Undo-journal representation: ``"arena"`` (default — tuple
        opcodes on a reusable :class:`UndoArena`), ``"closure"`` (the
        original closure-per-entry journal with fresh per-request
        containers, kept as the rollback-equivalence oracle), or
        ``"arena-sanitize"`` (arena plus checking container proxies
        that raise on unjournaled mutation inside an open scope — the
        runtime oracle for the static exception-flow rules; also
        selected by ``REPRO_SANITIZE=1`` in the environment).
    """

    _sparse_costing = True

    #: False suspends the per-request undo journal (failed-request
    #: rollback). Only safe when a failure may corrupt this instance —
    #: i.e. when the owner discards it wholesale on failure, as a
    #: trimming rebuild's fresh inner is: a failed rebuild poisons the
    #: scheduler regardless, so per-survivor journal work is pure waste.
    _journal_enabled = True

    #: True (default) skips placement-map journaling whenever the live
    #: touched log alone can rewind the three maps (the journal diet);
    #: False records the full per-mutation entries — the equivalence
    #: oracle for the diet's property tests.
    _placement_diet = True

    def __init__(self, policy: LevelPolicy = PAPER_POLICY, *,
                 tracer: EventTracer | NullTracer | None = None,
                 journal: str = "arena") -> None:
        super().__init__(num_machines=1)
        if journal == "arena" and sanitize_enabled():
            journal = "arena-sanitize"
        if journal not in ("arena", "closure", "arena-sanitize"):
            raise ValueError(
                "journal must be 'arena', 'closure', or "
                f"'arena-sanitize', got {journal!r}")
        self.policy = policy
        self.tracer = tracer if tracer is not None else NullTracer()
        self._closure_journal = journal == "closure"
        #: sanitizer-oracle mode: journaled containers are wrapped in
        #: checking proxies that raise on unjournaled mutation inside
        #: an open request/batch scope (see repro.analysis.sanitize)
        self._sanitize = journal == "arena-sanitize"
        #: reusable journal storage (per-request and per-atomic-batch);
        #: process-local scratch, rebuilt fresh after unpickling
        self._arena = UndoArena()
        #: oracle-mode share of the journal-entry diagnostic counter
        #: (arena mode counts in ``self._arena.entries_total``)
        self._journal_entries_closure = 0
        #: slot -> job id (single machine, so slots are global)
        self.slot_job: dict[int, JobId] = {}
        #: job id -> slot
        self.job_slot: dict[JobId, int] = {}
        self._placements: dict[JobId, Placement] = {}
        #: level -> interval index -> Interval (materialized lazily)
        self.intervals: dict[int, dict[int, Interval]] = {
            lv: {} for lv in range(1, policy.num_reservation_levels + 1)
        }
        #: level -> window -> WindowState (only windows with x >= 1)
        self.window_states: dict[int, dict[Window, WindowState]] = {
            lv: {} for lv in range(1, policy.num_reservation_levels + 1)
        }
        self._job_levels: dict[JobId, int] = {}
        self._poisoned = False
        #: undo journal for the in-flight request (failed-request rollback)
        self._journal: list | None = None
        self._jseen: set | None = None
        self._jtouched: list[Interval] | None = None
        #: snapshot log while an *atomic* batch is open (replaces the
        #: per-request journal for the duration of the batch)
        self._abatch: _AtomicBatchLog | None = None
        # Sanitizer proxies must replace the containers BEFORE the
        # hooks/probes below are built: those closures capture the
        # container objects by reference, and a later rebind would
        # split reads (stale plain dicts) from writes (the proxies).
        if self._sanitize:
            install_sanitizer(self)
        #: level -> bit shift mapping a slot to its interval index
        #: (interval spans are powers of two); index 0 is unused padding
        self._iv_shift = [0] + [
            policy.interval_span(lv).bit_length() - 1
            for lv in range(1, policy.num_reservation_levels + 1)
        ]
        #: level -> cached occupancy probe for Interval.rebalance; built
        #: once here so the rebalance path allocates no closures per call
        self._level_probes = {
            lv: self._make_level_probe(lv)
            for lv in range(1, policy.num_reservation_levels + 1)
        }

    # ------------------------------------------------------------------
    # serialization (worker-resident schedulers cross a process boundary)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Picklable snapshot, valid only between requests/batches.

        The process-resident shard workers
        (:mod:`repro.multimachine.procworkers`) ship scheduler state
        across a process boundary exactly twice per worker lifetime —
        seed and crash re-seed — so the only state excluded is the
        per-level probe closures (rebuilt on restore) and the in-flight
        request/batch journals, which are None at every burst boundary.
        """
        if (self._batch is not None or self._abatch is not None
                or self._journal is not None):
            raise InvalidRequestError(
                "cannot serialize a scheduler with an open request or "
                "batch context"
            )
        state = self.__dict__.copy()
        del state["_level_probes"]
        # the arena is process-local scratch (empty at every legal
        # serialization point); the restored scheduler gets a fresh one
        del state["_arena"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._arena = UndoArena()
        levels = range(1, self.policy.num_reservation_levels + 1)
        self._level_probes = {lv: self._make_level_probe(lv) for lv in levels}
        for table in self.intervals.values():
            for iv in table.values():
                iv.on_assign = self._on_assign
                iv.on_release = self._on_release

    # ------------------------------------------------------------------
    # ReallocatingScheduler interface
    # ------------------------------------------------------------------
    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self._placements

    def _apply_insert(self, job: Job) -> None:
        self._check_usable()
        if job.size != 1:
            raise InvalidRequestError("reservation scheduler handles unit jobs only")
        if not job.window.is_aligned:
            raise InvalidRequestError(
                f"window {job.window} is not aligned; use the alignment wrapper"
            )
        level = self.policy.level_of_span(job.span)
        journaled = self._abatch is None and self._journal_enabled
        if journaled:
            self._journal_acquire()
        try:
            self._jdict(self._job_levels, job.id)
            self._job_levels[job.id] = level
            if level == 0:
                self._insert_base(job.id, job.window)
            else:
                self._insert_reserved(job.id, job.window, level)
        except (UnderallocationError, InfeasibleError):
            if journaled:
                self._rollback()
            self._poisoned = True
            raise
        finally:
            if journaled:
                self._journal_release()

    def _apply_delete(self, job: Job) -> None:
        self._check_usable()
        journaled = self._abatch is None and self._journal_enabled
        if journaled:
            self._journal_acquire()
        try:
            level = self._job_levels[job.id]
            self._jdict(self._job_levels, job.id)
            del self._job_levels[job.id]
            slot = self.job_slot[job.id]
            self._clear_placement(job.id, slot)
            self.tracer.emit("delete", job.id, level, f"slot {slot}")
            self._reclassify_backed(slot)
            # The vacated slot rejoins the allowance of every higher level.
            self._notify_raised(slot, level)
            if level >= 1:
                self._retract_reservations(job.id, job.window, level)
        except UnderallocationError:
            if journaled:
                self._rollback()
            self._poisoned = True
            raise
        finally:
            if journaled:
                self._journal_release()

    # ------------------------------------------------------------------
    # undo journal (failed-request rollback)
    # ------------------------------------------------------------------
    def _journal_acquire(self) -> None:
        """Open the per-request journal scope.

        Arena mode borrows the scheduler's reusable containers (no
        allocations); the closure oracle allocates the original fresh
        ``[], set(), []`` triple per request.
        """
        if self._closure_journal:
            self._journal, self._jseen, self._jtouched = [], set(), []
        else:
            arena = self._arena
            self._journal = arena.entries
            self._jseen = arena.seen
            self._jtouched = arena.intervals

    def _journal_release(self) -> None:
        """Close the per-request journal scope (detach + truncate)."""
        for iv in self._jtouched:
            iv.undo_log = None
        if self._closure_journal:
            self._journal_entries_closure += len(self._journal)
        else:
            self._arena.truncate()
        self._journal = self._jseen = self._jtouched = None

    def _rollback(self) -> None:
        """Replay the undo journal in reverse, restoring pre-request state.

        When the request ran under a live touched log and the placement
        diet is on, the journal holds no placement-map entries: the
        three maps rewind from the touched log instead, exactly as the
        atomic-batch abort does (``_batch_restore``).
        """
        replay_entries(self._journal)
        touched = self._touched
        if touched is not None and self._placement_diet:
            # Same orphan-safety argument as _batch_restore: any slot
            # now held by a job it did not hold pre-request belongs to
            # a touched job, so clearing touched jobs first cannot
            # orphan an untouched occupant.
            placements = self._placements
            job_slot = self.job_slot
            slot_job = self.slot_job
            for job_id in touched:
                pl = placements.pop(job_id, None)
                if pl is not None:
                    del slot_job[pl.slot]
                    del job_slot[job_id]
            for job_id, old in touched.items():
                if old is not None:
                    placements[job_id] = old
                    job_slot[job_id] = old.slot
                    slot_job[old.slot] = job_id

    @property
    def journal_entries_total(self) -> int:
        """Undo-journal entries recorded over this scheduler's lifetime.

        Diagnostic counter for the allocation-diet accounting (bench
        E11b): each entry is one tuple in arena mode versus one closure
        (function object + closure tuple + cells) in oracle mode.
        Process-local (resets when a scheduler crosses a pickle
        boundary).
        """
        return self._arena.entries_total + self._journal_entries_closure

    @property
    def journal_impl(self) -> str:
        """The journal representation in use: ``"arena"``,
        ``"closure"``, or ``"arena-sanitize"`` (checking proxies)."""
        if self._closure_journal:
            return "closure"
        return "arena-sanitize" if self._sanitize else "arena"

    def _jdict(self, d: dict, key: Hashable) -> None:
        """Journal the pre-state of ``d[key]`` (first touch per request)."""
        journal = self._journal
        if journal is None:
            return
        token = (id(d), key)
        seen = self._jseen
        if token in seen:
            return
        seen.add(token)
        old = d.get(key, _MISSING)
        if self._closure_journal:
            journal.append(_closure_pop(d, key) if old is _MISSING
                           else _closure_set(d, key, old))
        elif old is _MISSING:
            journal.append((OP_POP, d, key))
        else:
            journal.append((OP_SET, d, key, old))

    def _jtouch(self, iv: Interval) -> None:
        """Guard an interval's state (first touch per request or batch).

        Per-request mode attaches the undo journal: the interval appends
        the exact inverse of each mutation, and ``_apply_insert`` /
        ``_apply_delete`` detach it when the request finishes. Inside an
        atomic batch the interval's whole state is captured once instead
        — no per-mutation closures.
        """
        if self._journal is not None:
            if iv.undo_log is None:
                iv.undo_log = self._journal
                self._jtouched.append(iv)
            return
        ab = self._abatch
        if ab is not None and ab.track and iv.undo_log is None:
            iv.undo_log = ab.journal
            ab.journal_ivs.append(iv)

    def _jwindow_state(self, ws: WindowState) -> None:
        """Snapshot a window state's jobs set and backed indexes.

        First touch per request (undo journal) or per atomic batch
        (batch snapshot log).
        """
        journal = self._journal
        if journal is not None:
            token = id(ws)
            seen = self._jseen
            if token in seen:
                return
            seen.add(token)
            if self._closure_journal:
                journal.append(_closure_window_state(ws))
            else:
                journal.append((OP_WINDOW_STATE, ws, set(ws.jobs),
                                ws.backed_empty.snapshot(),
                                ws.backed_covered.snapshot()))
            return
        ab = self._abatch
        if ab is not None and ab.track and id(ws) not in ab.seen:
            ab.seen.add(id(ws))
            ab.windows.append((ws, set(ws.jobs), ws.backed_empty.snapshot(),
                               ws.backed_covered.snapshot()))

    def _jws_slot(self, iv: Interval, pos: int) -> None:
        """Journal one interval ``_ws`` ladder-cache entry before rebinding.

        The cache is a list, so a plain ``OP_SET`` entry restores it
        (``replay_entries`` subscripts the container either way). No
        first-touch dedup: entries compose exactly under reverse replay,
        and a window state is created/destroyed at most once per scope
        per ladder position in practice.
        """
        journal = self._journal
        if journal is not None:
            journal.append(_closure_set(iv._ws, pos, iv._ws[pos])
                           if self._closure_journal
                           else (OP_SET, iv._ws, pos, iv._ws[pos]))
            return
        ab = self._abatch
        if ab is not None and ab.track:
            ab.journal.append(_closure_set(iv._ws, pos, iv._ws[pos])
                              if self._closure_journal
                              else (OP_SET, iv._ws, pos, iv._ws[pos]))

    def _jstates_dict(self, states: dict) -> None:
        """Capture a window-state table before structural change (atomic).

        Per-request mode covers table membership via :meth:`_jdict`;
        atomic batches shallow-copy the table once on first touch (the
        member window states are captured separately on their own first
        touch).
        """
        ab = self._abatch
        if ab is not None and ab.track and id(states) not in ab.seen:
            ab.seen.add(id(states))
            ab.dicts.append((states, dict(states)))

    # ------------------------------------------------------------------
    # batch lifecycle (atomic snapshots replace the per-request journal)
    # ------------------------------------------------------------------
    def supports_atomic_batches(self) -> bool:
        return True

    def _flexible_insert_order_key(self) -> "Callable[[Job], object] | None":
        return flexible_span_order

    def _batch_begin(self, *, atomic: bool, top: bool,
                     ephemeral: bool = False,
                     emit_touched: bool = True) -> None:
        super()._batch_begin(atomic=atomic, top=top, ephemeral=ephemeral,
                             emit_touched=emit_touched)
        if atomic:
            self._batch.saved["poisoned"] = self._poisoned
            self._abatch = _AtomicBatchLog(
                None if self._closure_journal else self._arena,
                track=not ephemeral)

    def _release_batch_log(self, ab: _AtomicBatchLog) -> None:
        """Detach the batch journal and release its arena scope."""
        for iv in ab.journal_ivs:
            iv.undo_log = None
        if ab.arena is not None:
            ab.arena.truncate()
        else:
            self._journal_entries_closure += len(ab.journal)

    def _batch_commit(self) -> None:
        super()._batch_commit()
        ab, self._abatch = self._abatch, None
        if ab is not None:
            self._release_batch_log(ab)

    def _batch_restore(self, ctx: _BatchContext) -> None:
        ab, self._abatch = self._abatch, None
        # Replay the batch-wide interval journal backwards, then drop
        # the intervals materialized mid-batch (their own undo entries
        # restore dead objects, which is harmless).
        replay_entries(ab.journal)
        for table, index in ab.created:
            table.pop(index, None)
        for ws, jobs, empty, covered in ab.windows:
            ws.jobs = jobs
            ws.backed_empty.restore(empty)
            ws.backed_covered.restore(covered)
        for d, snap in ab.dicts:
            d.clear()
            d.update(snap)
        self._release_batch_log(ab)
        # Placement maps rewind from the batch-level touched log. Any
        # slot now held by a job it did not hold pre-batch belongs to a
        # touched job, so clearing touched jobs first cannot orphan an
        # untouched occupant.
        touched = ctx.touched
        placements = self._placements
        job_slot = self.job_slot
        slot_job = self.slot_job
        for job_id in touched:
            pl = placements.pop(job_id, None)
            if pl is not None:
                del slot_job[pl.slot]
                del job_slot[job_id]
        for job_id, old in touched.items():
            if old is not None:
                placements[job_id] = old
                job_slot[job_id] = old.slot
                slot_job[old.slot] = job_id
        # Job levels are a pure function of the span: rebuild them from
        # the restored job set. Wholesale (O(n), abort-only) rather than
        # incrementally, because a request that failed deep inside
        # _apply_insert/_apply_delete mutated the map without being
        # recorded in the batch's churn.
        # In place (not rebound): the cached level probes close over
        # this dict by reference.
        level_of = self.policy.level_of_span
        levels_map = self._job_levels
        levels_map.clear()
        for job_id, job in self.jobs.items():
            levels_map[job_id] = level_of(job.span)
        self._poisoned = ctx.saved["poisoned"]

    # ------------------------------------------------------------------
    # placement mutation (journal + sparse-cost log in one place)
    # ------------------------------------------------------------------
    def _set_placement(self, job_id: JobId, slot: int) -> None:
        self._log_touch(job_id)
        journal = self._journal
        if journal is not None and (self._touched is None
                                    or not self._placement_diet):
            # One combined entry for the three-map mutation. When a
            # live touched log exists (and the diet is on) even this is
            # skipped: _rollback rewinds the maps from the touched log,
            # as _batch_restore does for atomic batches. The dedup
            # tokens keep the sanitizer's first-touch accounting exact.
            seen = self._jseen
            seen.add((id(self._placements), job_id))
            seen.add((id(self.job_slot), job_id))
            seen.add((id(self.slot_job), slot))
            journal.append(_closure_place(self, job_id, slot)
                           if self._closure_journal
                           else (OP_PLACE, self, job_id, slot))
        self.slot_job[slot] = job_id
        self.job_slot[job_id] = slot
        self._placements[job_id] = Placement(0, slot)

    def _clear_placement(self, job_id: JobId, slot: int) -> None:
        self._log_touch(job_id)
        journal = self._journal
        if journal is not None and (self._touched is None
                                    or not self._placement_diet):
            seen = self._jseen
            seen.add((id(self._placements), job_id))
            seen.add((id(self.job_slot), job_id))
            seen.add((id(self.slot_job), slot))
            journal.append(_closure_unplace(self, job_id, slot)
                           if self._closure_journal
                           else (OP_UNPLACE, self, job_id, slot))
        del self.slot_job[slot]
        del self.job_slot[job_id]
        del self._placements[job_id]

    def _undo_place(self, job_id: JobId, slot: int) -> None:
        """Journal inverse of :meth:`_set_placement`.

        Exact (not just idempotent): every ``_set_placement`` call site
        clears any previous occupant of ``slot`` and any previous slot
        of ``job_id`` first, so at record time none of the three keys
        was present.
        """
        del self._placements[job_id]
        del self.job_slot[job_id]
        del self.slot_job[slot]

    def _undo_unplace(self, job_id: JobId, slot: int) -> None:
        """Journal inverse of :meth:`_clear_placement`.

        ``Placement(0, slot)`` reconstructs the cleared value exactly:
        the single-machine scheduler only ever records machine 0.
        """
        self.slot_job[slot] = job_id
        self.job_slot[job_id] = slot
        self._placements[job_id] = Placement(0, slot)

    # ------------------------------------------------------------------
    # backed-slot indexes (PLACE/MOVE fast path)
    # ------------------------------------------------------------------
    def _on_assign(self, ws: WindowState, slot: int) -> None:
        """Interval callback: ``slot`` newly backs a reservation of ``ws``.

        Intervals resolve the window state themselves through their
        ``_ws`` ladder cache (and skip the call while it is None, i.e.
        before the state is published), so the hook is one bound method
        shared by every interval — no per-level closures, no window
        hashing on the hot path.
        """
        # inlined dedup fast path: _jwindow_state is a no-op once the
        # state is snapshotted this request (the common case)
        if self._journal is None or id(ws) not in self._jseen:
            self._jwindow_state(ws)
        occ = self.slot_job.get(slot)
        if occ is None:
            ws.backed_empty.add(slot)
        elif self._job_levels[occ] != ws.level:
            ws.backed_covered.add(slot)
        # own-level occupant: slot backs its own job, in neither index

    def _on_release(self, ws: WindowState, slot: int) -> None:
        """Interval callback: ``slot`` no longer backs ``ws``."""
        if self._journal is None or id(ws) not in self._jseen:
            self._jwindow_state(ws)
        ws.backed_empty.discard(slot)
        ws.backed_covered.discard(slot)

    def _reclassify_backed(self, slot: int) -> None:
        """Refresh ``slot``'s backed-index membership at every level.

        Called after any physical occupancy change; recomputes the
        empty / covered-by-higher / own-occupied classification from the
        live maps (idempotent, O(number of levels)).
        """
        occ = self.slot_job.get(slot)
        occ_level = self._job_levels[occ] if occ is not None else None
        shifts = self._iv_shift
        intervals = self.intervals
        journal = self._journal
        jseen = self._jseen
        for lv in range(1, self.policy.num_reservation_levels + 1):
            iv = intervals[lv].get(slot >> shifts[lv])
            if iv is None:
                continue
            pos = iv._owner[slot - iv.lo]
            if pos < 0:
                continue
            ws = iv._ws[pos]
            if ws is None:
                continue
            if journal is None or id(ws) not in jseen:
                self._jwindow_state(ws)
            ws.backed_empty.discard(slot)
            ws.backed_covered.discard(slot)
            if occ is None:
                ws.backed_empty.add(slot)
            elif occ_level != lv:
                ws.backed_covered.add(slot)

    def _make_window_state(self, window: Window, level: int) -> WindowState:
        """Create (and journal) the window state, seeding its indexes.

        Materializes every interval of the window first (establishing
        their baseline fulfillments, as the seed's PLACE scan did
        implicitly), then seeds the backed indexes from the live
        assignments. The window state is published only afterwards, so
        the materialization rebalances cannot double-count through the
        assignment hooks.
        """
        states = self.window_states[level]
        self._jdict(states, window)
        self._jstates_dict(states)
        ws = WindowState(window, level,
                         self.policy.intervals_of_window(level, window))
        levels = self._job_levels
        slot_job = self.slot_job
        backed_empty_add = ws.backed_empty.add
        backed_covered_add = ws.backed_covered.add
        member_ivs = []
        pos = -1
        for idx in ws.interval_ids:
            iv = self._interval(level, idx)
            member_ivs.append(iv)
            if pos < 0:
                pos = iv._pos(window)
            for s in sorted(iv._aslots[pos]):
                occ = slot_job.get(s)
                if occ is None:
                    backed_empty_add(s)
                elif levels[occ] != level:
                    backed_covered_add(s)
        ws.ladder_pos = pos
        # Publish the ladder-cache references only after seeding: the
        # materialization rebalances above ran with _ws[pos] still None,
        # so their assignment hooks could not double-count.
        for iv in member_ivs:
            self._jws_slot(iv, pos)
            iv._ws[pos] = ws
        states[window] = ws
        return ws

    # ------------------------------------------------------------------
    # level >= 1: reservations
    # ------------------------------------------------------------------
    def _insert_reserved(self, job_id: JobId, window: Window, level: int) -> None:
        ws = self.window_states[level].get(window)
        if ws is None:
            ws = self._make_window_state(window, level)
        x_old = ws.x
        self._jwindow_state(ws)
        ws.jobs.add(job_id)
        # Invariant 5: two new dynamic reservations, round-robin targets.
        base_index = ws.interval_ids.start
        emit = self.tracer.emit
        for pos, delta in rr_diff(x_old, ws.x, ws.n_intervals).items():
            iv = self._interval(level, base_index + pos)
            if iv.undo_log is None:  # inlined _jtouch first-touch guard
                self._jtouch(iv)
            iv.add_dynamic(window, delta)
            emit("reserve", job_id, level, f"interval {iv.index} {delta:+d}")
            self._rebalance(iv)
        self._place(job_id, window, level)

    def _retract_reservations(self, job_id: JobId, window: Window, level: int) -> None:
        states = self.window_states[level]
        ws = states[window]
        x_old = ws.x
        self._jwindow_state(ws)
        ws.jobs.discard(job_id)
        base_index = ws.interval_ids.start
        for pos, delta in rr_diff(x_old, ws.x, ws.n_intervals).items():
            iv = self._interval(level, base_index + pos)
            if iv.undo_log is None:  # inlined _jtouch first-touch guard
                self._jtouch(iv)
            iv.add_dynamic(window, delta)
            self._rebalance(iv)
        if ws.x == 0:
            self._jdict(states, window)
            self._jstates_dict(states)
            del states[window]
            # Drop the ladder-cache references (journaled per entry:
            # _ws lists restore through plain OP_SET replay on abort)
            table = self.intervals[level]
            pos = ws.ladder_pos
            for idx in ws.interval_ids:
                iv = table.get(idx)
                if iv is not None:
                    self._jws_slot(iv, pos)
                    iv._ws[pos] = None

    def _place(self, job_id: JobId, window: Window, level: int) -> None:
        """Figure 1, PLACE: put the job on a fulfilled slot of its window."""
        slot = self._find_fulfilled_free_slot(window, level)
        if slot is None:
            raise UnderallocationError(
                f"no fulfilled reservation of {window} has a level-{level}-job-free "
                "slot; the instance violates the Lemma 8 underallocation assumption",
                level=level, window=window,
            )
        self.tracer.emit("place", job_id, level, f"slot {slot}")
        self._occupy(job_id, level, slot)

    def _find_fulfilled_free_slot(
        self, window: Window, level: int, *, exclude: int | None = None,
    ) -> int | None:
        """A slot assigned to ``window`` holding no level-``level`` job.

        Prefers truly empty slots, falling back to the lowest-numbered
        slot under a higher-level job — served in O(1) from the window
        state's backed-slot indexes (``_scan_fulfilled_free_slot`` is the
        equivalent index-free scan, kept as the validation oracle).
        """
        ws = self.window_states[level].get(window)
        if ws is None:  # pragma: no cover - PLACE/MOVE targets always have one
            return self._scan_fulfilled_free_slot(window, level, exclude=exclude)
        slot = ws.backed_empty.first(exclude)
        if slot is not None:
            return slot
        return ws.backed_covered.first(exclude)

    def _scan_fulfilled_free_slot(
        self, window: Window, level: int, *, exclude: int | None = None,
    ) -> int | None:
        """Index-free reference implementation of the PLACE slot choice."""
        fallback: int | None = None
        slot_job = self.slot_job
        levels = self._job_levels
        for idx in self.policy.intervals_of_window(level, window):
            iv = self.intervals[level].get(idx)
            if iv is None:
                continue
            for s in sorted(iv.assigned.get(window, ())):
                if s == exclude:
                    continue
                occ = slot_job.get(s)
                if occ is None:
                    return s
                if levels[occ] == level:
                    continue
                if fallback is None:
                    fallback = s
        return fallback

    def _move(self, job_id: JobId, level: int) -> None:
        """Figure 1, MOVE: relocate a job whose backing slot was revoked.

        Swaps the old and new slots' bookkeeping in every ancestor
        interval (net allowance change zero), physically relocating at
        most one higher-level job.
        """
        window = self.jobs[job_id].window
        old = self.job_slot[job_id]
        new = self._find_fulfilled_free_slot(window, level, exclude=old)
        if new is None:
            raise UnderallocationError(
                f"MOVE found no alternative fulfilled slot for {window}; "
                "instance violates the Lemma 8 underallocation assumption",
                level=level, window=window,
            )
        self.tracer.emit("move", job_id, level, f"{old} -> {new}")
        displaced = self.slot_job.get(new)
        # Physical relocation: job -> new; displaced higher job (if any) -> old.
        self._clear_placement(job_id, old)
        if displaced is not None:
            self._clear_placement(displaced, new)
        self._set_placement(job_id, new)
        if displaced is not None:
            self._set_placement(displaced, old)
            self.tracer.emit("displace-swap", displaced, self._job_levels[displaced],
                             f"{new} -> {old}")
        # Ancestor bookkeeping swap (Figure 1, lines 12-13).
        shifts = self._iv_shift
        for lv in self.policy.levels_above(level):
            idx_old = old >> shifts[lv]
            if idx_old != new >> shifts[lv]:  # pragma: no cover - defensive
                raise AssertionError(
                    "MOVE endpoints must share every ancestor interval"
                )
            iv = self.intervals[lv].get(idx_old)
            if iv is not None:
                self._jtouch(iv)
                iv.swap_slots(old, new)
        self._reclassify_backed(old)
        self._reclassify_backed(new)

    def _occupy(self, job_id: JobId, level: int, slot: int) -> None:
        """Physically place a job, displacing at most one higher-level job.

        Handles the allowance-shrink cascade of Figure 1 lines 17-21 and
        recursively re-places the displaced job (line 22-23).
        """
        displaced = self.slot_job.get(slot)
        displaced_level: int | None = None
        if displaced is not None:
            displaced_level = self._job_levels[displaced]
            if displaced_level <= level:  # pragma: no cover - defensive
                raise AssertionError(
                    "pecking order violated: displacing a non-higher-level job"
                )
            self._clear_placement(displaced, slot)
            self.tracer.emit("displace", displaced, displaced_level, f"slot {slot}")
        self._set_placement(job_id, slot)
        self._reclassify_backed(slot)
        # The slot leaves the allowance of levels (level, top].
        top = (displaced_level if displaced_level is not None
               else self.policy.num_reservation_levels)
        shifts = self._iv_shift
        for lv in range(level + 1, top + 1):
            iv = self.intervals[lv].get(slot >> shifts[lv])
            if iv is not None:
                if not iv._lower[slot - iv.lo]:
                    self._jtouch(iv)
                    iv.slot_lowered(slot)
                self._rebalance(iv)
        if displaced is not None:
            self._place(displaced, self.jobs[displaced].window, displaced_level)

    def _notify_raised(self, slot: int, level: int) -> None:
        """A level-``level`` job vacated ``slot``: higher allowances grow."""
        shifts = self._iv_shift
        for lv in range(level + 1, self.policy.num_reservation_levels + 1):
            iv = self.intervals[lv].get(slot >> shifts[lv])
            if iv is not None:
                if iv._lower[slot - iv.lo]:
                    self._jtouch(iv)
                    iv.slot_raised(slot)
                self._rebalance(iv)

    def _rebalance(self, iv: Interval) -> None:
        """Reconcile an interval's assignment and MOVE any revoked jobs."""
        if not iv._stale:
            return  # nothing changed since the last reconciliation
        if iv.undo_log is None:  # inlined _jtouch first-touch guard
            self._jtouch(iv)
        revoked = iv.rebalance(self._level_probes[iv.level], self._empty_at)
        for job_id in revoked:
            self._move(job_id, iv.level)

    # ------------------------------------------------------------------
    # level 0: naive pecking-order base case (Lemma 4 at constant size)
    # ------------------------------------------------------------------
    def _insert_base(self, job_id: JobId, window: Window) -> None:
        current_id, current_window = job_id, window
        emit = self.tracer.emit
        for _guard in range(2 * self.policy.base_threshold.bit_length() + 4):
            slot = self._find_base_slot(current_window)
            if slot is not None:
                emit("base-place", current_id, 0, f"slot {slot}")
                self._occupy(current_id, 0, slot)
                return
            victim = self._find_base_victim(current_window)
            if victim is None:
                raise InfeasibleError(
                    f"window {current_window} already holds {current_window.span} "
                    "jobs with nested windows; instance is infeasible"
                )
            # Take the victim's slot: both are level-0 jobs, so no
            # higher-level allowance changes (the slot stays lowered) and
            # no backed index changes (level-0 occupant before and after).
            vslot = self.job_slot[victim]
            self._clear_placement(victim, vslot)
            self._set_placement(current_id, vslot)
            emit("base-cascade", victim, 0, f"evicted from {vslot}")
            current_id, current_window = victim, self.jobs[victim].window
        raise AssertionError(  # pragma: no cover - cascade strictly grows spans
            "base-level cascade exceeded the span-doubling bound"
        )

    def _find_base_slot(self, window: Window) -> int | None:
        """A slot in the window free of level-0 jobs; empty preferred.

        The scan is over at most ``L_1 = base_threshold`` slots — the
        constant-cost base case of Lemma 4 — with an early exit on the
        first truly empty slot.
        """
        fallback: int | None = None
        slot_job = self.slot_job
        levels = self._job_levels
        for s in window.slots():
            occ = slot_job.get(s)
            if occ is None:
                return s
            if levels[occ] == 0:
                continue
            if fallback is None:
                fallback = s
        return fallback

    def _find_base_victim(self, window: Window) -> JobId | None:
        """The level-0 job in the window with the smallest span > |window|.

        Aligned spans strictly above ``|window|`` are at least
        ``2 * |window|`` — the paper's "span >= 2**(i+1)" condition.
        """
        best: JobId | None = None
        best_key: tuple[int, int] | None = None
        slot_job = self.slot_job
        levels = self._job_levels
        jobs = self.jobs
        for s in window.slots():
            occ = slot_job.get(s)
            if occ is None or levels[occ] != 0:
                continue
            span = jobs[occ].span
            if span <= window.span:
                continue
            key = (span, s)
            if best_key is None or key < best_key:
                best, best_key = occ, key
        return best

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _interval(self, level: int, index: int) -> Interval:
        """Materialize (or fetch) a level-``level`` interval."""
        table = self.intervals[level]
        iv = table.get(index)
        if iv is not None:
            return iv
        span = self.policy.interval_span(level)
        iv = Interval(
            level=level, index=index,
            lo=index * span, hi=(index + 1) * span,
            enclosing_spans=tuple(self.policy.enclosing_spans(level)),
            on_assign=self._on_assign,
            on_release=self._on_release,
            closure_undo=self._closure_journal,
        )
        slot_job = self.slot_job
        levels = self._job_levels
        lowered = [s for s in iv.slots()
                   if (occ := slot_job.get(s)) is not None
                   and levels[occ] < level]
        if lowered:
            iv.seed_lower(lowered)
        # Seed the ladder cache from the already-published window states
        # (fresh intervals start with every _ws entry None).
        states = self.window_states[level]
        if states:
            ws_list = iv._ws
            for pos, w in enumerate(iv._windows):
                ws_list[pos] = states.get(w)
        journal = self._journal
        if journal is not None:
            journal.append(_closure_pop(table, index)
                           if self._closure_journal
                           else (OP_POP, table, index))
        elif self._abatch is not None and self._abatch.track:
            self._abatch.created.append((table, index))
        table[index] = iv
        # Establish baseline fulfillments; a fresh interval has no
        # assignments, so nothing can be revoked.
        revoked = iv.rebalance(self._level_job_at(level), self._empty_at)
        if revoked:  # pragma: no cover - impossible on a fresh interval
            raise AssertionError("fresh interval revoked jobs")
        return iv

    def _make_level_probe(self, level: int) -> Callable[[int], JobId | None]:
        """Occupancy probe handed to :meth:`Interval.rebalance`.

        Built once per level (``_level_probes``) so the rebalance hot
        path performs a dict lookup instead of allocating a closure per
        call. Closes over the live maps by reference, which is why
        ``_job_levels`` must only ever be mutated in place — see
        ``_batch_restore``.
        """
        slot_job = self.slot_job
        levels = self._job_levels

        def probe(slot: int) -> JobId | None:
            occ = slot_job.get(slot)
            if occ is not None and levels[occ] == level:
                return occ
            return None
        return probe

    def _level_job_at(self, level: int) -> Callable[[int], JobId | None]:
        return self._level_probes[level]

    def _empty_at(self, slot: int) -> bool:
        return slot not in self.slot_job

    def _check_usable(self) -> None:
        if self._poisoned:
            raise UnderallocationError(
                "scheduler previously hit an underallocation failure and its "
                "internal state is no longer trustworthy; build a fresh one"
            )

    @property
    def poisoned(self) -> bool:
        return self._poisoned

    def level_of(self, job_id: JobId) -> int:
        """Level at which an active job is managed."""
        return self._job_levels[job_id]

    def active_levels(self) -> dict[int, int]:
        """Job count per level (diagnostics / reports)."""
        counts: dict[int, int] = {}
        for lv in self._job_levels.values():
            counts[lv] = counts.get(lv, 0) + 1
        return dict(sorted(counts.items()))
