"""Tuple-opcode undo journals on a reusable arena (the allocation diet).

Every failed-request and atomic-batch rollback in the reservation stack
replays an *undo journal*: a sequence of entries, each restoring one
mutation, replayed in reverse. The original implementation recorded a
closure per mutation (``lambda: self._undo_assign(window, pos, slot)``).
Closures are semantically perfect and allocation-expensive: each one
costs a function object plus a closure tuple, and — worse — CPython
creates the captured variables' cells at *every* call of the enclosing
method, so the closure representation taxed the mutation hot path even
when no journal was attached. Inside atomic batches the journal lives
for the whole burst, so those objects survived a GC generation and got
promoted (bench E11's ~10-20% bookkeeping share).

This module is the replacement:

- **Tuple opcodes** — a journal entry is a plain tuple
  ``(opcode, target, *args)``; one allocation, no cells, immutable.
  :func:`replay_entries` is the single dispatch loop that replays any
  journal backwards. It also accepts callables, so the closure-journal
  oracle (kept for the equivalence property tests — see
  ``AlignedReservationScheduler(journal="closure")``) replays through
  the same loop.
- **Arena** — :class:`UndoArena` owns the journal's container objects
  (entry list, first-touch dedup set, attached-interval list, and the
  atomic batch log's snapshot lists) once per scheduler instead of
  allocating fresh ones per request/batch. A scope appends entries,
  optionally replays them backwards on failure, and releases its
  storage with :meth:`UndoArena.truncate` — so the same storage is
  reused request after request and, in worker-resident schedulers,
  burst after burst. In the current stack every scope spans the whole
  arena (the per-request journal and the atomic batch log never
  coexist on one scheduler), so production code always truncates to
  zero; the watermark form (:meth:`UndoArena.mark` /
  ``truncate(mark)`` / ``rollback(mark)``) generalizes to nested
  scopes should one layer ever journal inside another. Arenas are
  process-local scratch: pickling a scheduler drops its arena and a
  fresh one is rebuilt on restore (journals are empty at every
  serialization point anyway).

Opcode reference (entry layouts)
--------------------------------
========================  ==================================================
``(OP_ASSIGN, iv, pos, slot)``        undo an interval slot assignment
``(OP_RELEASE, iv, pos, slot)``       undo an interval slot release
``(OP_DYNAMIC, iv, pos, delta)``      undo a dynamic-reservation delta
``(OP_LOWERED, iv, slot, opos)``      undo an allowance shrink (opos = owner
                                      ladder position, -1 for unowned)
``(OP_RAISED, iv, slot)``             undo an allowance growth
``(OP_SWAP, iv, s1, s2)``             undo a slot-role swap (involution)
``(OP_POP, mapping, key)``            remove a key added by the request
``(OP_SET, mapping, key, old)``       restore a mapping entry's old value
``(OP_WINDOW_STATE, ws, jobs, empty, covered)``  restore a WindowState
``(OP_PLACE, sched, job_id, slot)``   undo one placement (all three maps)
``(OP_UNPLACE, sched, job_id, slot)`` redo one placement (all three maps)
========================  ==================================================

Interval entries address state *positionally* (``pos`` = the enclosing
window's ladder position, ``slot`` relative slot ints) — no Window
objects, so recording an entry never hashes a window. ``OP_PLACE`` /
``OP_UNPLACE`` are the placement-map fold: one combined entry replaces
the three per-map ``OP_SET``/``OP_POP`` entries a placement mutation
used to record, exploiting that the three maps only ever change
together through ``_set_placement`` / ``_clear_placement``.

The undone state is byte-for-byte what the closure implementation
produced — both call the same ``Interval._undo_*`` primitives — which
the property tests in ``tests/test_journal_arena.py`` pin across
poisoned requests, deep atomic aborts, trimming rebuilds, and
process-worker crash rollback.
"""

from __future__ import annotations

# Opcodes are small ints compared with ``==`` in the dispatch loop,
# ordered roughly by hot-path frequency (assign/release dominate).
OP_ASSIGN = 0
OP_RELEASE = 1
OP_DYNAMIC = 2
OP_POP = 3
OP_SET = 4
OP_WINDOW_STATE = 5
OP_LOWERED = 6
OP_RAISED = 7
OP_SWAP = 8
OP_PLACE = 9
OP_UNPLACE = 10


def replay_entries(entries: list, stop: int = 0) -> None:
    """Replay journal entries above watermark ``stop`` in reverse.

    The single dispatch loop shared by failed-request rollback and
    atomic-batch abort. Tuple entries dispatch on their opcode; callable
    entries (closure-journal oracle mode) are simply invoked — both
    representations replay through here so the equivalence tests
    exercise one replay path.
    """
    for i in range(len(entries) - 1, stop - 1, -1):
        e = entries[i]
        if e.__class__ is not tuple:
            e()
            continue
        op = e[0]
        if op == OP_ASSIGN:
            e[1]._undo_assign(e[2], e[3])
        elif op == OP_RELEASE:
            e[1]._undo_release(e[2], e[3])
        elif op == OP_DYNAMIC:
            e[1]._undo_dynamic(e[2], e[3])
        elif op == OP_POP:
            e[1].pop(e[2], None)
        elif op == OP_SET:
            e[1][e[2]] = e[3]
        elif op == OP_WINDOW_STATE:
            ws = e[1]
            ws.jobs = e[2]
            ws.backed_empty.restore(e[3])
            ws.backed_covered.restore(e[4])
        elif op == OP_LOWERED:
            e[1]._undo_slot_lowered(e[2], e[3])
        elif op == OP_RAISED:
            e[1]._undo_slot_raised(e[2])
        elif op == OP_SWAP:
            # the raw swap is an involution; hooks are not refired on
            # undo (the window-state journal entries restore those)
            e[1]._swap_raw(e[2], e[3], fire_hooks=False)
        elif op == OP_PLACE:
            e[1]._undo_place(e[2], e[3])
        elif op == OP_UNPLACE:
            e[1]._undo_unplace(e[2], e[3])
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown journal opcode in {e!r}")


class UndoArena:
    """Reusable journal storage, one per scheduler.

    The containers are allocated once and shared by every per-request
    journal and every atomic batch log the owning scheduler opens
    (per-request journals and the batch log never coexist: atomic
    batches switch the per-request journal off). Scopes append above a
    watermark and release by truncating back to it; the container
    objects themselves — the per-request ``[], set(), []`` triple the
    closure implementation allocated on every request — are never
    reallocated.

    Attributes
    ----------
    entries:
        The append-only journal (tuple opcodes; closures in oracle
        mode). Intervals append to this list directly via their
        ``undo_log`` reference, at C speed.
    seen:
        First-touch dedup tokens (``(id(mapping), key)`` per-request,
        ``id(obj)`` per-batch).
    intervals:
        Intervals whose ``undo_log`` currently points at ``entries``
        (detached and truncated on scope exit).
    windows / dicts / created:
        The atomic batch log's snapshot lists (window-state snapshots,
        table shallow-copies, mid-batch interval materializations).
    entries_total:
        Diagnostic: total journal entries recorded over the arena's
        lifetime (read by bench E11b's allocation accounting).
    """

    __slots__ = ("entries", "seen", "intervals", "windows", "dicts",
                 "created", "entries_total")

    def __init__(self) -> None:
        self.entries: list = []
        self.seen: set = set()
        self.intervals: list = []
        self.windows: list = []
        self.dicts: list = []
        self.created: list = []
        self.entries_total = 0

    def mark(self) -> int:
        """Watermark delimiting a new journal scope."""
        return len(self.entries)

    def truncate(self, mark: int = 0) -> None:
        """Release every journal entry above ``mark`` (scope exit).

        Also counts the released entries into ``entries_total`` and, at
        the outermost scope (``mark == 0``), clears the shared dedup and
        snapshot containers for the next scope.
        """
        entries = self.entries
        self.entries_total += len(entries) - mark
        del entries[mark:]
        if mark == 0:
            self.seen.clear()
            self.intervals.clear()
            self.windows.clear()
            self.dicts.clear()
            self.created.clear()

    def rollback(self, mark: int = 0) -> None:
        """Replay entries above ``mark`` backwards (state restore only).

        The caller still owns scope exit (detaching interval logs and
        calling :meth:`truncate`).
        """
        replay_entries(self.entries, mark)
