"""Deamortized window-trimming via even/odd-slot incremental rebuild.

Section 4's last construction: the n*-trimming scheduler rebuilds the
whole schedule whenever n* doubles or halves — O(1) *amortized* but a
Theta(n) spike on the triggering request. The paper deamortizes it:

    "We use the even (or odd) time slots for the old schedule and the
    odd (or even) time slots for the new schedule. Instead of
    rebuilding the schedule all at once, every time one job is added or
    deleted, two jobs are moved from the old schedule to the new."

Implementation: two inner :class:`AlignedReservationScheduler`s operate
on *virtual* half-resolution grids; a virtual slot ``v`` of the
parity-``q`` scheduler is the real slot ``2v + q``. An aligned real
window ``[r, d)`` with span >= 2 has even ``r`` and ``d``, so its
parity-``q`` virtual window is ``[r/2, d/2)`` for either parity — still
aligned, half the span. The parities partition the timeline, so the
union of the two inner schedules is always feasible.

When the active-job count crosses an n* boundary, a *rebuild phase*
starts: a fresh inner scheduler on the opposite parity becomes the
"incoming" side; new jobs insert there; every request additionally
migrates two settled jobs from the outgoing side. The 4x hysteresis
between doubling and halving guarantees a phase finishes (outgoing side
drains) before the next boundary can trigger — we keep a bulk-finish
fallback for defense, counted in the ledger if it ever fires.

Cost of the halved grid: each parity sees its jobs at double density,
so the deamortized scheduler needs the *real* instance to be
``2 * gamma``-underallocated where the amortized one needs ``gamma`` —
exactly the paper's precondition. A corollary of that precondition is
that no job may have a window of span < 2 (a span-1 window cannot be
2-underallocated once occupied), which is why `span >= 2` is enforced
on every insert.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.base import ReallocatingScheduler, _BatchContext
from ..core.exceptions import InvalidRequestError
from ..core.job import Job, JobId, Placement
from ..core.window import Window
from ..levels.policy import LevelPolicy, PAPER_POLICY
from .scheduler import AlignedReservationScheduler, flexible_span_order
from .trimming import trim_aligned


def virtual_window(window: Window) -> Window:
    """Half-resolution window [r/2, d/2) of an aligned window, span >= 2."""
    if not window.is_aligned:
        raise InvalidRequestError(f"window {window} is not aligned")
    if window.span < 2:
        raise InvalidRequestError(
            f"window {window} has span 1; the deamortized scheduler requires "
            "span >= 2 (implied by its 2*gamma-underallocation precondition)"
        )
    return Window(window.release // 2, window.deadline // 2)


class DeamortizedReservationScheduler(ReallocatingScheduler):
    """n*-trimmed reservation scheduler with O(1) worst-case rebuilds.

    Parameters mirror :class:`TrimmedReservationScheduler`; the
    underallocation requirement doubles (see module docstring).
    ``migrate_per_request`` is the paper's 2.

    Cost accounting is sparse: the merged real-coordinate placement map
    is maintained incrementally from the inner schedulers' touched logs
    (each inner touch is transformed through the parity virtualization
    ``real = 2 * virtual + parity``), so per-request cost diffing is
    O(reallocations) instead of the former O(n) full-snapshot diff.
    """

    _sparse_costing = True

    def __init__(
        self,
        gamma: int = 8,
        policy: LevelPolicy = PAPER_POLICY,
        *,
        min_n_star: int = 4,
        migrate_per_request: int = 2,
        journal: str = "arena",
    ) -> None:
        super().__init__(num_machines=1)
        if gamma < 1 or gamma & (gamma - 1):
            raise ValueError("gamma must be a positive power of two")
        if min_n_star < 1 or min_n_star & (min_n_star - 1):
            raise ValueError("min_n_star must be a positive power of two")
        if migrate_per_request < 2:
            raise ValueError("must migrate >= 2 jobs per request to keep up")
        self.gamma = gamma
        self.policy = policy
        self.min_n_star = min_n_star
        self.n_star = min_n_star
        self.migrate_per_request = migrate_per_request
        self.journal_impl = journal
        self.parity = 0
        self.active = AlignedReservationScheduler(policy, journal=journal)
        self.incoming: AlignedReservationScheduler | None = None
        self.incoming_parity = 1
        #: job id -> parity of the inner scheduler holding it
        self._home: dict[JobId, int] = {}
        #: merged real-coordinate placement map (incremental)
        self._placements: dict[JobId, Placement] = {}
        self.phases_started = 0
        self.bulk_finishes = 0
        #: journal entries recorded by outgoing inners retired at phase
        #: end (``journal_entries_total`` folds the live inners back in)
        self._journal_entries_carry = 0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def virtual_trim_span(self) -> int:
        """Virtual trim bound: half the real bound 2*gamma*n*."""
        return max(1, self.gamma * self.n_star)

    def _effective(self, job: Job) -> Job:
        vwin = trim_aligned(virtual_window(job.window), self.virtual_trim_span)
        return job.with_window(vwin)

    def _inner(self, parity: int) -> AlignedReservationScheduler:
        if parity == self.parity:
            return self.active
        if self.incoming is None:  # pragma: no cover - defensive
            raise AssertionError("no scheduler for requested parity")
        return self.incoming

    @property
    def in_phase(self) -> bool:
        return self.incoming is not None

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self._placements

    def _sync_inner(self, inner: AlignedReservationScheduler, parity: int,
                    subject: JobId) -> None:
        """Mirror one inner request's changes into the merged real map.

        The inner's touched log names every job it may have moved (in
        virtual coordinates); each is re-read and transformed through
        the parity virtualization. Pre-change real placements are logged
        first, so the wrapper's own sparse cost diff sees them.
        """
        touched = inner.last_touched
        if touched is None:
            changed = (subject,)
        elif subject in touched:
            changed = touched
        else:
            changed = (subject, *touched)
        inner_placements = inner.placements
        merged = self._placements
        for job_id in changed:
            self._log_touch(job_id)
            pl = inner_placements.get(job_id)
            if pl is None:
                merged.pop(job_id, None)
            else:
                merged[job_id] = Placement(0, 2 * pl.slot + parity)

    # ------------------------------------------------------------------
    # online interface
    # ------------------------------------------------------------------
    def _apply_insert(self, job: Job) -> None:
        target_parity = self.incoming_parity if self.in_phase else self.parity
        inner = self._inner(target_parity)
        inner.insert(self._effective(job))
        self._sync_inner(inner, target_parity, job.id)
        self._home[job.id] = target_parity
        self._tick()
        if len(self.jobs) > self.n_star:
            self._start_phase(self.n_star * 2)

    def _apply_delete(self, job: Job) -> None:
        parity = self._home.pop(job.id)
        inner = self._inner(parity)
        inner.delete(job.id)
        self._sync_inner(inner, parity, job.id)
        self._tick()
        active_after = len(self.jobs) - 1
        if active_after < self.n_star // 4 and self.n_star > self.min_n_star:
            self._start_phase(max(self.min_n_star, self.n_star // 2))

    # ------------------------------------------------------------------
    # phase machinery
    # ------------------------------------------------------------------
    def _start_phase(self, new_n_star: int) -> None:
        if self.in_phase:
            # Defensive: finish the current phase in bulk. The 4x
            # hysteresis makes this unreachable under the paper's
            # assumptions; we count it if it ever happens.
            self.bulk_finishes += 1
            while self.incoming is not None:
                self._migrate_some(len(self.active.jobs) or 1)
        self.n_star = new_n_star
        self.phases_started += 1
        self.incoming_parity = 1 - self.parity
        self.incoming = AlignedReservationScheduler(self.policy,
                                                    journal=self.journal_impl)
        ctx = self._batch
        if ctx is not None:
            # A phase opened mid-atomic-batch drains into a scheduler an
            # abort simply discards (the saved pre-batch pair swaps
            # back), so the incoming side skips rollback tracking.
            self.incoming._batch_begin(atomic=ctx.atomic, top=False,
                                       ephemeral=ctx.atomic or ctx.ephemeral)
        if not self.active.jobs:
            self._finish_phase()

    def _tick(self) -> None:
        if self.in_phase:
            self._migrate_some(self.migrate_per_request)

    def _migrate_some(self, count: int) -> None:
        """Move up to ``count`` jobs from the outgoing to the incoming side."""
        assert self.incoming is not None
        for _ in range(count):
            if not self.active.jobs:
                break
            # Deterministic drain order: smallest span first (cheap to
            # re-place), then by id.
            job_id = min(self.active.jobs,
                         key=lambda j: (self.active.jobs[j].span, str(j)))
            original = self.jobs[job_id]
            self.active.delete(job_id)
            self._sync_inner(self.active, self.parity, job_id)
            self.incoming.insert(self._effective(original))
            self._sync_inner(self.incoming, self.incoming_parity, job_id)
            self._home[job_id] = self.incoming_parity
        if not self.active.jobs:
            self._finish_phase()

    def _finish_phase(self) -> None:
        assert self.incoming is not None
        self._journal_entries_carry += self.active.journal_entries_total
        self.active = self.incoming
        self.parity = self.incoming_parity
        self.incoming = None
        self.incoming_parity = 1 - self.parity

    @property
    def journal_entries_total(self) -> int:
        """Lifetime undo-journal entries, retired phase inners included."""
        total = self._journal_entries_carry + self.active.journal_entries_total
        if self.incoming is not None:
            total += self.incoming.journal_entries_total
        return total

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    def supports_atomic_batches(self) -> bool:
        return True

    def _flexible_insert_order_key(self) -> "Callable[[Job], object] | None":
        """Joint inserts span-ascending (matches the migration drain order)."""
        return flexible_span_order

    def _batch_begin(self, *, atomic: bool, top: bool,
                     ephemeral: bool = False,
                     emit_touched: bool = True) -> None:
        super()._batch_begin(atomic=atomic, top=top, ephemeral=ephemeral,
                             emit_touched=emit_touched)
        if atomic and not ephemeral:
            self._batch.saved["deam"] = (
                self.parity, self.incoming_parity, self.active,
                self.incoming, self.n_star, self.phases_started,
                self.bulk_finishes, self._journal_entries_carry,
            )
        self.active._batch_begin(atomic=atomic, top=False, ephemeral=ephemeral)
        if self.incoming is not None:
            self.incoming._batch_begin(atomic=atomic, top=False,
                                       ephemeral=ephemeral)

    def _batch_commit(self) -> None:
        super()._batch_commit()
        self.active._batch_commit()
        if self.incoming is not None:
            self.incoming._batch_commit()

    def _batch_restore(self, ctx: _BatchContext) -> None:
        (self.parity, self.incoming_parity, self.active, self.incoming,
         self.n_star, self.phases_started, self.bulk_finishes,
         self._journal_entries_carry) = ctx.saved["deam"]
        self.active._batch_abort()
        if self.incoming is not None:
            self.incoming._batch_abort()
        self._restore_placement_map(self._placements, ctx.touched)
        # The home map is derivable from the inners' restored job sets.
        # (``jobs`` here is the inner scheduler's insertion-ordered job
        # dict, not a set — iteration order is deterministic.)
        home = {job_id: self.parity for job_id
                in self.active.jobs}  # staticcheck: ignore[determinism]
        if self.incoming is not None:
            for job_id in self.incoming.jobs:  # staticcheck: ignore[determinism]
                home[job_id] = self.incoming_parity
        self._home = home

    # ------------------------------------------------------------------
    @property
    def poisoned(self) -> bool:
        return self.active.poisoned or (
            self.incoming is not None and self.incoming.poisoned
        )
