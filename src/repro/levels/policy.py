"""Level decomposition policy (Section 4, "Interval Decomposition").

The paper splits window spans into levels via a tower of thresholds::

    L_1 = 2**5 = 32,   L_{l+1} = 2**(L_l / 4)

- **Level 0** (base level) handles aligned spans ``1 .. L_1``; it uses
  the constant-cost naive pecking-order scheduler (the thresholds are
  constants, so cascades cost O(1)).
- **Level l >= 1** handles aligned spans ``L_l < span <= L_{l+1}`` with
  the reservation machinery. Each level-l window of span ``2**k * L_l``
  (``k >= 1``) decomposes into ``2**k`` *level-l intervals* of exactly
  ``L_l`` slots each, aligned on multiples of ``L_l``.

Equation 1 of the paper — the budget that makes the whole construction
work — states that the number of distinct level-l window spans is at
most ``lg(L_{l+1}) = L_l / 4``: every interval can afford one standing
("baseline") reservation for *every* enclosing level-l window span while
consuming at most a quarter of its slots.

The policy is pluggable (``make_policy``) so experiments can explore
other tower shapes; the invariant required by the analysis is
``L_l >= 4 * lg(L_{l+1})`` and every threshold a power of two.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..core.window import Window, is_power_of_two


@dataclass(frozen=True)
class LevelPolicy:
    """Immutable level-threshold policy.

    Attributes
    ----------
    thresholds:
        ``(L_1, L_2, ..., L_top)`` — strictly increasing powers of two.
        Spans ``<= L_1`` are level 0; spans in ``(L_l, L_{l+1}]`` are
        level ``l``. The final threshold must exceed any span used; the
        policy raises if asked about a larger span.
    """

    thresholds: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.thresholds:
            raise ValueError("need at least one threshold")
        prev = 0
        for t in self.thresholds:
            if not is_power_of_two(t):
                raise ValueError(f"threshold {t} is not a power of two")
            if t <= prev:
                raise ValueError("thresholds must be strictly increasing")
            prev = t
        # The analysis (Equation 1 / Lemma 8) needs L_l >= 4*lg(L_{l+1}).
        for lo, hi in zip(self.thresholds, self.thresholds[1:]):
            if lo < 4 * (hi.bit_length() - 1):
                raise ValueError(
                    f"policy violates Equation 1 budget: L={lo} < 4*lg({hi})"
                )

    # ------------------------------------------------------------------
    @property
    def base_threshold(self) -> int:
        """L_1 — the largest span handled by the base level (level 0)."""
        return self.thresholds[0]

    @property
    def max_span(self) -> int:
        """Largest span this policy can level-ize."""
        return self.thresholds[-1]

    @property
    def num_reservation_levels(self) -> int:
        return len(self.thresholds) - 1

    def level_of_span(self, span: int) -> int:
        """Level index for an aligned span (0 = base level)."""
        if span < 1:
            raise ValueError("span must be >= 1")
        if span <= self.thresholds[0]:
            return 0
        for level in range(1, len(self.thresholds)):
            if span <= self.thresholds[level]:
                return level
        raise ValueError(
            f"span {span} exceeds policy max span {self.max_span}; "
            "extend the policy thresholds"
        )

    def interval_span(self, level: int) -> int:
        """Slot count L_l of a level-l interval (level >= 1)."""
        if not 1 <= level <= self.num_reservation_levels:
            raise ValueError(f"level {level} out of range 1..{self.num_reservation_levels}")
        return self.thresholds[level - 1]

    def level_span_range(self, level: int) -> tuple[int, int]:
        """(min_span, max_span) handled at ``level`` (inclusive bounds).

        Level 0 returns ``(1, L_1)``; level l returns ``(2*L_l, L_{l+1})``
        — remember level-l spans are powers of two strictly above L_l.
        """
        if level == 0:
            return (1, self.thresholds[0])
        lo = self.interval_span(level)
        hi = self.thresholds[level]
        return (2 * lo, hi)

    def interval_index(self, level: int, slot: int) -> int:
        """Index of the level-l interval containing ``slot``."""
        span = self.interval_span(level)
        return slot // span

    def interval_window(self, level: int, index: int) -> Window:
        """The level-l interval with the given index, as a Window."""
        span = self.interval_span(level)
        return Window(index * span, (index + 1) * span)

    def intervals_of_window(self, level: int, window: Window) -> range:
        """Indices of the level-l intervals partitioning an aligned level-l window."""
        span = self.interval_span(level)
        if window.release % span or window.deadline % span:
            raise ValueError(f"{window} is not interval-aligned at level {level}")
        return range(window.release // span, window.deadline // span)

    def enclosing_spans(self, level: int) -> list[int]:
        """All legal level-l window spans, smallest first.

        Spans are ``2**k * L_l`` for ``k = 1 .. lg(L_{l+1}/L_l)``.
        Equation 1 guarantees there are at most ``L_l / 4`` of them.
        """
        lo, hi = self.interval_span(level), self.thresholds[level]
        spans = []
        s = 2 * lo
        while s <= hi:
            spans.append(s)
            s *= 2
        return spans

    def levels_above(self, level: int) -> range:
        """Reservation levels strictly above ``level``."""
        return range(max(level + 1, 1), self.num_reservation_levels + 1)

    def required_levels(self, max_span: int) -> int:
        """Number of reservation levels touched by spans up to max_span."""
        if max_span <= self.thresholds[0]:
            return 0
        return self.level_of_span(max_span)


@lru_cache(maxsize=None)
def make_policy(max_span: int = 1 << 20, *, l1: int = 32, shift: int = 4) -> LevelPolicy:
    """Build a :class:`LevelPolicy` covering spans up to ``max_span``.

    Defaults reproduce the paper's tower (``L_1=32``, ``L_{l+1} =
    2**(L_l/4)``). Other ``(l1, shift)`` pairs let experiments exercise
    deeper towers at small scale, subject to the Equation-1 validity
    check; e.g. ``l1=32, shift=8`` gives levels 32, 16, ... (invalid) —
    the constructor rejects invalid shapes.
    """
    thresholds = [l1]
    while thresholds[-1] < max_span:
        nxt = 1 << (thresholds[-1] // shift)
        if nxt <= thresholds[-1]:
            raise ValueError(
                f"tower (l1={l1}, shift={shift}) does not grow past {thresholds[-1]}"
            )
        thresholds.append(nxt)
    return LevelPolicy(tuple(thresholds))


#: The paper's policy, covering spans up to 2**64 (3 reservation levels
#: suffice for any practical simulation).
PAPER_POLICY = make_policy(1 << 40)
