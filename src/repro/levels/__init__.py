"""Level/interval decomposition policies (Section 4, "Interval Decomposition")."""

from .policy import LevelPolicy, PAPER_POLICY, make_policy

__all__ = ["LevelPolicy", "PAPER_POLICY", "make_policy"]
