"""Window alignment transform ALIGNED(W) (Section 5, Lemma 10)."""

from .align import AligningScheduler, align_job, align_jobs

__all__ = ["AligningScheduler", "align_job", "align_jobs"]
