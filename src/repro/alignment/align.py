"""Window alignment transform (Section 5).

``ALIGNED(W)`` replaces a window with a largest aligned window contained
in it (span >= |W|/4). Lemma 10: if the original instance is m-machine
4*gamma-underallocated, the aligned instance is gamma-underallocated —
so the transform costs a constant factor of slack and nothing else.

:class:`AligningScheduler` is a transparent wrapper: callers insert jobs
with arbitrary windows; the wrapped scheduler only ever sees aligned
windows. Placements remain valid for the original windows because
``ALIGNED(W)`` nests inside ``W``.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.base import ReallocatingScheduler
from ..core.job import Job, JobId, Placement


def align_job(job: Job) -> Job:
    """The paper's ALIGNED(j): replace the window by its aligned core."""
    return job.with_window(job.window.aligned_within())


def align_jobs(jobs: Mapping[JobId, Job]) -> dict[JobId, Job]:
    """ALIGNED(J) for a whole instance."""
    return {job_id: align_job(job) for job_id, job in jobs.items()}


class AligningScheduler(ReallocatingScheduler):
    """Wraps any scheduler, feeding it ALIGNED(W) windows.

    The wrapped scheduler may itself be multi-machine; this wrapper is
    placement- and machine-transparent.
    """

    def __init__(self, inner_factory: Callable[[], ReallocatingScheduler]) -> None:
        inner = inner_factory()
        super().__init__(num_machines=inner.num_machines)
        self.inner = inner

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self.inner.placements

    def _apply_insert(self, job: Job) -> None:
        self.inner.insert(align_job(job))

    def _apply_delete(self, job: Job) -> None:
        self.inner.delete(job.id)
