"""repro — reproduction of "Reallocation Problems in Scheduling"
(Bender, Farach-Colton, Fekete, Fineman, Gilbert; SPAA 2013).

Public API quick reference
--------------------------
- :class:`repro.ReservationScheduler` — the paper's Theorem 1 scheduler
  (multi-machine, unaligned windows, O(log* n) reallocations/request,
  at most one migration/request).
- :mod:`repro.baselines` — EDF/LLF rebuilds, the naive pecking-order
  scheduler (Lemma 4), the per-request-optimal matcher.
- :mod:`repro.workloads` / :mod:`repro.adversaries` — request-sequence
  generators, including the paper's lower-bound constructions.
- :mod:`repro.sim` — the unified execution API: one
  :class:`~repro.sim.session.Session` drive loop with pluggable
  backends (sequential / batched / sharded per-machine workers),
  feasibility verification, phase-split timing, and resumable JSONL
  traces; ``run_sequence``/``run_engine``/``run_sweep`` are thin
  adapters over it.
- :class:`repro.Batch` / :class:`repro.BatchResult` — the batch-first
  request surface: ``scheduler.apply_batch(batch, atomic=True)``
  applies a whole burst transactionally under one cost/journal context;
  delegating stacks additionally offer ``apply_batch_sharded`` (one
  shard worker per machine — serial, threaded, or resident in a worker
  *process* across bursts via ``workers="processes"`` — with merged
  touched logs and whole-burst rollback).
"""

from .core import (
    Batch,
    BatchResult,
    CostLedger,
    InfeasibleError,
    InvalidRequestError,
    Job,
    Placement,
    ReallocatingScheduler,
    RequestCost,
    RequestSequence,
    UnderallocationError,
    ValidationError,
    Window,
    iter_batches,
)

__version__ = "1.1.0"

__all__ = [
    "Batch",
    "BatchResult",
    "iter_batches",
    "CostLedger",
    "InfeasibleError",
    "InvalidRequestError",
    "Job",
    "Placement",
    "ReallocatingScheduler",
    "RequestCost",
    "RequestSequence",
    "UnderallocationError",
    "ValidationError",
    "Window",
    "__version__",
]
