"""repro — reproduction of "Reallocation Problems in Scheduling"
(Bender, Farach-Colton, Fekete, Fineman, Gilbert; SPAA 2013).

Public API quick reference
--------------------------
- :class:`repro.ReservationScheduler` — the paper's Theorem 1 scheduler
  (multi-machine, unaligned windows, O(log* n) reallocations/request,
  at most one migration/request).
- :mod:`repro.baselines` — EDF/LLF rebuilds, the naive pecking-order
  scheduler (Lemma 4), the per-request-optimal matcher.
- :mod:`repro.workloads` / :mod:`repro.adversaries` — request-sequence
  generators, including the paper's lower-bound constructions.
- :mod:`repro.sim` — the driver that feeds requests to schedulers while
  verifying feasibility after every request and ledgering costs.
- :class:`repro.Batch` / :class:`repro.BatchResult` — the batch-first
  request surface: ``scheduler.apply_batch(batch, atomic=True)``
  applies a whole burst transactionally under one cost/journal context.
"""

from .core import (
    Batch,
    BatchResult,
    CostLedger,
    InfeasibleError,
    InvalidRequestError,
    Job,
    Placement,
    ReallocatingScheduler,
    RequestCost,
    RequestSequence,
    UnderallocationError,
    ValidationError,
    Window,
    iter_batches,
)

__version__ = "1.1.0"

__all__ = [
    "Batch",
    "BatchResult",
    "iter_batches",
    "CostLedger",
    "InfeasibleError",
    "InvalidRequestError",
    "Job",
    "Placement",
    "ReallocatingScheduler",
    "RequestCost",
    "RequestSequence",
    "UnderallocationError",
    "ValidationError",
    "Window",
    "__version__",
]
