"""Metrics and growth-rate analysis for experiment series.

Experiments produce series like "max per-request reallocation cost as a
function of n". The paper predicts their asymptotic shapes: constant-ish
(log*), logarithmic (Lemma 4), linear (EDF cascades, Lemma 11), or
quadratic (Lemma 12). :func:`fit_growth` classifies a measured series by
least-squares fitting the candidate shapes and reporting relative
residuals, so EXPERIMENTS.md can state "measured shape: log" with a
number attached rather than by eyeball.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.logstar import log_star


@dataclass(frozen=True)
class GrowthFit:
    """Result of shape classification for an (x, y) series."""

    best: str
    residuals: dict[str, float]
    coefficients: dict[str, tuple[float, float]]

    def relative_residual(self, shape: str) -> float:
        return self.residuals[shape]


_SHAPES = {
    "constant": lambda x: np.ones_like(x, dtype=float),
    "logstar": lambda x: np.array([log_star(v) for v in x], dtype=float),
    "log": lambda x: np.log2(np.maximum(x, 1.0)),
    "sqrt": lambda x: np.sqrt(x),
    "linear": lambda x: np.asarray(x, dtype=float),
    "quadratic": lambda x: np.asarray(x, dtype=float) ** 2,
}


def fit_growth(
    xs: Sequence[float],
    ys: Sequence[float],
    shapes: Sequence[str] = ("constant", "logstar", "log", "linear", "quadratic"),
) -> GrowthFit:
    """Least-squares fit ``y ~ a * shape(x) + b`` for each candidate shape.

    Returns the shape with the smallest normalized residual. Ties (and
    near-ties within 5%) resolve toward the *slower-growing* shape, since
    a bounded series fits every faster shape with a tiny coefficient.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.size < 3:
        raise ValueError("need at least 3 matched (x, y) points")
    scale = float(np.linalg.norm(y)) or 1.0
    residuals: dict[str, float] = {}
    coefficients: dict[str, tuple[float, float]] = {}
    order = [s for s in _SHAPES if s in shapes]
    for shape in order:
        basis = _SHAPES[shape](x)
        a_mat = np.column_stack([basis, np.ones_like(basis)])
        sol, *_ = np.linalg.lstsq(a_mat, y, rcond=None)
        pred = a_mat @ sol
        residuals[shape] = float(np.linalg.norm(pred - y)) / scale
        coefficients[shape] = (float(sol[0]), float(sol[1]))
    best = None
    for shape in order:  # slowest-growing first in _SHAPES order
        r = residuals[shape]
        if best is None or r < residuals[best] * 0.95:
            if best is None or r < residuals[best]:
                best = shape
    # second pass: prefer earlier (slower) shapes within 5% of the minimum
    min_r = min(residuals.values())
    for shape in order:
        if residuals[shape] <= min_r * 1.05 + 1e-12:
            best = shape
            break
    return GrowthFit(best=best, residuals=residuals, coefficients=coefficients)


def doubling_series(lo: int, hi: int) -> list[int]:
    """[lo, 2lo, 4lo, ..., <= hi] — the standard sweep grid."""
    if lo < 1 or hi < lo:
        raise ValueError("need 1 <= lo <= hi")
    out = []
    v = lo
    while v <= hi:
        out.append(v)
        v *= 2
    return out


def summarize_series(xs: Sequence[float], ys: Sequence[float]) -> dict:
    """Headline numbers for a series: endpoints, growth factor, fit."""
    fit = fit_growth(xs, ys)
    return {
        "x_range": (min(xs), max(xs)),
        "y_first": ys[0],
        "y_last": ys[-1],
        "growth_factor": (ys[-1] / ys[0]) if ys[0] else math.inf,
        "best_shape": fit.best,
        "residuals": {k: round(v, 4) for k, v in fit.residuals.items()},
    }
