"""Incremental feasibility verification: O(changes) per request.

The legacy audit re-verified the whole schedule after every request —
O(n) work that dominated benchmark loops and measured the harness, not
the algorithm. :class:`IncrementalVerifier` exploits the cost model
instead: every :class:`~repro.core.costs.RequestCost` names exactly the
jobs whose placement changed (the subject plus ``rescheduled``), so the
verifier maintains a mirror of the schedule — placements and a
size-aware (machine, slot) occupancy map — and checks only the changed
jobs per request:

1. changed jobs' old cells are released from the mirror;
2. each changed job's new placement is checked: machine in range, start
   admissible for its window, and no collision against the mirror;
3. a cheap cardinality guard compares mirror and scheduler sizes.

That is O(reallocations) = O(log* n) per request for the paper's
scheduler. The one blind spot — a scheduler that moves a job *without
reporting it* in the request cost — is covered by :meth:`full_audit`,
which re-verifies the whole schedule from scratch *and* compares the
mirror against the scheduler's placement map; the driver runs it every
``full_audit_every`` requests and once at the end of every run.
"""

from __future__ import annotations

from typing import Iterable

from ..core.base import ReallocatingScheduler
from ..core.costs import BatchResult, RequestCost
from ..core.exceptions import ValidationError
from ..core.job import Job, JobId, Placement
from ..core.schedule import verify_schedule


class IncrementalVerifier:
    """Feasibility checker amortizing the audit over placement changes.

    Parameters
    ----------
    num_machines:
        Machine count the schedule must respect.
    full_audit_every:
        Run a from-scratch audit every this many observed requests
        (0 disables periodic audits; call :meth:`full_audit` manually).
    where:
        Label prefixed to failure messages.
    """

    def __init__(self, num_machines: int, *, full_audit_every: int = 256,
                 where: str = "schedule") -> None:
        self.num_machines = num_machines
        self.full_audit_every = full_audit_every
        self.where = where
        self._jobs: dict[JobId, Job] = {}
        self._placements: dict[JobId, Placement] = {}
        #: (machine, slot) -> occupying job id (size-aware)
        self._occupied: dict[tuple[int, int], JobId] = {}
        self.requests_seen = 0
        self.full_audits_run = 0

    # ------------------------------------------------------------------
    def observe(self, scheduler: ReallocatingScheduler,
                cost: RequestCost) -> None:
        """Check one request's placement changes and update the mirror."""
        self.requests_seen += 1
        where = f"{self.where} after request {self.requests_seen}"
        self._check_changed(scheduler, (cost.subject, *cost.rescheduled), where)
        if (self.full_audit_every
                and self.requests_seen % self.full_audit_every == 0):
            self.full_audit(scheduler)

    def verify_batch(self, scheduler: ReallocatingScheduler,
                     result: "BatchResult") -> None:
        """Check one committed batch's net placement changes.

        A batch is a transaction: feasibility is checked once at commit
        over the union of every request's changed jobs, instead of once
        per request. A rolled-back atomic batch left no changes, so only
        the committed prefix is checked. Periodic full audits fire on
        the same request cadence as per-request observation.
        """
        before = self.requests_seen
        self.requests_seen += result.processed
        if result.processed:
            where = (f"{self.where} after batch commit at request "
                     f"{self.requests_seen}")
            self._check_changed(scheduler, result.changed_jobs(), where)
        if (self.full_audit_every
                and self.requests_seen // self.full_audit_every
                > before // self.full_audit_every):
            self.full_audit(scheduler)

    def _check_changed(self, scheduler: ReallocatingScheduler,
                       changed: Iterable[JobId], where: str) -> None:
        """Release + re-admit the changed jobs against the mirror."""
        placements = scheduler.placements
        jobs = scheduler.jobs

        # Phase 1: release every changed job's old cells from the mirror.
        for job_id in changed:
            old = self._placements.pop(job_id, None)
            if old is None:
                continue
            job = self._jobs.pop(job_id)
            for t in range(old.slot, old.slot + job.size):
                del self._occupied[(old.machine, t)]

        # Phase 2: admit the new placements, checking each constraint.
        for job_id in changed:
            job = jobs.get(job_id)
            if job is None:
                if job_id in placements:
                    raise ValidationError(
                        f"{where}: placement kept for deleted job {job_id!r}"
                    )
                continue
            pl = placements.get(job_id)
            if pl is None:
                raise ValidationError(
                    f"{where}: job {job_id!r} has no placement"
                )
            if not 0 <= pl.machine < self.num_machines:
                raise ValidationError(
                    f"{where}: job {job_id!r} on machine {pl.machine} of "
                    f"{self.num_machines}"
                )
            if not job.admissible_start(pl.slot):
                raise ValidationError(
                    f"{where}: job {job_id!r} at slot {pl.slot} outside window "
                    f"[{job.release}, {job.deadline}) (size {job.size})"
                )
            for t in range(pl.slot, pl.slot + job.size):
                key = (pl.machine, t)
                holder = self._occupied.get(key)
                if holder is not None:
                    raise ValidationError(
                        f"{where}: machine {pl.machine} slot {t} double-booked "
                        f"by {holder!r} and {job_id!r}"
                    )
                self._occupied[key] = job_id
            self._jobs[job_id] = job
            self._placements[job_id] = pl

        # Cheap global guard: the mirror and the live schedule must agree
        # in size; divergence means an unreported placement change.
        if len(self._placements) != len(placements):
            raise ValidationError(
                f"{where}: mirror holds {len(self._placements)} placements, "
                f"scheduler reports {len(placements)} — a placement changed "
                "without being reported in the request cost"
            )

    # ------------------------------------------------------------------
    def seed(self, scheduler: ReallocatingScheduler, *,
             processed: int = 0) -> None:
        """Adopt the scheduler's live schedule as the mirror.

        Used when verification starts mid-run (a resumed session whose
        committed prefix was replayed unverified): the live schedule is
        fully verified once, then becomes the baseline that subsequent
        :meth:`observe` / :meth:`verify_batch` calls check changes
        against. ``processed`` seeds the request counter so periodic
        full audits keep their absolute cadence.
        """
        verify_schedule(scheduler.jobs, scheduler.placements,
                        self.num_machines, where=f"{self.where} resume seed")
        self._jobs = dict(scheduler.jobs)
        self._placements = dict(scheduler.placements)
        self._occupied = {}
        for job_id, pl in self._placements.items():
            job = self._jobs[job_id]
            for t in range(pl.slot, pl.slot + job.size):
                self._occupied[(pl.machine, t)] = job_id
        self.requests_seen = processed

    # ------------------------------------------------------------------
    def full_audit(self, scheduler: ReallocatingScheduler) -> None:
        """From-scratch feasibility check plus mirror/scheduler comparison."""
        self.full_audits_run += 1
        where = f"{self.where} full audit after request {self.requests_seen}"
        verify_schedule(scheduler.jobs, scheduler.placements,
                        self.num_machines, where=where)
        live = dict(scheduler.placements)
        if self._placements != live:
            drift = [j for j in sorted(set(live) | set(self._placements),
                                       key=str)
                     if self._placements.get(j) != live.get(j)]
            raise ValidationError(
                f"{where}: mirror diverged from live schedule for jobs "
                f"{sorted(map(str, drift))[:5]} — placements changed without "
                "being reported in request costs"
            )
