"""Plain-text tables and series rendering for experiment output.

The benchmark harness prints the same rows/series a paper table or
figure would carry. No plotting dependencies: figures are rendered as
aligned-column series (x, one column per scheduler) plus an ASCII spark
bar, which is enough to see shapes (flat vs log vs linear vs quadratic)
in CI logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


def format_series(
    x_label: str,
    xs: Sequence[object],
    columns: Mapping[str, Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a figure-like series: one row per x, one column per line."""
    headers = [x_label] + list(columns)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [col[i] for col in columns.values()])
    return format_table(headers, rows, title=title)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """ASCII bar chart (one row per value) for eyeballing growth shapes."""
    if not values:
        return "(empty)"
    peak = max(values) or 1
    lines = []
    for v in values:
        bar = "#" * max(1, round(width * v / peak)) if v > 0 else ""
        lines.append(f"{v:>10.2f} |{bar}")
    return "\n".join(lines)


def experiment_header(exp_id: str, claim: str) -> str:
    """Uniform banner for benchmark output (ties output to EXPERIMENTS.md)."""
    bar = "=" * 72
    return f"{bar}\n{exp_id}: {claim}\n{bar}"
