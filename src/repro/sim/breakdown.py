"""Per-mechanism cost attribution from event traces.

The ledger says *how many* jobs moved; the tracer says *why*. This
module turns an :class:`~repro.core.events.EventTracer` into the
attribution tables used by reports: which scheduler mechanism
(reservation churn, same-level MOVE, cross-level displacement,
base-level cascade, trimming rebuild, delegation migration) accounts
for which share of the movement, optionally split by level.

This is how one inspects the *constant* inside the O(log* n) bound:
e.g. on typical 8-underallocated churn, most moves come from base-level
cascades and PLACE displacements, while reservation-revocation MOVEs
are rare — the reservations' whole job is to be slack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.events import Event, EventTracer
from .report import format_table

#: actions that correspond to a physical job movement
MOVE_ACTIONS = {
    "move": "same-level MOVE (reservation revoked)",
    "displace-swap": "MOVE ancestor swap (higher job relocated)",
    "displace": "PLACE displacement (pecking order)",
    "base-cascade": "base-level cascade step",
    "rebuild": "n*-rebuild",
    "migrate": "machine migration",
}

#: actions that are bookkeeping only (no job moves)
BOOKKEEPING_ACTIONS = {"reserve", "place", "base-place", "delete", "trim"}


@dataclass(frozen=True)
class MechanismShare:
    action: str
    description: str
    count: int
    share: float


def movement_breakdown(tracer: EventTracer) -> list[MechanismShare]:
    """Share of physical movements per mechanism, descending."""
    counts = {a: tracer.count(a) for a in MOVE_ACTIONS}
    total = sum(counts.values()) or 1
    out = [
        MechanismShare(a, MOVE_ACTIONS[a], c, c / total)
        for a, c in counts.items() if c
    ]
    out.sort(key=lambda s: (-s.count, s.action))
    return out


def by_level(tracer: EventTracer, actions: set[str] | None = None) -> dict[int, int]:
    """Event counts per level (requires the tracer to keep events)."""
    if actions is None:
        actions = set(MOVE_ACTIONS)
    out: dict[int, int] = {}
    for event in tracer:
        if event.action in actions and event.level is not None:
            out[event.level] = out.get(event.level, 0) + 1
    return dict(sorted(out.items()))


def breakdown_table(tracer: EventTracer, *, title: str = "movement breakdown") -> str:
    """Render the attribution as a report table."""
    shares = movement_breakdown(tracer)
    if not shares:
        return f"{title}: no movements recorded"
    rows = [[s.description, s.count, f"{100 * s.share:.1f}%"] for s in shares]
    text = format_table(["mechanism", "moves", "share"], rows, title=title)
    levels = by_level(tracer)
    if levels:
        level_row = ", ".join(f"level {lv}: {c}" for lv, c in levels.items())
        text += f"\nmoves by level: {level_row}"
    return text


def cascade_depths(tracer: EventTracer) -> list[int]:
    """Lengths of base-level cascades (consecutive base-cascade events).

    Useful to confirm Lemma 4's bound at the base level: depths never
    exceed log2(L_1).
    """
    depths: list[int] = []
    run = 0
    for event in tracer:
        if event.action == "base-cascade":
            run += 1
        elif event.action in ("base-place", "place"):
            if run:
                depths.append(run)
            run = 0
    if run:
        depths.append(run)
    return depths
