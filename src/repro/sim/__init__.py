"""Simulation harness: drivers, metrics, growth fitting, text reports."""

from .breakdown import breakdown_table, by_level, cascade_depths, movement_breakdown
from .driver import RunResult, run_comparison, run_sequence
from .metrics import GrowthFit, doubling_series, fit_growth, summarize_series
from .replay import ExecutionTrace, shrink_failing_prefix
from .report import experiment_header, format_series, format_table, sparkline

__all__ = [
    "breakdown_table",
    "by_level",
    "cascade_depths",
    "movement_breakdown",
    "ExecutionTrace",
    "shrink_failing_prefix",
    "RunResult",
    "run_comparison",
    "run_sequence",
    "GrowthFit",
    "doubling_series",
    "fit_growth",
    "summarize_series",
    "experiment_header",
    "format_series",
    "format_table",
    "sparkline",
]
