"""Simulation harness: drivers, engine, metrics, growth fitting, reports."""

from .breakdown import breakdown_table, by_level, cascade_depths, movement_breakdown
from .driver import RunResult, run_comparison, run_sequence
from .engine import Checkpoint, EngineResult, run_engine, run_sweep, sweep_table
from .incremental import IncrementalVerifier
from .metrics import GrowthFit, doubling_series, fit_growth, summarize_series
from .replay import ExecutionTrace, shrink_failing_prefix
from .report import experiment_header, format_series, format_table, sparkline
from .session import (
    BatchedBackend,
    DEFAULT_FULL_AUDIT_EVERY,
    DriveBackend,
    ExecutionPlan,
    SequentialBackend,
    Session,
    SessionResult,
    SessionTrace,
    ShardedBackend,
)

__all__ = [
    "breakdown_table",
    "by_level",
    "cascade_depths",
    "movement_breakdown",
    "ExecutionTrace",
    "shrink_failing_prefix",
    "RunResult",
    "run_comparison",
    "run_sequence",
    "Checkpoint",
    "EngineResult",
    "IncrementalVerifier",
    "run_engine",
    "run_sweep",
    "sweep_table",
    "BatchedBackend",
    "DEFAULT_FULL_AUDIT_EVERY",
    "DriveBackend",
    "ExecutionPlan",
    "SequentialBackend",
    "Session",
    "SessionResult",
    "SessionTrace",
    "ShardedBackend",
    "GrowthFit",
    "doubling_series",
    "fit_growth",
    "summarize_series",
    "experiment_header",
    "format_series",
    "format_table",
    "sparkline",
]
