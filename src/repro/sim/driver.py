"""The simulation driver: run request streams through schedulers.

:func:`run_sequence` feeds a :class:`~repro.core.requests.RequestSequence`
to any :class:`~repro.core.base.ReallocatingScheduler`, optionally
verifying feasibility (so every experiment doubles as a correctness
audit) and optionally validating the reservation scheduler's internal
invariants. It returns a :class:`RunResult` with the cost ledger and
summary statistics.

Batching is a first-class dimension: ``batch_size > 1`` chunks the
stream with :func:`~repro.core.requests.iter_batches` and drives the
scheduler through :meth:`~repro.core.base.ReallocatingScheduler.
apply_batch` — one batch context per burst, feasibility checked once
per commit (:meth:`~repro.sim.incremental.IncrementalVerifier.
verify_batch`), and per-request costs still recorded exactly as the
sequential path would (the batch-equivalence contract). With
``atomic_batches=True`` every burst is all-or-nothing: a mid-batch
failure rolls the whole burst back and ends the run with the scheduler
in its pre-burst state. ``batch_size <= 1`` is the classic per-request
loop.

Timing is split by phase: ``scheduler_time_s`` covers only the
``scheduler.apply``/``apply_batch`` calls (the honest algorithm cost
that throughput benchmarks must report), ``audit_time_s`` covers the
verify/validate hooks, and ``wall_time_s`` is the whole loop. Earlier
revisions reported a single wall time that silently included the O(n)
audits, contaminating every throughput number.

Verification defaults to the *incremental* checker
(:class:`~repro.sim.incremental.IncrementalVerifier`): O(changes) per
request — or O(changed jobs) per batch commit — with periodic and final
full audits, keeping verified runs within a small factor of unverified
ones. Pass ``verify_mode="full"`` for the legacy full re-verification
after every step.

:func:`run_comparison` runs several schedulers over the same sequence
and aligns their ledgers for head-to-head reporting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..core.base import ReallocatingScheduler
from ..core.costs import CostLedger
from ..core.exceptions import ReproError
from ..core.requests import RequestSequence, iter_batches
from .incremental import IncrementalVerifier


@dataclass
class RunResult:
    """Outcome of driving one scheduler over one request sequence.

    ``wall_time_s`` is the full loop time; ``scheduler_time_s`` is the
    time spent inside ``scheduler.apply`` only, and ``audit_time_s`` the
    time spent in feasibility verification and invariant validation.
    Throughput numbers must be computed from ``scheduler_time_s``.
    """

    scheduler_name: str
    ledger: CostLedger
    requests_processed: int
    wall_time_s: float
    scheduler_time_s: float = 0.0
    audit_time_s: float = 0.0
    failed: bool = False
    failure: str | None = None
    extras: dict = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        """Throughput over scheduler time only (audits excluded)."""
        if self.scheduler_time_s <= 0:
            return float("nan")
        return self.requests_processed / self.scheduler_time_s

    @property
    def summary(self) -> dict:
        out = {"scheduler": self.scheduler_name,
               "processed": self.requests_processed,
               "wall_s": round(self.wall_time_s, 4),
               "sched_s": round(self.scheduler_time_s, 4),
               "audit_s": round(self.audit_time_s, 4)}
        out.update(self.ledger.summary())
        if self.failed:
            out["FAILED"] = self.failure
        return out


def run_sequence(
    scheduler: ReallocatingScheduler,
    sequence: RequestSequence,
    *,
    batch_size: int = 1,
    atomic_batches: bool = False,
    verify_each: bool = True,
    verify_mode: str = "incremental",
    full_audit_every: int = 256,
    validate_each: Callable[[ReallocatingScheduler], None] | None = None,
    stop_on_error: bool = True,
    name: str | None = None,
) -> RunResult:
    """Drive ``sequence`` through ``scheduler``.

    Parameters
    ----------
    batch_size:
        Chunk the stream into bursts of this size and drive them
        through ``apply_batch`` (1 = classic per-request loop).
        Feasibility and invariant hooks then run once per batch commit.
    atomic_batches:
        With ``batch_size > 1``: apply each burst all-or-nothing; a
        mid-batch failure rolls the burst back entirely.
    verify_each:
        Check schedule feasibility after every request — or, when
        batching, after every batch commit (default on; turn off only
        for throughput benchmarks).
    verify_mode:
        ``"incremental"`` (default) checks each step's placement
        changes in O(changes) and runs a full audit every
        ``full_audit_every`` requests plus once at the end;
        ``"full"`` re-verifies the whole schedule after every step.
    full_audit_every:
        Full-audit period for incremental mode (0 disables periodic
        audits; the final audit always runs).
    validate_each:
        Optional extra validator called with the scheduler after each
        request / batch (e.g. reservation invariant validation).
    stop_on_error:
        If False, a scheduler failure (InfeasibleError or
        UnderallocationError) ends the run gracefully with
        ``failed=True`` instead of raising — used by the gamma-threshold
        ablation, which probes exactly where schedulers break.
    """
    if verify_mode not in ("incremental", "full"):
        raise ValueError(f"unknown verify_mode {verify_mode!r}")
    label = name if name is not None else type(scheduler).__name__
    verifier = (IncrementalVerifier(scheduler.num_machines,
                                    full_audit_every=full_audit_every,
                                    where=label)
                if verify_each and verify_mode == "incremental" else None)
    processed = 0
    sched_s = 0.0
    audit_s = 0.0
    perf = time.perf_counter
    t0 = perf()

    def finish(failure: str | None = None) -> RunResult:
        return RunResult(
            scheduler_name=label,
            ledger=scheduler.ledger,
            requests_processed=processed,
            wall_time_s=perf() - t0,
            scheduler_time_s=sched_s,
            audit_time_s=audit_s,
            failed=failure is not None,
            failure=failure,
        )

    try:
        if batch_size > 1:
            for batch in iter_batches(sequence, batch_size):
                ta = perf()
                result = scheduler.apply_batch(batch, atomic=atomic_batches)
                tb = perf()
                sched_s += tb - ta
                processed += result.processed
                if verify_each:
                    if verifier is not None:
                        verifier.verify_batch(scheduler, result)
                    else:
                        _full_verify(scheduler, label, processed)
                if validate_each is not None:
                    validate_each(scheduler)
                if verify_each or validate_each is not None:
                    audit_s += perf() - tb
                if result.failed:
                    raise result.error
        else:
            for request in sequence:
                ta = perf()
                cost = scheduler.apply(request)
                tb = perf()
                sched_s += tb - ta
                processed += 1
                if verify_each:
                    if verifier is not None:
                        verifier.observe(scheduler, cost)
                    else:
                        _full_verify(scheduler, label, processed)
                if validate_each is not None:
                    validate_each(scheduler)
                if verify_each or validate_each is not None:
                    audit_s += perf() - tb
        if verifier is not None:
            ta = perf()
            verifier.full_audit(scheduler)
            audit_s += perf() - ta
    except ReproError as exc:
        if stop_on_error:
            raise
        return finish(failure=f"{type(exc).__name__}: {exc}")
    return finish()


def _full_verify(scheduler: ReallocatingScheduler, label: str,
                 processed: int) -> None:
    from ..core.schedule import verify_schedule

    verify_schedule(
        scheduler.jobs, scheduler.placements,
        scheduler.num_machines,
        where=f"{label} after request {processed}",
    )


def run_comparison(
    factories: Mapping[str, Callable[[], ReallocatingScheduler]],
    sequence: RequestSequence,
    *,
    batch_size: int = 1,
    atomic_batches: bool = False,
    verify_each: bool = True,
    verify_mode: str = "incremental",
    validate_each: Callable[[ReallocatingScheduler], None] | None = None,
    stop_on_error: bool = True,
) -> dict[str, RunResult]:
    """Run several schedulers over the same sequence (fresh instance each)."""
    results: dict[str, RunResult] = {}
    for label, factory in factories.items():
        results[label] = run_sequence(
            factory(), sequence,
            batch_size=batch_size,
            atomic_batches=atomic_batches,
            verify_each=verify_each,
            verify_mode=verify_mode,
            validate_each=validate_each,
            stop_on_error=stop_on_error,
            name=label,
        )
    return results


def max_cost_series(
    results: Sequence[RunResult],
    key: str = "max_realloc",
) -> list[tuple[str, float]]:
    """Extract one summary metric across runs (label, value) for reports."""
    return [(r.scheduler_name, r.summary.get(key, float("nan"))) for r in results]
