"""The simulation driver: run request sequences through schedulers.

:func:`run_sequence` feeds a :class:`~repro.core.requests.RequestSequence`
to any :class:`~repro.core.base.ReallocatingScheduler`, optionally
verifying feasibility after every request (so every experiment doubles
as a correctness audit) and optionally validating the reservation
scheduler's internal invariants. It returns a :class:`RunResult` with
the cost ledger and summary statistics.

:func:`run_comparison` runs several schedulers over the same sequence
and aligns their ledgers for head-to-head reporting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..core.base import ReallocatingScheduler
from ..core.costs import CostLedger
from ..core.exceptions import ReproError
from ..core.requests import RequestSequence
from ..core.schedule import verify_schedule


@dataclass
class RunResult:
    """Outcome of driving one scheduler over one request sequence."""

    scheduler_name: str
    ledger: CostLedger
    requests_processed: int
    wall_time_s: float
    failed: bool = False
    failure: str | None = None
    extras: dict = field(default_factory=dict)

    @property
    def summary(self) -> dict:
        out = {"scheduler": self.scheduler_name,
               "processed": self.requests_processed,
               "wall_s": round(self.wall_time_s, 4)}
        out.update(self.ledger.summary())
        if self.failed:
            out["FAILED"] = self.failure
        return out


def run_sequence(
    scheduler: ReallocatingScheduler,
    sequence: RequestSequence,
    *,
    verify_each: bool = True,
    validate_each: Callable[[ReallocatingScheduler], None] | None = None,
    stop_on_error: bool = True,
    name: str | None = None,
) -> RunResult:
    """Drive ``sequence`` through ``scheduler``.

    Parameters
    ----------
    verify_each:
        Check schedule feasibility after every request (default on; turn
        off only for throughput benchmarks).
    validate_each:
        Optional extra validator called with the scheduler after each
        request (e.g. reservation invariant validation).
    stop_on_error:
        If False, a scheduler failure (InfeasibleError or
        UnderallocationError) ends the run gracefully with
        ``failed=True`` instead of raising — used by the gamma-threshold
        ablation, which probes exactly where schedulers break.
    """
    label = name if name is not None else type(scheduler).__name__
    processed = 0
    t0 = time.perf_counter()
    try:
        for request in sequence:
            scheduler.apply(request)
            processed += 1
            if verify_each:
                verify_schedule(
                    scheduler.jobs, scheduler.placements,
                    scheduler.num_machines,
                    where=f"{label} after request {processed}",
                )
            if validate_each is not None:
                validate_each(scheduler)
    except ReproError as exc:
        if stop_on_error:
            raise
        return RunResult(
            scheduler_name=label,
            ledger=scheduler.ledger,
            requests_processed=processed,
            wall_time_s=time.perf_counter() - t0,
            failed=True,
            failure=f"{type(exc).__name__}: {exc}",
        )
    return RunResult(
        scheduler_name=label,
        ledger=scheduler.ledger,
        requests_processed=processed,
        wall_time_s=time.perf_counter() - t0,
    )


def run_comparison(
    factories: Mapping[str, Callable[[], ReallocatingScheduler]],
    sequence: RequestSequence,
    *,
    verify_each: bool = True,
    stop_on_error: bool = True,
) -> dict[str, RunResult]:
    """Run several schedulers over the same sequence (fresh instance each)."""
    results: dict[str, RunResult] = {}
    for label, factory in factories.items():
        results[label] = run_sequence(
            factory(), sequence,
            verify_each=verify_each,
            stop_on_error=stop_on_error,
            name=label,
        )
    return results


def max_cost_series(
    results: Sequence[RunResult],
    key: str = "max_realloc",
) -> list[tuple[str, float]]:
    """Extract one summary metric across runs (label, value) for reports."""
    return [(r.scheduler_name, r.summary.get(key, float("nan"))) for r in results]
