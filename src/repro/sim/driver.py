"""The classic driver surface: thin adapters over the Session loop.

:func:`run_sequence` is the small-run entry point — feed a
:class:`~repro.core.requests.RequestSequence` to any
:class:`~repro.core.base.ReallocatingScheduler`, get a
:class:`RunResult` back. Since the unified execution API landed, it no
longer owns a drive loop: it builds an
:class:`~repro.sim.session.ExecutionPlan` and delegates to
:class:`~repro.sim.session.Session`, which carries the one shared loop
(timing split, verifier wiring, failure handling) for this module,
:mod:`repro.sim.engine`, and every benchmark. Use ``Session`` directly
for the full surface (drive backends, traces, resume); use
``run_sequence`` when you want the historical call shape:

- ``batch_size > 1`` drives bursts through ``apply_batch``
  (``atomic_batches=True`` for all-or-nothing bursts); ``backend=``
  picks the drive backend explicitly (``"sharded"`` fans each burst
  out to per-machine shard workers on delegating stacks).
- ``verify_each``/``verify_mode`` wire the incremental or full
  feasibility checker; the full-audit period defaults to the one
  shared :data:`~repro.sim.session.DEFAULT_FULL_AUDIT_EVERY`.
- timing stays split by phase: ``scheduler_time_s`` is the honest
  algorithm cost, ``audit_time_s`` the verify/validate hooks.

:func:`run_comparison` runs several schedulers over the same sequence
and aligns their ledgers for head-to-head reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..core.base import ReallocatingScheduler
from ..core.costs import CostLedger
from ..core.requests import RequestSequence
from .session import DEFAULT_FULL_AUDIT_EVERY, DriveBackend, ExecutionPlan, Session


@dataclass
class RunResult:
    """Outcome of driving one scheduler over one request sequence.

    ``wall_time_s`` is the full loop time; ``scheduler_time_s`` is the
    time spent inside ``scheduler.apply`` only, and ``audit_time_s`` the
    time spent in feasibility verification and invariant validation.
    Throughput numbers must be computed from ``scheduler_time_s``.
    """

    scheduler_name: str
    ledger: CostLedger
    requests_processed: int
    wall_time_s: float
    scheduler_time_s: float = 0.0
    audit_time_s: float = 0.0
    failed: bool = False
    failure: str | None = None
    extras: dict = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        """Throughput over scheduler time only (audits excluded)."""
        if self.scheduler_time_s <= 0:
            return float("nan")
        return self.requests_processed / self.scheduler_time_s

    @property
    def summary(self) -> dict:
        out = {"scheduler": self.scheduler_name,
               "processed": self.requests_processed,
               "wall_s": round(self.wall_time_s, 4),
               "sched_s": round(self.scheduler_time_s, 4),
               "audit_s": round(self.audit_time_s, 4)}
        out.update(self.ledger.summary())
        if self.failed:
            out["FAILED"] = self.failure
        return out


def run_sequence(
    scheduler: ReallocatingScheduler,
    sequence: RequestSequence,
    *,
    batch_size: int = 1,
    atomic_batches: bool = False,
    batch_semantics: str = "strict",
    backend: "str | DriveBackend" = "auto",
    shard_workers: str | None = None,
    shard_parallel: bool = False,
    verify_each: bool = True,
    verify_mode: str = "incremental",
    full_audit_every: int | None = None,
    validate_each: Callable[[ReallocatingScheduler], None] | None = None,
    stop_on_error: bool = True,
    name: str | None = None,
) -> RunResult:
    """Drive ``sequence`` through ``scheduler`` (a Session adapter).

    Parameters
    ----------
    batch_size:
        Chunk the stream into bursts of this size and drive them
        through ``apply_batch`` (1 = classic per-request loop).
        Feasibility and invariant hooks then run once per batch commit.
    atomic_batches:
        With ``batch_size > 1``: apply each burst all-or-nothing; a
        mid-batch failure rolls the burst back entirely.
    batch_semantics:
        ``"strict"`` (default, placement-identical replay) or
        ``"flexible"`` (jointly planned bursts — bounds-equivalent, see
        :class:`~repro.sim.session.ExecutionPlan`).
    backend:
        Drive backend: ``"auto"`` (default — batched when
        ``batch_size > 1``, else sequential), ``"sequential"``,
        ``"batched"``, ``"sharded"``, or a
        :class:`~repro.sim.session.DriveBackend` instance.
    verify_each:
        Check schedule feasibility after every request — or, when
        batching, after every batch commit (default on; turn off only
        for throughput benchmarks).
    verify_mode:
        ``"incremental"`` (default) checks each step's placement
        changes in O(changes) and runs a full audit every
        ``full_audit_every`` requests plus once at the end;
        ``"full"`` re-verifies the whole schedule after every step.
    full_audit_every:
        Full-audit period for incremental mode (None = the shared
        :data:`~repro.sim.session.DEFAULT_FULL_AUDIT_EVERY`; 0 disables
        periodic audits; the final audit always runs).
    validate_each:
        Optional extra validator called with the scheduler after each
        request / batch (e.g. reservation invariant validation).
    stop_on_error:
        If False, a scheduler failure (InfeasibleError or
        UnderallocationError) ends the run gracefully with
        ``failed=True`` instead of raising — used by the gamma-threshold
        ablation, which probes exactly where schedulers break.
    """
    if verify_mode not in ("incremental", "full"):
        raise ValueError(f"unknown verify_mode {verify_mode!r}")
    plan = ExecutionPlan(
        batch_size=batch_size,
        atomic_batches=atomic_batches,
        batch_semantics=batch_semantics,
        backend=backend,
        shard_workers=shard_workers,
        shard_parallel=shard_parallel,
        verify=verify_mode if verify_each else "off",
        full_audit_every=(full_audit_every if full_audit_every is not None
                          else DEFAULT_FULL_AUDIT_EVERY),
        validator=validate_each,
        validate_every=1,
        stop_on_error=stop_on_error,
        name=name,
    )
    res = Session(scheduler, sequence, plan).run()
    return RunResult(
        scheduler_name=res.name,
        ledger=res.ledger,
        requests_processed=res.requests_processed,
        wall_time_s=res.wall_time_s,
        scheduler_time_s=res.scheduler_time_s,
        audit_time_s=res.audit_time_s,
        failed=res.failed,
        failure=res.failure,
    )


def run_comparison(
    factories: Mapping[str, Callable[[], ReallocatingScheduler]],
    sequence: RequestSequence,
    *,
    batch_size: int = 1,
    atomic_batches: bool = False,
    batch_semantics: str = "strict",
    backend: "str | DriveBackend" = "auto",
    shard_workers: str | None = None,
    shard_parallel: bool = False,
    verify_each: bool = True,
    verify_mode: str = "incremental",
    validate_each: Callable[[ReallocatingScheduler], None] | None = None,
    stop_on_error: bool = True,
) -> dict[str, RunResult]:
    """Run several schedulers over the same sequence (fresh instance each)."""
    results: dict[str, RunResult] = {}
    for label, factory in factories.items():
        results[label] = run_sequence(
            factory(), sequence,
            batch_size=batch_size,
            atomic_batches=atomic_batches,
            batch_semantics=batch_semantics,
            backend=backend,
            shard_workers=shard_workers,
            shard_parallel=shard_parallel,
            verify_each=verify_each,
            verify_mode=verify_mode,
            validate_each=validate_each,
            stop_on_error=stop_on_error,
            name=label,
        )
    return results


def max_cost_series(
    results: Sequence[RunResult],
    key: str = "max_realloc",
) -> list[tuple[str, float]]:
    """Extract one summary metric across runs (label, value) for reports."""
    return [(r.scheduler_name, r.summary.get(key, float("nan"))) for r in results]
