"""The unified execution API: one drive loop, pluggable backends.

Every way of running a request stream through a scheduler — the classic
per-request driver, the batch engine, scenario sweeps, benchmarks —
used to carry its own copy of the drive loop, and the copies drifted
(timing splits, verifier wiring, failure handling, even the
``full_audit_every`` default). :class:`Session` is the one loop they
all share now:

- an :class:`ExecutionPlan` bundles every policy knob — batching,
  verification, validation, checkpoint cadence, trace/resume, failure
  handling — with ONE set of defaults;
- a :class:`DriveBackend` turns the request stream into *steps* and
  applies each step to the scheduler:

  * :class:`SequentialBackend` — one request per step via
    ``scheduler.apply`` (the classic loop);
  * :class:`BatchedBackend` — one :class:`~repro.core.requests.Batch`
    per step via ``apply_batch`` (optionally atomic);
  * :class:`ShardedBackend` — one batch per step via
    ``apply_batch_sharded``: the delegation layer splits the burst into
    per-machine sub-batches (``machine_sub_batches`` /
    ``plan_shard_execution``), one worker drives each machine's
    sub-batch, and the per-shard touched logs merge back into the
    incrementally-maintained placement map with a merged-commit verify
    per batch. Requires a delegating scheduler stack
    (``supports_sharded_batches()``). ``workers`` selects the worker
    flavor — ``"serial"`` / ``"threads"`` (in-process, GIL-bound) or
    ``"processes"``: each machine's sub-scheduler lives persistently in
    a worker process across bursts (state never ships per burst; only
    op streams and per-op touched logs cross the pipe), the one flavor
    with real parallelism on multicore hardware.

    Process-worker lifecycle: the pool spawns lazily on the first
    process burst, stays resident for the whole session, and is
    released by the backend's ``finish`` hook when the session ends
    (state syncs back into the in-memory scheduler, so the final audit
    and any later in-memory use see live sub-schedulers). Failure
    semantics: every sharded burst is transactional — a shard failure
    or a worker-process crash rolls the whole burst back before
    anything merges, crashed workers are re-seeded from their last
    state snapshot plus a committed op-stream replay, and the session's
    normal failure policy sees the burst's error
    (:class:`~repro.core.exceptions.WorkerCrashError` for crashes); the
    scheduler remains usable, so a traced session can resume across a
    worker restart.

  All three backends produce identical placements, ledger entries, and
  max-span tracking on the same sequence (property-tested); they differ
  only in *how* the work is driven.

- the session owns the timing split (scheduler / verify / validate),
  the :class:`~repro.sim.incremental.IncrementalVerifier` wiring with
  periodic and final full audits, checkpointing, and the disk-backed
  JSONL trace writer (:class:`SessionTrace`) that makes long runs
  resumable (deterministic prefix replay) and comparable across PRs.

``repro.sim.driver.run_sequence``, ``repro.sim.engine.run_engine``, and
``repro.sim.engine.run_sweep`` are thin adapters over ``Session.run()``.

The one full-audit period
-------------------------
:data:`DEFAULT_FULL_AUDIT_EVERY` is 1024, defined here and nowhere
else (the driver used 256 and the engine 1024 before they were
collapsed). Rationale: periodic full audits are O(n) each and exist
only to *localize* an unreported placement change earlier than the
mandatory end-of-run audit would; at 1024 their cost is negligible even
at engine scale (10^5+ requests), while the old 256 default bought
nothing for driver-scale runs (a few hundred requests) because those
are covered by the final audit anyway.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from ..core.base import (
    ReallocatingScheduler,
    SHARD_WORKER_MODES,
    resolve_batch_semantics,
    resolve_shard_worker_mode,
)
from ..core.costs import BatchResult, CostLedger, RequestCost
from ..core.exceptions import InvalidRequestError, ReproError
from ..core.requests import Batch, InsertJob, Request, iter_batches
from .incremental import IncrementalVerifier

#: The single full-audit period for incremental verification (see the
#: module docstring for why 1024). 0 disables periodic audits; the
#: final audit always runs.
DEFAULT_FULL_AUDIT_EVERY = 1024

#: Checkpoint cadence a traced run falls back to when the plan sets no
#: ``checkpoint_every`` — a trace without periodic records would not be
#: resumable at all.
DEFAULT_TRACE_CHECKPOINT_EVERY = 1024

VERIFY_MODES = ("incremental", "full", "off")
BACKENDS = ("auto", "sequential", "batched", "sharded")


@dataclass
class Checkpoint:
    """Progress snapshot emitted on the plan's checkpoint cadence."""

    processed: int
    wall_time_s: float
    scheduler_time_s: float
    verify_time_s: float
    validate_time_s: float

    @property
    def requests_per_second(self) -> float:
        if self.scheduler_time_s <= 0:
            return float("nan")
        return self.processed / self.scheduler_time_s


@dataclass
class ExecutionPlan:
    """Everything a drive loop needs beyond (scheduler, sequence).

    Parameters
    ----------
    batch_size:
        Step size for the batched/sharded backends (1 = per-request).
    atomic_batches:
        Batched backend only: apply each burst all-or-nothing. The
        sharded backend is always transactional per burst.
    batch_semantics:
        ``"strict"`` (default — bursts replay request-for-request, the
        placement-identical oracle) or ``"flexible"`` (each burst is
        planned jointly: deletes coalesced first, interior insert/delete
        pairs elided, surviving inserts placed in span order; placements
        may differ from strict but feasibility, the job table, max-span
        tracking, and the Theorem 1 per-request cost bounds are
        preserved). Applies to the batched and sharded backends; the
        sequential backend ignores it (a size-1 step has nothing to
        plan).
    backend:
        ``"sequential"``, ``"batched"``, ``"sharded"``, ``"auto"``
        (batched when ``batch_size > 1``, else sequential), or a
        ready-made :class:`DriveBackend` instance.
    shard_workers:
        Sharded backend only: the worker flavor — ``"serial"``
        (default), ``"threads"`` (in-process thread pool; identical
        results, GIL-bound — see bench E12), or ``"processes"``
        (process-resident per-machine sub-schedulers, the flavor with
        real parallelism — see bench E13 and the module docstring for
        lifecycle and failure semantics).
    shard_parallel:
        Deprecated alias: ``True`` means ``shard_workers="threads"``
        (ignored when ``shard_workers`` is set explicitly).
    verify:
        ``"incremental"`` (default), ``"full"``, or ``"off"``.
    full_audit_every:
        Full-audit period for incremental verification — THE default
        lives here (:data:`DEFAULT_FULL_AUDIT_EVERY`).
    validator / validate_every:
        Optional invariant validator, called every ``validate_every``
        processed requests (0 disables); timed separately.
    checkpoint_every:
        Record (and trace) a :class:`Checkpoint` every this many
        requests (0 = off; a set ``trace_path`` falls back to
        :data:`DEFAULT_TRACE_CHECKPOINT_EVERY` so traces stay
        resumable).
    stop_on_error:
        Raise scheduler failures instead of finishing gracefully with
        ``failed=True``.
    stop_after:
        End the run (gracefully, ``interrupted=True``) after this many
        requests processed *in this session* — the deterministic "kill"
        half of a resumable-run round trip (0 = off).
    trace_path / resume:
        JSONL trace file. With ``resume=True`` the session reads the
        trace, replays the already-committed prefix (schedulers are
        deterministic, so the replay reproduces placements and ledger
        bit for bit), seeds the verifier mirror, and continues from the
        last checkpoint, appending to the trace.
    """

    batch_size: int = 1
    atomic_batches: bool = False
    batch_semantics: str = "strict"
    backend: "str | DriveBackend" = "auto"
    shard_workers: str | None = None
    shard_parallel: bool = False
    verify: str = "incremental"
    full_audit_every: int = DEFAULT_FULL_AUDIT_EVERY
    validator: Callable[[ReallocatingScheduler], None] | None = None
    validate_every: int = 1
    checkpoint_every: int = 0
    on_checkpoint: Callable[[Checkpoint], None] | None = None
    stop_on_error: bool = False
    stop_after: int = 0
    trace_path: str | Path | None = None
    resume: bool = False
    name: str | None = None

    def __post_init__(self) -> None:
        if self.verify not in VERIFY_MODES:
            raise ValueError(
                f"verify must be one of {VERIFY_MODES}, got {self.verify!r}")
        if isinstance(self.backend, str) and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if (self.shard_workers is not None
                and self.shard_workers not in SHARD_WORKER_MODES):
            raise ValueError(
                f"shard_workers must be one of {SHARD_WORKER_MODES}, "
                f"got {self.shard_workers!r}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        resolve_batch_semantics(self.batch_semantics)

    @property
    def resolved_shard_workers(self) -> str:
        """The effective worker mode (deprecated flag folded in)."""
        return resolve_shard_worker_mode(self.shard_workers,
                                         self.shard_parallel)


@dataclass
class StepOutcome:
    """What one backend step did: requests committed, costs, failure."""

    processed: int
    cost: RequestCost | None = None
    batch: BatchResult | None = None
    error: ReproError | None = None


class DriveBackend:
    """How a session turns the request stream into applied steps.

    ``steps`` chunks the stream (honoring a resume offset); ``apply``
    executes one step against the scheduler and reports a
    :class:`StepOutcome`. Per-request backends may let scheduler
    exceptions propagate (the session's failure handling catches them);
    batch-shaped backends report failures through the outcome so the
    committed prefix still gets verified.
    """

    name = "?"
    #: batch-shaped backends commit in multiples of batch_size, which
    #: constrains the offsets a resume may start from
    chunked = False

    def prepare(self, scheduler: ReallocatingScheduler,
                plan: ExecutionPlan) -> None:
        """Hook: validate scheduler/plan compatibility at run start.

        Raise :class:`~repro.core.exceptions.InvalidRequestError` for an
        incompatible pairing — it flows through the session's normal
        failure policy (``failed=True`` or raise per ``stop_on_error``),
        so one bad sweep cell cannot take down the whole sweep.
        """

    def steps(self, sequence: Iterable[Request], plan: ExecutionPlan,
              skip: int = 0) -> Iterator:
        raise NotImplementedError

    def apply(self, scheduler: ReallocatingScheduler,
              step: Any) -> StepOutcome:
        raise NotImplementedError

    def finish(self, scheduler: ReallocatingScheduler) -> None:
        """Hook: release backend-held resources at session end.

        Runs on every exit path (success, failure, interruption). The
        sharded backend uses it to release process-resident shard
        workers, syncing their state back into the scheduler.
        """


class SequentialBackend(DriveBackend):
    """The classic per-request loop: one ``scheduler.apply`` per step."""

    name = "sequential"

    def steps(self, sequence: Iterable[Request], plan: ExecutionPlan,
              skip: int = 0) -> Iterator[Request]:
        return islice(iter(sequence), skip, None)

    def apply(self, scheduler: ReallocatingScheduler,
              step: Request) -> StepOutcome:
        return StepOutcome(processed=1, cost=scheduler.apply(step))


class BatchedBackend(DriveBackend):
    """One ``apply_batch`` burst per step (atomic per the plan)."""

    name = "batched"
    chunked = True

    def __init__(self, *, atomic: bool = False,
                 semantics: str = "strict") -> None:
        self.atomic = atomic
        self.semantics = resolve_batch_semantics(semantics)

    def steps(self, sequence: Iterable[Request], plan: ExecutionPlan,
              skip: int = 0) -> Iterator[Batch]:
        return iter_batches(islice(iter(sequence), skip, None),
                            plan.batch_size)

    def apply(self, scheduler: ReallocatingScheduler,
              step: Batch) -> StepOutcome:
        result = scheduler.apply_batch(step, atomic=self.atomic,
                                       semantics=self.semantics)
        return StepOutcome(processed=result.processed, batch=result,
                           error=result.error if result.failed else None)


class ShardedBackend(DriveBackend):
    """One ``apply_batch_sharded`` burst per step: per-machine workers.

    The delegation layer plans each burst's per-machine sub-batches,
    one shard worker applies each machine's stream, and the per-shard
    touched logs merge into the incrementally-maintained placement map;
    the session then verifies the merged commit once per batch. Bursts
    are always transactional (a shard failure — or a worker-process
    crash — rolls the burst back wholesale).

    ``workers`` selects the worker flavor (``"serial"`` / ``"threads"``
    / ``"processes"``); with ``"processes"`` the per-machine
    sub-schedulers live in persistent worker processes for the whole
    session and :meth:`finish` syncs their state back and releases them
    on every exit path (see the module docstring for the lifecycle and
    failure semantics).
    """

    name = "sharded"
    chunked = True

    def __init__(self, *, workers: str | None = None,
                 parallel: bool = False,
                 semantics: str = "strict") -> None:
        self.workers = resolve_shard_worker_mode(workers, parallel)
        self.semantics = resolve_batch_semantics(semantics)

    def prepare(self, scheduler: ReallocatingScheduler,
                plan: ExecutionPlan) -> None:
        if not scheduler.supports_sharded_batches():
            raise InvalidRequestError(
                f"{type(scheduler).__name__} does not support sharded "
                "execution (needs a delegating scheduler stack with "
                "atomic-capable per-machine sub-schedulers)"
            )

    def steps(self, sequence: Iterable[Request], plan: ExecutionPlan,
              skip: int = 0) -> Iterator[Batch]:
        return iter_batches(islice(iter(sequence), skip, None),
                            plan.batch_size)

    def apply(self, scheduler: ReallocatingScheduler,
              step: Batch) -> StepOutcome:
        result = scheduler.apply_batch_sharded(step, workers=self.workers,
                                               semantics=self.semantics)
        return StepOutcome(processed=result.processed, batch=result,
                           error=result.error if result.failed else None)

    def finish(self, scheduler: ReallocatingScheduler) -> None:
        if self.workers == "processes":
            scheduler.close_shard_workers()


def resolve_backend(plan: ExecutionPlan) -> DriveBackend:
    """Build the plan's backend (``auto`` keys off ``batch_size``)."""
    backend = plan.backend
    if isinstance(backend, DriveBackend):
        return backend
    if backend == "auto":
        backend = "batched" if plan.batch_size > 1 else "sequential"
    if backend == "sequential":
        return SequentialBackend()
    if backend == "batched":
        return BatchedBackend(atomic=plan.atomic_batches,
                              semantics=plan.batch_semantics)
    return ShardedBackend(workers=plan.resolved_shard_workers,
                          semantics=plan.batch_semantics)


# ----------------------------------------------------------------------
# disk-backed JSONL trace (resumable runs, cross-PR comparison)
# ----------------------------------------------------------------------
def sequence_fingerprint(sequence: Iterable[Request]) -> str:
    """Stable hash of a request stream (guards resume against mixups)."""
    h = hashlib.sha256()
    for r in sequence:
        if isinstance(r, InsertJob):
            job = r.job
            h.update(f"i|{job.id}|{job.release}|{job.deadline}|{job.size}\n"
                     .encode())
        else:
            h.update(f"d|{r.job_id}\n".encode())
    return h.hexdigest()[:16]


def placements_fingerprint(scheduler: ReallocatingScheduler) -> str:
    """Stable hash of the final placements (cross-PR drift detection)."""
    h = hashlib.sha256()
    for job_id, pl in sorted(scheduler.placements.items(),
                             key=lambda kv: str(kv[0])):
        h.update(f"{job_id}|{pl.machine}|{pl.slot}\n".encode())
    return h.hexdigest()[:16]


class SessionTrace:
    """Append-only JSONL record of one session's progress.

    One ``header`` line (run identity + sequence fingerprint), a
    ``checkpoint`` line per checkpoint cadence, an optional ``resume``
    line per continuation, and a ``final`` line when the run completes.
    Every line is flushed immediately, so a killed run leaves a valid
    trace ending at its last checkpoint — :meth:`read_records` /
    :meth:`resume_offset` are what a resuming session reads back.
    """

    def __init__(self, path: str | Path, *, append: bool = False) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "a" if append else "w")

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    # -- reading ---------------------------------------------------------
    @staticmethod
    def read_records(path: str | Path) -> list[dict]:
        records = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    @staticmethod
    def resume_offset(records: list[dict]) -> int:
        """Requests durably committed per the last checkpoint/final line."""
        processed = 0
        for rec in records:
            if rec.get("type") in ("checkpoint", "final"):
                processed = max(processed, int(rec.get("processed", 0)))
        return processed

    @staticmethod
    def final_record(records: list[dict]) -> dict | None:
        for rec in reversed(records):
            if rec.get("type") == "final":
                return rec
        return None


# ----------------------------------------------------------------------
# the session
# ----------------------------------------------------------------------
@dataclass
class SessionResult:
    """Outcome of one :meth:`Session.run`, with per-phase timing.

    ``scheduler_time_s`` covers only the backend's apply calls (the
    honest algorithm cost throughput must be computed from);
    ``verify_time_s`` / ``validate_time_s`` the audit hooks. A resumed
    run reports the prefix replay separately (``replay_time_s``,
    excluded from ``scheduler_time_s``) while the ledger covers the
    whole execution.
    """

    name: str
    scheduler_name: str
    backend: str
    requests_processed: int
    wall_time_s: float
    scheduler_time_s: float
    verify_time_s: float
    validate_time_s: float
    verify_mode: str
    ledger: CostLedger
    failed: bool = False
    failure: str | None = None
    interrupted: bool = False
    resumed_from: int = 0
    replay_time_s: float = 0.0
    checkpoints: list[Checkpoint] = field(default_factory=list)

    @property
    def audit_time_s(self) -> float:
        return self.verify_time_s + self.validate_time_s

    @property
    def requests_per_second(self) -> float:
        if self.scheduler_time_s <= 0:
            return float("nan")
        worked = self.requests_processed - self.resumed_from
        return worked / self.scheduler_time_s


class Session:
    """One scheduler, one request stream, one plan — one drive loop.

    Example
    -------
    >>> from repro.core.api import ReservationScheduler
    >>> from repro.sim.session import ExecutionPlan, Session
    >>> from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence
    >>> seq = random_aligned_sequence(AlignedWorkloadConfig(num_requests=64))
    >>> plan = ExecutionPlan(batch_size=16, backend="batched")
    >>> result = Session(ReservationScheduler(1, gamma=8), seq, plan).run()
    >>> result.requests_processed
    64
    """

    def __init__(
        self,
        scheduler: ReallocatingScheduler,
        sequence: Iterable[Request],
        plan: ExecutionPlan | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.sequence = sequence
        self.plan = plan if plan is not None else ExecutionPlan()
        self.backend = resolve_backend(self.plan)
        self.label = (self.plan.name if self.plan.name is not None
                      else type(scheduler).__name__)

    # ------------------------------------------------------------------
    def run(self) -> SessionResult:
        plan = self.plan
        scheduler = self.scheduler
        backend = self.backend
        label = self.label
        verifier = (IncrementalVerifier(scheduler.num_machines,
                                        full_audit_every=plan.full_audit_every,
                                        where=label)
                    if plan.verify == "incremental" else None)

        trace: SessionTrace | None = None
        resume_from = 0
        fingerprint = None
        if plan.trace_path is not None:
            # Fingerprinting (and a resume's prefix replay) iterate the
            # stream before the drive loop does, so a one-shot iterator
            # must be materialized or the loop would see it exhausted.
            if iter(self.sequence) is self.sequence:
                self.sequence = list(self.sequence)
            fingerprint = sequence_fingerprint(self.sequence)
            resume_from = self._prepare_resume(fingerprint)
            trace = SessionTrace(plan.trace_path, append=resume_from > 0)

        perf = time.perf_counter
        t0 = perf()
        replay_s = 0.0
        if resume_from:
            for request in islice(iter(self.sequence), 0, resume_from):
                scheduler.apply(request)
            replay_s = perf() - t0
            if verifier is not None:
                verifier.seed(scheduler, processed=resume_from)

        if trace is not None:
            if resume_from:
                trace.write({"type": "resume", "processed": resume_from,
                             "replay_s": round(replay_s, 4)})
            else:
                trace.write(self._header(fingerprint))
        cadence = plan.checkpoint_every or (
            DEFAULT_TRACE_CHECKPOINT_EVERY if trace is not None else 0)

        processed = resume_from
        sched_s = verify_s = validate_s = 0.0
        checkpoints: list[Checkpoint] = []
        last_marker = resume_from
        interrupted = False

        def checkpoint() -> None:
            cp = Checkpoint(processed, perf() - t0, sched_s,
                            verify_s, validate_s)
            checkpoints.append(cp)
            if plan.on_checkpoint is not None:
                plan.on_checkpoint(cp)
            if trace is not None:
                trace.write({
                    "type": "checkpoint", "processed": processed,
                    "wall_s": round(cp.wall_time_s, 4),
                    "sched_s": round(sched_s, 4),
                    "verify_s": round(verify_s, 4),
                    "validate_s": round(validate_s, 4),
                    "ledger": scheduler.ledger.summary(),
                })

        def finish(failure: str | None = None) -> SessionResult:
            result = SessionResult(
                name=label,
                scheduler_name=type(scheduler).__name__,
                backend=backend.name,
                requests_processed=processed,
                wall_time_s=perf() - t0,
                scheduler_time_s=sched_s,
                verify_time_s=verify_s,
                validate_time_s=validate_s,
                verify_mode=plan.verify,
                ledger=scheduler.ledger,
                failed=failure is not None,
                failure=failure,
                interrupted=interrupted,
                resumed_from=resume_from,
                replay_time_s=replay_s,
                checkpoints=checkpoints,
            )
            if trace is not None:
                if not interrupted:
                    trace.write({
                        "type": "final", "processed": processed,
                        "resumed_from": resume_from,
                        "failed": result.failed, "failure": failure,
                        "wall_s": round(result.wall_time_s, 4),
                        "sched_s": round(sched_s, 4),
                        "verify_s": round(verify_s, 4),
                        "validate_s": round(validate_s, 4),
                        "verify_mode": plan.verify,
                        "scheduler": type(scheduler).__name__,
                        "backend": backend.name,
                        "ledger": scheduler.ledger.summary(),
                        "placements": placements_fingerprint(scheduler),
                    })
                trace.close()
            return result

        try:
            backend.prepare(scheduler, plan)
            for step in backend.steps(self.sequence, plan, skip=resume_from):
                ta = perf()
                outcome = backend.apply(scheduler, step)
                tb = perf()
                sched_s += tb - ta
                processed += outcome.processed
                if verifier is not None:
                    if outcome.batch is not None:
                        verifier.verify_batch(scheduler, outcome.batch)
                    else:
                        verifier.observe(scheduler, outcome.cost)
                    verify_s += perf() - tb
                elif plan.verify == "full":
                    _full_verify(scheduler, label, processed)
                    verify_s += perf() - tb
                if (plan.validator is not None and plan.validate_every
                        and processed // plan.validate_every
                        > last_marker // plan.validate_every):
                    tc = perf()
                    plan.validator(scheduler)
                    validate_s += perf() - tc
                if (cadence and processed // cadence > last_marker // cadence):
                    checkpoint()
                last_marker = processed
                if outcome.error is not None:
                    raise outcome.error
                if (plan.stop_after
                        and processed - resume_from >= plan.stop_after):
                    interrupted = True
                    if not checkpoints or checkpoints[-1].processed != processed:
                        checkpoint()
                    break
            # Release backend resources before the final audit so
            # process-resident worker state is synced back and the audit
            # (and any caller) sees live in-memory sub-schedulers.
            backend.finish(scheduler)
            if verifier is not None and not interrupted:
                ta = perf()
                verifier.full_audit(scheduler)
                verify_s += perf() - ta
        except ReproError as exc:
            failure = f"{type(exc).__name__}: {exc}"
            if plan.stop_on_error:
                finish(failure)
                raise
            return finish(failure)
        finally:
            # Safety net for the failure/interrupt exit paths (the
            # success path already ran this before the final audit);
            # idempotent — a released pool is a no-op.
            backend.finish(scheduler)
        return finish()

    # ------------------------------------------------------------------
    def _header(self, fingerprint: str | None) -> dict:
        total = None
        try:
            total = len(self.sequence)  # type: ignore[arg-type]
        except TypeError:
            pass
        return {
            "type": "header", "name": self.label,
            "scheduler": type(self.scheduler).__name__,
            "backend": self.backend.name,
            "batch_size": self.plan.batch_size,
            "atomic": self.plan.atomic_batches,
            "semantics": self.plan.batch_semantics,
            "verify": self.plan.verify,
            "full_audit_every": self.plan.full_audit_every,
            "total": total,
            "fingerprint": fingerprint,
        }

    def _prepare_resume(self, fingerprint: str) -> int:
        plan = self.plan
        path = Path(plan.trace_path)
        if not plan.resume or not path.exists():
            return 0
        records = SessionTrace.read_records(path)
        header = next((r for r in records if r.get("type") == "header"), None)
        if header is None:
            raise ValueError(f"trace {path} has no header record")
        if header.get("fingerprint") != fingerprint:
            raise ValueError(
                f"trace {path} was recorded for a different request "
                "sequence (fingerprint mismatch); refusing to resume"
            )
        resume_from = SessionTrace.resume_offset(records)
        if self.backend.chunked and plan.batch_size > 1:
            # batch-shaped backends commit whole bursts; restart at the
            # last burst boundary at or below the recorded offset
            resume_from -= resume_from % plan.batch_size
        return resume_from


def _full_verify(scheduler: ReallocatingScheduler, label: str,
                 processed: int) -> None:
    from ..core.schedule import verify_schedule

    verify_schedule(
        scheduler.jobs, scheduler.placements,
        scheduler.num_machines,
        where=f"{label} after request {processed}",
    )
