"""Batch simulation engine for scenario-scale runs.

:func:`run_engine` is the scaled-up sibling of
:func:`~repro.sim.driver.run_sequence`, built for driving 10^4-10^6
request workloads while keeping measurements honest:

- **Separated timing phases** — scheduler, verify, and validate time are
  accumulated independently (:class:`EngineResult`), so throughput is
  always computed over pure scheduler time even in audited runs.
- **Incremental verification** — feasibility is checked per request in
  O(changes) via :class:`~repro.sim.incremental.IncrementalVerifier`,
  with periodic and final full audits, instead of the O(n)-per-request
  full re-verification the driver historically paid.
- **Checkpointed progress** — every ``checkpoint_every`` requests the
  engine records (and optionally reports through ``on_checkpoint``) the
  running request rate and phase split, so multi-minute sweeps are
  observable and a crash keeps partial measurements.
- **Batch-first driving** — ``batch_size > 1`` chunks the stream into
  :class:`~repro.core.requests.Batch` bursts applied through
  ``apply_batch`` (optionally ``atomic_batches=True`` for
  all-or-nothing bursts), with feasibility checked once per commit;
  batching is a first-class dimension of every engine experiment.

:func:`run_sweep` fans one or many schedulers across a dictionary of
scenario sequences — the CLI's ``sweep`` command builds the scenario set
from :data:`~repro.workloads.scenarios.SCENARIOS` — and returns per-cell
:class:`EngineResult` objects plus a formatted comparison table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..core.base import ReallocatingScheduler
from ..core.exceptions import ReproError
from ..core.requests import RequestSequence, iter_batches
from .incremental import IncrementalVerifier
from .report import format_table

VERIFY_MODES = ("incremental", "full", "off")


@dataclass
class Checkpoint:
    """Progress snapshot emitted every ``checkpoint_every`` requests."""

    processed: int
    wall_time_s: float
    scheduler_time_s: float
    verify_time_s: float
    validate_time_s: float

    @property
    def requests_per_second(self) -> float:
        if self.scheduler_time_s <= 0:
            return float("nan")
        return self.processed / self.scheduler_time_s


@dataclass
class EngineResult:
    """Outcome of one engine run, with per-phase timing.

    ``scheduler_time_s`` covers only ``scheduler.apply``;
    ``verify_time_s`` the feasibility checks; ``validate_time_s`` the
    invariant validator. ``requests_per_second`` is computed over
    scheduler time alone — the honest per-request algorithm cost.
    """

    name: str
    scheduler_name: str
    requests_processed: int
    wall_time_s: float
    scheduler_time_s: float
    verify_time_s: float
    validate_time_s: float
    verify_mode: str
    ledger_summary: dict
    failed: bool = False
    failure: str | None = None
    checkpoints: list[Checkpoint] = field(default_factory=list)

    @property
    def requests_per_second(self) -> float:
        if self.scheduler_time_s <= 0:
            return float("nan")
        return self.requests_processed / self.scheduler_time_s

    @property
    def audit_time_s(self) -> float:
        return self.verify_time_s + self.validate_time_s

    @property
    def summary(self) -> dict:
        out = {
            "run": self.name,
            "scheduler": self.scheduler_name,
            "processed": self.requests_processed,
            "wall_s": round(self.wall_time_s, 4),
            "sched_s": round(self.scheduler_time_s, 4),
            "verify_s": round(self.verify_time_s, 4),
            "validate_s": round(self.validate_time_s, 4),
            "req_per_s": (round(self.requests_per_second, 1)
                          if self.scheduler_time_s > 0 else 0.0),
        }
        out.update(self.ledger_summary)
        if self.failed:
            out["FAILED"] = self.failure
        return out


def run_engine(
    scheduler: ReallocatingScheduler,
    sequence: RequestSequence,
    *,
    batch_size: int = 1,
    atomic_batches: bool = False,
    verify: str = "incremental",
    full_audit_every: int = 1024,
    validator: Callable[[ReallocatingScheduler], None] | None = None,
    validate_every: int = 1,
    checkpoint_every: int = 0,
    on_checkpoint: Callable[[Checkpoint], None] | None = None,
    stop_on_error: bool = False,
    name: str | None = None,
) -> EngineResult:
    """Drive ``sequence`` through ``scheduler`` with phase-split timing.

    Parameters
    ----------
    batch_size:
        Chunk the stream into bursts of this size and drive them
        through ``apply_batch`` (1 = per-request loop). Verification
        then checks once per batch commit, and the validator / the
        checkpoint cadence fire on batch boundaries.
    atomic_batches:
        With ``batch_size > 1``: apply each burst all-or-nothing.
    verify:
        ``"incremental"`` (default), ``"full"``, or ``"off"``.
    full_audit_every:
        Full-audit period for incremental verification (0 = final only).
    validator:
        Optional invariant validator (e.g. ``validate_scheduler``),
        called every ``validate_every`` requests (0 disables it, like
        the other periodic knobs); timed separately.
    checkpoint_every:
        Record a :class:`Checkpoint` every this many requests (0 = off).
    stop_on_error:
        If True, scheduler failures raise; by default the engine ends
        the run gracefully with ``failed=True`` (sweeps keep going).
    """
    if verify not in VERIFY_MODES:
        raise ValueError(f"verify must be one of {VERIFY_MODES}, got {verify!r}")
    label = name if name is not None else type(scheduler).__name__
    verifier = (IncrementalVerifier(scheduler.num_machines,
                                    full_audit_every=full_audit_every,
                                    where=label)
                if verify == "incremental" else None)
    processed = 0
    sched_s = verify_s = validate_s = 0.0
    checkpoints: list[Checkpoint] = []
    perf = time.perf_counter
    t0 = perf()

    def checkpoint() -> None:
        cp = Checkpoint(processed, perf() - t0, sched_s, verify_s, validate_s)
        checkpoints.append(cp)
        if on_checkpoint is not None:
            on_checkpoint(cp)

    def finish(failure: str | None = None) -> EngineResult:
        return EngineResult(
            name=label,
            scheduler_name=type(scheduler).__name__,
            requests_processed=processed,
            wall_time_s=perf() - t0,
            scheduler_time_s=sched_s,
            verify_time_s=verify_s,
            validate_time_s=validate_s,
            verify_mode=verify,
            ledger_summary=scheduler.ledger.summary(),
            failed=failure is not None,
            failure=failure,
            checkpoints=checkpoints,
        )

    def full_verify() -> None:
        from ..core.schedule import verify_schedule

        verify_schedule(scheduler.jobs, scheduler.placements,
                        scheduler.num_machines,
                        where=f"{label} after request {processed}")

    last_marker = 0

    def periodic_hooks() -> None:
        """Validator + checkpoint on their request cadences."""
        nonlocal last_marker, validate_s
        if (validator is not None and validate_every
                and processed // validate_every > last_marker // validate_every):
            tc = perf()
            validator(scheduler)
            validate_s += perf() - tc
        if (checkpoint_every
                and processed // checkpoint_every > last_marker // checkpoint_every):
            checkpoint()
        last_marker = processed

    try:
        if batch_size > 1:
            for batch in iter_batches(sequence, batch_size):
                ta = perf()
                result = scheduler.apply_batch(batch, atomic=atomic_batches)
                tb = perf()
                sched_s += tb - ta
                processed += result.processed
                if verifier is not None:
                    verifier.verify_batch(scheduler, result)
                    verify_s += perf() - tb
                elif verify == "full":
                    full_verify()
                    verify_s += perf() - tb
                periodic_hooks()
                if result.failed:
                    raise result.error
        else:
            for request in sequence:
                ta = perf()
                cost = scheduler.apply(request)
                tb = perf()
                sched_s += tb - ta
                processed += 1
                if verifier is not None:
                    verifier.observe(scheduler, cost)
                    verify_s += perf() - tb
                elif verify == "full":
                    full_verify()
                    verify_s += perf() - tb
                periodic_hooks()
        if verifier is not None:
            ta = perf()
            verifier.full_audit(scheduler)
            verify_s += perf() - ta
    except ReproError as exc:
        if stop_on_error:
            raise
        return finish(failure=f"{type(exc).__name__}: {exc}")
    return finish()


def run_sweep(
    scenarios: Mapping[str, RequestSequence],
    factories: Mapping[str, Callable[[], ReallocatingScheduler]],
    *,
    batch_size: int = 1,
    atomic_batches: bool = False,
    verify: str = "incremental",
    full_audit_every: int = 1024,
    checkpoint_every: int = 0,
    on_checkpoint: Callable[[str, Checkpoint], None] | None = None,
) -> dict[tuple[str, str], EngineResult]:
    """Run every scheduler over every scenario (fresh instance per cell)."""
    results: dict[tuple[str, str], EngineResult] = {}
    for scen_name, sequence in scenarios.items():
        for sched_name, factory in factories.items():
            label = f"{scen_name}/{sched_name}"
            hook = (None if on_checkpoint is None
                    else (lambda cp, _l=label: on_checkpoint(_l, cp)))
            results[(scen_name, sched_name)] = run_engine(
                factory(), sequence,
                batch_size=batch_size,
                atomic_batches=atomic_batches,
                verify=verify,
                full_audit_every=full_audit_every,
                checkpoint_every=checkpoint_every,
                on_checkpoint=hook,
                name=label,
            )
    return results


def sweep_table(results: Mapping[tuple[str, str], EngineResult],
                *, title: str = "scenario sweep") -> str:
    """Format sweep results as an aligned comparison table."""
    rows = []
    for (scen, sched), r in sorted(results.items()):
        rows.append([
            scen, sched, r.requests_processed,
            round(r.requests_per_second, 1) if r.scheduler_time_s > 0 else 0.0,
            round(r.scheduler_time_s, 3),
            round(r.verify_time_s, 3),
            round(r.validate_time_s, 3),
            r.ledger_summary.get("max_realloc", ""),
            r.ledger_summary.get("mean_realloc", ""),
            "FAILED" if r.failed else "ok",
        ])
    return format_table(
        ["scenario", "scheduler", "requests", "req/s", "sched_s",
         "verify_s", "validate_s", "max realloc", "mean realloc", "status"],
        rows, title=title,
    )
