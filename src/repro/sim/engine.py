"""The engine surface: scenario-scale adapters over the Session loop.

:func:`run_engine` is the scaled-up sibling of
:func:`~repro.sim.driver.run_sequence`, built for driving 10^4-10^6
request workloads. Like the driver it no longer owns a drive loop —
both are thin adapters over :class:`~repro.sim.session.Session`, the
one shared loop (timing split, verifier wiring, checkpoint cadence,
failure handling) with pluggable drive backends. What this module adds
is the engine-shaped result surface:

- **Separated timing phases** — scheduler, verify, and validate time
  reported independently (:class:`EngineResult`), so throughput is
  always computed over pure scheduler time even in audited runs.
- **Checkpointed progress** — every ``checkpoint_every`` requests the
  session records (and optionally reports through ``on_checkpoint``)
  the running request rate and phase split.
- **Backends as a first-class axis** — ``backend="sequential"`` /
  ``"batched"`` / ``"sharded"`` selects how requests are driven; the
  sharded backend fans each burst out to per-machine shard workers on
  delegating scheduler stacks.
- **Disk-backed traces** — ``trace_path=`` writes the session's JSONL
  checkpoint trace so a killed multi-hour run resumes from its last
  checkpoint (``resume=True``, deterministic prefix replay) and runs
  stay comparable across PRs.

:func:`run_sweep` fans one or many schedulers across a dictionary of
scenario sequences — the CLI's ``sweep`` command builds the scenario set
from :data:`~repro.workloads.scenarios.SCENARIOS` — and returns per-cell
:class:`EngineResult` objects plus a formatted comparison table. With
``trace_dir=`` every cell writes its own trace and a re-run with
``resume=True`` skips completed cells and resumes the interrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from ..core.base import ReallocatingScheduler
from ..core.requests import RequestSequence
from .report import format_table
from .session import (
    Checkpoint,
    DEFAULT_FULL_AUDIT_EVERY,
    DriveBackend,
    ExecutionPlan,
    Session,
    SessionResult,
    SessionTrace,
    VERIFY_MODES,
    sequence_fingerprint,
)


@dataclass
class EngineResult:
    """Outcome of one engine run, with per-phase timing.

    ``scheduler_time_s`` covers only ``scheduler.apply``;
    ``verify_time_s`` the feasibility checks; ``validate_time_s`` the
    invariant validator. ``requests_per_second`` is computed over
    scheduler time alone — the honest per-request algorithm cost.
    """

    name: str
    scheduler_name: str
    requests_processed: int
    wall_time_s: float
    scheduler_time_s: float
    verify_time_s: float
    validate_time_s: float
    verify_mode: str
    ledger_summary: dict
    failed: bool = False
    failure: str | None = None
    checkpoints: list[Checkpoint] = field(default_factory=list)
    backend: str = "sequential"
    interrupted: bool = False
    resumed_from: int = 0

    @property
    def requests_per_second(self) -> float:
        """Throughput over scheduler time (resumed prefix excluded)."""
        if self.scheduler_time_s <= 0:
            return float("nan")
        worked = self.requests_processed - self.resumed_from
        return worked / self.scheduler_time_s

    @property
    def audit_time_s(self) -> float:
        return self.verify_time_s + self.validate_time_s

    @property
    def summary(self) -> dict:
        out = {
            "run": self.name,
            "scheduler": self.scheduler_name,
            "backend": self.backend,
            "processed": self.requests_processed,
            "wall_s": round(self.wall_time_s, 4),
            "sched_s": round(self.scheduler_time_s, 4),
            "verify_s": round(self.verify_time_s, 4),
            "validate_s": round(self.validate_time_s, 4),
            "req_per_s": (round(self.requests_per_second, 1)
                          if self.scheduler_time_s > 0 else 0.0),
        }
        out.update(self.ledger_summary)
        if self.failed:
            out["FAILED"] = self.failure
        if self.interrupted:
            out["INTERRUPTED"] = f"after {self.requests_processed}"
        return out


def _engine_result(res: SessionResult) -> EngineResult:
    return EngineResult(
        name=res.name,
        scheduler_name=res.scheduler_name,
        requests_processed=res.requests_processed,
        wall_time_s=res.wall_time_s,
        scheduler_time_s=res.scheduler_time_s,
        verify_time_s=res.verify_time_s,
        validate_time_s=res.validate_time_s,
        verify_mode=res.verify_mode,
        ledger_summary=res.ledger.summary(),
        failed=res.failed,
        failure=res.failure,
        checkpoints=res.checkpoints,
        backend=res.backend,
        interrupted=res.interrupted,
        resumed_from=res.resumed_from,
    )


def run_engine(
    scheduler: ReallocatingScheduler,
    sequence: RequestSequence,
    *,
    batch_size: int = 1,
    atomic_batches: bool = False,
    batch_semantics: str = "strict",
    backend: "str | DriveBackend" = "auto",
    shard_workers: str | None = None,
    shard_parallel: bool = False,
    verify: str = "incremental",
    full_audit_every: int | None = None,
    validator: Callable[[ReallocatingScheduler], None] | None = None,
    validate_every: int = 1,
    checkpoint_every: int = 0,
    on_checkpoint: Callable[[Checkpoint], None] | None = None,
    stop_on_error: bool = False,
    stop_after: int = 0,
    trace_path: "str | Path | None" = None,
    resume: bool = False,
    name: str | None = None,
) -> EngineResult:
    """Drive ``sequence`` through ``scheduler`` with phase-split timing.

    Parameters
    ----------
    batch_size:
        Chunk the stream into bursts of this size and drive them
        through the batch-shaped backends (1 = per-request loop).
        Verification then checks once per batch commit, and the
        validator / the checkpoint cadence fire on batch boundaries.
    atomic_batches:
        Batched backend: apply each burst all-or-nothing (the sharded
        backend is always transactional per burst).
    batch_semantics:
        ``"strict"`` (default, placement-identical replay) or
        ``"flexible"`` (jointly planned bursts — bounds-equivalent, see
        :class:`~repro.sim.session.ExecutionPlan`).
    backend:
        ``"auto"`` (default), ``"sequential"``, ``"batched"``,
        ``"sharded"``, or a DriveBackend instance.
    shard_workers:
        Sharded backend: worker flavor — ``"serial"`` (default),
        ``"threads"`` (GIL-bound thread pool), or ``"processes"``
        (process-resident per-machine sub-schedulers; the session
        releases them, syncing state back, when the run ends).
    shard_parallel:
        Deprecated alias for ``shard_workers="threads"``.
    verify:
        ``"incremental"`` (default), ``"full"``, or ``"off"``.
    full_audit_every:
        Full-audit period for incremental verification (None = the
        shared :data:`~repro.sim.session.DEFAULT_FULL_AUDIT_EVERY`).
    validator:
        Optional invariant validator (e.g. ``validate_scheduler``),
        called every ``validate_every`` requests (0 disables it, like
        the other periodic knobs); timed separately.
    checkpoint_every:
        Record a :class:`Checkpoint` every this many requests (0 = off).
    stop_on_error:
        If True, scheduler failures raise; by default the engine ends
        the run gracefully with ``failed=True`` (sweeps keep going).
    stop_after:
        End the run gracefully after this many requests this session
        (0 = off) — pairs with ``trace_path`` for resumable runs.
    trace_path / resume:
        Write (and with ``resume=True`` continue from) the session's
        JSONL trace; see :class:`~repro.sim.session.SessionTrace`.
    """
    plan = ExecutionPlan(
        batch_size=batch_size,
        atomic_batches=atomic_batches,
        batch_semantics=batch_semantics,
        backend=backend,
        shard_workers=shard_workers,
        shard_parallel=shard_parallel,
        verify=verify,
        full_audit_every=(full_audit_every if full_audit_every is not None
                          else DEFAULT_FULL_AUDIT_EVERY),
        validator=validator,
        validate_every=validate_every,
        checkpoint_every=checkpoint_every,
        on_checkpoint=on_checkpoint,
        stop_on_error=stop_on_error,
        stop_after=stop_after,
        trace_path=trace_path,
        resume=resume,
        name=name,
    )
    return _engine_result(Session(scheduler, sequence, plan).run())


def _cell_trace_path(trace_dir: "str | Path", label: str) -> Path:
    return Path(trace_dir) / (label.replace("/", "--") + ".jsonl")


def _read_cell_trace(
    path: Path, label: str, fingerprint: str,
) -> tuple[EngineResult | None, bool]:
    """One read of a cell's trace: (completed result, trace is current).

    Both answers are guarded by the sequence fingerprint like an
    in-session resume: a trace recorded for different scenario content
    (e.g. a re-run with a new ``--requests``) is neither completed nor
    resumable — the caller re-runs the cell from scratch, overwriting
    the stale trace. A recorded ``resumed_from`` carries over so
    throughput stays computed over the session that actually ran.
    """
    if not path.exists():
        return None, True  # nothing recorded yet; a fresh resume is fresh
    records = SessionTrace.read_records(path)
    header = next((r for r in records if r.get("type") == "header"), None)
    if header is None or header.get("fingerprint") != fingerprint:
        return None, False
    final = SessionTrace.final_record(records)
    if final is None:
        return None, True
    return EngineResult(
        name=label,
        scheduler_name=final.get("scheduler", ""),
        requests_processed=final.get("processed", 0),
        wall_time_s=final.get("wall_s", 0.0),
        scheduler_time_s=final.get("sched_s", 0.0),
        verify_time_s=final.get("verify_s", 0.0),
        validate_time_s=final.get("validate_s", 0.0),
        verify_mode=final.get("verify_mode", ""),
        ledger_summary=final.get("ledger", {}),
        failed=bool(final.get("failed")),
        failure=final.get("failure"),
        backend=final.get("backend", ""),
        resumed_from=final.get("resumed_from", 0),
    ), True


def run_sweep(
    scenarios: Mapping[str, RequestSequence],
    factories: Mapping[str, Callable[[], ReallocatingScheduler]],
    *,
    batch_size: int = 1,
    atomic_batches: bool = False,
    batch_semantics: str = "strict",
    backend: "str | DriveBackend" = "auto",
    shard_workers: str | None = None,
    shard_parallel: bool = False,
    verify: str = "incremental",
    full_audit_every: int | None = None,
    checkpoint_every: int = 0,
    on_checkpoint: Callable[[str, Checkpoint], None] | None = None,
    stop_after: int = 0,
    trace_dir: "str | Path | None" = None,
    resume: bool = False,
) -> dict[tuple[str, str], EngineResult]:
    """Run every scheduler over every scenario (fresh instance per cell).

    With ``trace_dir`` each cell writes ``<scenario>--<scheduler>.jsonl``
    there; re-running with ``resume=True`` reconstructs completed cells
    from their final trace record (no re-run) and resumes interrupted
    ones from their last checkpoint. ``stop_after`` bounds the requests
    processed per invocation (across-cells budget is per cell), which
    together with resume gives kill-and-continue sweeps.
    """
    results: dict[tuple[str, str], EngineResult] = {}
    if trace_dir is not None:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
    for scen_name, sequence in scenarios.items():
        fingerprint = (sequence_fingerprint(sequence)
                       if trace_dir is not None and resume else None)
        for sched_name, factory in factories.items():
            label = f"{scen_name}/{sched_name}"
            trace_path = None
            cell_resume = resume
            if trace_dir is not None:
                trace_path = _cell_trace_path(trace_dir, label)
                if resume:
                    done, current = _read_cell_trace(trace_path, label,
                                                     fingerprint)
                    if done is not None:
                        results[(scen_name, sched_name)] = done
                        continue
                    # a trace for different scenario content is stale:
                    # re-run the cell fresh instead of refusing to resume
                    cell_resume = current
            hook = (None if on_checkpoint is None
                    else (lambda cp, _l=label: on_checkpoint(_l, cp)))
            results[(scen_name, sched_name)] = run_engine(
                factory(), sequence,
                batch_size=batch_size,
                atomic_batches=atomic_batches,
                batch_semantics=batch_semantics,
                backend=backend,
                shard_workers=shard_workers,
                shard_parallel=shard_parallel,
                verify=verify,
                full_audit_every=full_audit_every,
                checkpoint_every=checkpoint_every,
                on_checkpoint=hook,
                stop_after=stop_after,
                trace_path=trace_path,
                resume=cell_resume,
                name=label,
            )
    return results


def sweep_table(results: Mapping[tuple[str, str], EngineResult],
                *, title: str = "scenario sweep") -> str:
    """Format sweep results as an aligned comparison table."""
    rows = []
    for (scen, sched), r in sorted(results.items()):
        rows.append([
            scen, sched, r.requests_processed,
            round(r.requests_per_second, 1) if r.scheduler_time_s > 0 else 0.0,
            round(r.scheduler_time_s, 3),
            round(r.verify_time_s, 3),
            round(r.validate_time_s, 3),
            r.ledger_summary.get("max_realloc", ""),
            r.ledger_summary.get("mean_realloc", ""),
            ("FAILED" if r.failed
             else "partial" if r.interrupted else "ok"),
        ])
    return format_table(
        ["scenario", "scheduler", "requests", "req/s", "sched_s",
         "verify_s", "validate_s", "max realloc", "mean realloc", "status"],
        rows, title=title,
    )
