"""Trace recording and replay.

An :class:`ExecutionTrace` captures a full run — the request sequence
plus the placement snapshot after every request — in a JSON-serializable
form. Uses:

- **Regression pinning:** record a trace from a known-good build; replay
  later and diff placements to detect behavioural drift (all schedulers
  are deterministic, so placements must match bit-for-bit).
- **Debugging:** shrink a failing random workload to the shortest
  prefix that still violates an invariant (``shrink_failing_prefix``).
- **Cross-scheduler audits:** replay one scheduler's trace through the
  feasibility checker without re-running the scheduler.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from ..core.base import ReallocatingScheduler
from ..core.exceptions import ReproError
from ..core.job import Placement
from ..core.requests import RequestSequence


@dataclass
class ExecutionTrace:
    """A request sequence plus per-request placement snapshots."""

    sequence_json: str
    snapshots: list[dict[str, list[int]]] = field(default_factory=list)
    scheduler_name: str = ""

    @classmethod
    def record(
        cls,
        scheduler: ReallocatingScheduler,
        sequence: RequestSequence,
    ) -> "ExecutionTrace":
        """Run the sequence, snapshotting placements after each request."""
        trace = cls(sequence_json=sequence.to_json(),
                    scheduler_name=type(scheduler).__name__)
        for request in sequence:
            scheduler.apply(request)
            trace.snapshots.append({
                str(job_id): [pl.machine, pl.slot]
                for job_id, pl in scheduler.placements.items()
            })
        return trace

    def replay_and_diff(
        self,
        scheduler_factory: Callable[[], ReallocatingScheduler],
    ) -> list[int]:
        """Re-run on a fresh scheduler; return indices of diverging requests.

        An empty list means the behaviour is identical to the recording
        (expected for our deterministic schedulers).
        """
        sequence = RequestSequence.from_json(self.sequence_json)
        scheduler = scheduler_factory()
        diverging = []
        for i, request in enumerate(sequence):
            scheduler.apply(request)
            now = {
                str(job_id): [pl.machine, pl.slot]
                for job_id, pl in scheduler.placements.items()
            }
            if now != self.snapshots[i]:
                diverging.append(i)
        return diverging

    def final_placements(self) -> dict[str, Placement]:
        if not self.snapshots:
            return {}
        return {job: Placement(m, s)
                for job, (m, s) in self.snapshots[-1].items()}

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "scheduler": self.scheduler_name,
            "sequence": json.loads(self.sequence_json),
            "snapshots": self.snapshots,
        })

    @classmethod
    def from_json(cls, text: str) -> "ExecutionTrace":
        data = json.loads(text)
        return cls(
            sequence_json=json.dumps(data["sequence"]),
            snapshots=data["snapshots"],
            scheduler_name=data.get("scheduler", ""),
        )


def shrink_failing_prefix(
    sequence: RequestSequence,
    scheduler_factory: Callable[[], ReallocatingScheduler],
    probe: Callable[[ReallocatingScheduler], None],
) -> int | None:
    """Shortest prefix length after which ``probe`` raises.

    ``probe`` is any checker (e.g. the reservation invariant validator);
    returns None if the full sequence never fails. Binary search is not
    sound here (failures need not be monotone), so this walks forward —
    fine for test-sized sequences.
    """
    scheduler = scheduler_factory()
    for i, request in enumerate(sequence):
        try:
            scheduler.apply(request)
            probe(scheduler)
        except ReproError:
            return i + 1
    return None
