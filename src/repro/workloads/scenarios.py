"""Scenario workloads: the settings the paper's introduction motivates.

Two realistic request-sequence generators exercising the public API the
way a deployment would:

- :func:`appointment_book_sequence` — the doctor's office from the
  paper's opening: patients phone in with an availability window
  ("any time Tuesday afternoon"), some later cancel. Windows are
  human-shaped: a mix of narrow (span 2-4 slots) and flexible (span up
  to a day), start times anywhere (unaligned), arrival order roughly by
  requested day.
- :func:`cluster_trace_sequence` — the multiprocessor setting: batch
  jobs with deadlines arriving in bursts, machine count m > 1, heavy
  churn (jobs finish and leave), spans distributed log-uniformly.

Both enforce a target underallocation with the interval-density
certificate so the reservation scheduler's assumptions hold, and both
are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from ..core.job import Job
from ..core.requests import DeleteJob, InsertJob, RequestSequence
from ..core.window import Window
from ..feasibility.hall import LaminarLoadTree


def _admit(tree: LaminarLoadTree, window: Window, m: int, gamma: int) -> bool:
    """Density admission test for an *unaligned* window.

    We budget against the aligned core ALIGNED(W) (what the scheduler
    will actually use), which by Lemma 10 keeps the aligned instance
    gamma-underallocated and the true instance at least as slack.
    """
    return tree.would_fit(window.aligned_within(), m, gamma)


def appointment_book_sequence(
    *,
    days: int = 8,
    slots_per_day: int = 32,
    requests: int = 400,
    cancel_fraction: float = 0.25,
    gamma: int = 8,
    seed: int = 0,
) -> RequestSequence:
    """Doctor's-office appointment churn (paper Section 1 motivation).

    Slots are e.g. 15-minute increments; a patient asks for a window
    within one day (narrow: a specific hour; flexible: whole morning,
    whole day). Cancellations arrive randomly among active patients.
    """
    rng = np.random.default_rng(seed)
    horizon_bits = (days * slots_per_day - 1).bit_length()
    horizon = 1 << horizon_bits
    tree = LaminarLoadTree(horizon)
    seq = RequestSequence()
    active: list[str] = []
    uid = 0
    flavors = [
        (2, 4),                      # "that specific hour"
        (4, 8),                      # "early afternoon"
        (slots_per_day // 2, slots_per_day // 2),  # "any time that morning"
        (slots_per_day, slots_per_day),            # "any time that day"
    ]
    tries = 80
    while len(seq) < requests:
        if active and rng.random() < cancel_fraction:
            victim = active.pop(int(rng.integers(len(active))))
            tree.remove(victim)
            seq.append(DeleteJob(victim))
            continue
        placed = False
        for _ in range(tries):
            day = int(rng.integers(days))
            lo_span, hi_span = flavors[int(rng.integers(len(flavors)))]
            span = int(rng.integers(lo_span, hi_span + 1))
            start_in_day = int(rng.integers(0, slots_per_day - span + 1))
            start = day * slots_per_day + start_in_day
            w = Window(start, start + span)
            if _admit(tree, w, 1, gamma):
                job_id = f"patient{uid}"
                uid += 1
                tree.add(job_id, w.aligned_within())
                seq.append(InsertJob(Job(job_id, w)))
                active.append(job_id)
                placed = True
                break
        if not placed:
            if not active:
                raise RuntimeError("appointment book saturated with no patients")
            victim = active.pop(int(rng.integers(len(active))))
            tree.remove(victim)
            seq.append(DeleteJob(victim))
    return seq


def cluster_trace_sequence(
    *,
    num_machines: int = 4,
    horizon: int = 1 << 12,
    requests: int = 600,
    burst_size: int = 6,
    finish_fraction: float = 0.4,
    gamma: int = 8,
    seed: int = 0,
) -> RequestSequence:
    """Bursty multiprocessor batch workload with deadlines.

    Jobs arrive in bursts around a moving "current time"; spans are
    log-uniform between 4 and horizon/4; jobs leave (finish/cancel) at
    the given churn rate.
    """
    rng = np.random.default_rng(seed)
    tree = LaminarLoadTree(horizon)
    seq = RequestSequence()
    active: list[str] = []
    uid = 0
    max_log = (horizon // 4).bit_length() - 1
    while len(seq) < requests:
        if active and rng.random() < finish_fraction:
            victim = active.pop(int(rng.integers(len(active))))
            tree.remove(victim)
            seq.append(DeleteJob(victim))
            continue
        center = int(rng.integers(0, horizon))
        burst = int(rng.integers(1, burst_size + 1))
        for _ in range(burst):
            if len(seq) >= requests:
                break
            placed = False
            for _ in range(60):
                span = int(1 << rng.integers(2, max_log + 1))
                jitter = int(rng.integers(-span, span + 1))
                start = max(0, min(horizon - span, center + jitter))
                w = Window(start, start + span)
                if _admit(tree, w, num_machines, gamma):
                    job_id = f"task{uid}"
                    uid += 1
                    tree.add(job_id, w.aligned_within())
                    seq.append(InsertJob(Job(job_id, w)))
                    active.append(job_id)
                    placed = True
                    break
            if not placed and active:
                victim = active.pop(int(rng.integers(len(active))))
                tree.remove(victim)
                seq.append(DeleteJob(victim))
    return seq
