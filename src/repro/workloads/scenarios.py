"""Scenario workloads: the settings the paper's introduction motivates.

Request-sequence generators exercising the public API the way a
deployment would:

- :func:`appointment_book_sequence` — the doctor's office from the
  paper's opening: patients phone in with an availability window
  ("any time Tuesday afternoon"), some later cancel. Windows are
  human-shaped: a mix of narrow (span 2-4 slots) and flexible (span up
  to a day), start times anywhere (unaligned), arrival order roughly by
  requested day.
- :func:`cluster_trace_sequence` — the multiprocessor setting: batch
  jobs with deadlines arriving in bursts, machine count m > 1, heavy
  churn (jobs finish and leave), spans distributed log-uniformly.

Engine-scale scenarios (built for ``repro.sim.engine`` sweeps at 10^4+
requests):

- :func:`churn_storm_sequence` — alternating calm/storm phases: the
  active set builds up, then a storm deletes a large fraction and
  immediately refills, stressing delete-side rebalancing and the
  reinsertion fast path.
- :func:`adversarial_span_mix_sequence` — deliberately hostile span
  mixture: tiny base-level jobs carpet the same regions targeted by
  level-1/level-2 jobs, maximizing cross-level displacement, allowance
  churn, and MOVE cascades.
- :func:`steady_state_sequence` — long-horizon steady state: ramp up to
  a target active population, then hold it with balanced insert/delete
  churn — the regime where per-request cost must stay flat (Theorem 1).
- :func:`burst_arrivals_sequence` — batch-shaped traffic: whole insert
  bursts (biased toward a shared focus window) alternating with whole
  delete bursts, sized to match an ``apply_batch`` batch — the native
  workload of the batch-first request API.

Streaming vs materialized
-------------------------
Every scenario exists in two shapes. The ``iter_*`` functions are lazy
generators yielding one :class:`~repro.core.requests.Request` at a time:
their working state is the *active* job set (bounded by the admission
density, not the request count), so a 10^6-request stream runs in
bounded memory and can feed a :class:`~repro.sim.session.Session`
directly. The ``*_sequence`` functions materialize the same stream into
a validated :class:`~repro.core.requests.RequestSequence` (identical
content — the generators are deterministic given a seed, and the
materialized form is just ``RequestSequence(iter_*(...))``). Use the
registries to pick a shape by name: :data:`SCENARIOS` (materialized;
the CLI's ``engine``/``sweep`` commands) or :data:`SCENARIO_STREAMS`
(lazy).

All generators enforce a target underallocation with the
interval-density certificate so the reservation scheduler's assumptions
hold, and all are deterministic given a seed.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from ..core.job import Job
from ..core.requests import DeleteJob, InsertJob, Request, RequestSequence
from ..core.window import Window
from ..feasibility.hall import LaminarLoadTree


def _admit(tree: LaminarLoadTree, window: Window, m: int, gamma: int) -> bool:
    """Density admission test for an *unaligned* window.

    We budget against the aligned core ALIGNED(W) (what the scheduler
    will actually use), which by Lemma 10 keeps the aligned instance
    gamma-underallocated and the true instance at least as slack.
    """
    return tree.would_fit(window.aligned_within(), m, gamma)


def iter_appointment_book(
    *,
    days: int = 8,
    slots_per_day: int = 32,
    requests: int = 400,
    cancel_fraction: float = 0.25,
    gamma: int = 8,
    seed: int = 0,
) -> Iterator[Request]:
    """Doctor's-office appointment churn (paper Section 1 motivation).

    Slots are e.g. 15-minute increments; a patient asks for a window
    within one day (narrow: a specific hour; flexible: whole morning,
    whole day). Cancellations arrive randomly among active patients.
    """
    rng = np.random.default_rng(seed)
    horizon_bits = (days * slots_per_day - 1).bit_length()
    horizon = 1 << horizon_bits
    tree = LaminarLoadTree(horizon)
    active: list[str] = []
    uid = 0
    emitted = 0
    flavors = [
        (2, 4),                      # "that specific hour"
        (4, 8),                      # "early afternoon"
        (slots_per_day // 2, slots_per_day // 2),  # "any time that morning"
        (slots_per_day, slots_per_day),            # "any time that day"
    ]
    tries = 80
    while emitted < requests:
        if active and rng.random() < cancel_fraction:
            victim = active.pop(int(rng.integers(len(active))))
            tree.remove(victim)
            emitted += 1
            yield DeleteJob(victim)
            continue
        placed = False
        for _ in range(tries):
            day = int(rng.integers(days))
            lo_span, hi_span = flavors[int(rng.integers(len(flavors)))]
            span = int(rng.integers(lo_span, hi_span + 1))
            start_in_day = int(rng.integers(0, slots_per_day - span + 1))
            start = day * slots_per_day + start_in_day
            w = Window(start, start + span)
            if _admit(tree, w, 1, gamma):
                job_id = f"patient{uid}"
                uid += 1
                tree.add(job_id, w.aligned_within())
                active.append(job_id)
                emitted += 1
                yield InsertJob(Job(job_id, w))
                placed = True
                break
        if not placed:
            if not active:
                raise RuntimeError("appointment book saturated with no patients")
            victim = active.pop(int(rng.integers(len(active))))
            tree.remove(victim)
            emitted += 1
            yield DeleteJob(victim)


def appointment_book_sequence(**kwargs: Any) -> RequestSequence:
    """Materialized form of :func:`iter_appointment_book`."""
    return RequestSequence(iter_appointment_book(**kwargs))


def iter_cluster_trace(
    *,
    num_machines: int = 4,
    horizon: int = 1 << 12,
    requests: int = 600,
    burst_size: int = 6,
    finish_fraction: float = 0.4,
    gamma: int = 8,
    seed: int = 0,
) -> Iterator[Request]:
    """Bursty multiprocessor batch workload with deadlines.

    Jobs arrive in bursts around a moving "current time"; spans are
    log-uniform between 4 and horizon/4; jobs leave (finish/cancel) at
    the given churn rate.
    """
    rng = np.random.default_rng(seed)
    tree = LaminarLoadTree(horizon)
    active: list[str] = []
    uid = 0
    emitted = 0
    max_log = (horizon // 4).bit_length() - 1
    while emitted < requests:
        if active and rng.random() < finish_fraction:
            victim = active.pop(int(rng.integers(len(active))))
            tree.remove(victim)
            emitted += 1
            yield DeleteJob(victim)
            continue
        center = int(rng.integers(0, horizon))
        burst = int(rng.integers(1, burst_size + 1))
        for _ in range(burst):
            if emitted >= requests:
                break
            placed = False
            for _ in range(60):
                span = int(1 << rng.integers(2, max_log + 1))
                jitter = int(rng.integers(-span, span + 1))
                start = max(0, min(horizon - span, center + jitter))
                w = Window(start, start + span)
                if _admit(tree, w, num_machines, gamma):
                    job_id = f"task{uid}"
                    uid += 1
                    tree.add(job_id, w.aligned_within())
                    active.append(job_id)
                    emitted += 1
                    yield InsertJob(Job(job_id, w))
                    placed = True
                    break
            if not placed and active:
                victim = active.pop(int(rng.integers(len(active))))
                tree.remove(victim)
                emitted += 1
                yield DeleteJob(victim)


def cluster_trace_sequence(**kwargs: Any) -> RequestSequence:
    """Materialized form of :func:`iter_cluster_trace`."""
    return RequestSequence(iter_cluster_trace(**kwargs))


def _draw_insert(
    rng: np.random.Generator,
    tree: LaminarLoadTree,
    active: list,
    *,
    horizon: int,
    span_exps: tuple[int, int],
    num_machines: int,
    gamma: int,
    uid: list,
    prefix: str,
    region: tuple[int, int] | None = None,
    tries: int = 64,
) -> InsertJob | None:
    """Draw aligned windows until one passes the density admission test.

    Returns the admitted insert request (already recorded in ``tree``
    and ``active``) or None when every try failed.
    """
    lo_exp, hi_exp = span_exps
    for _ in range(tries):
        span = 1 << int(rng.integers(lo_exp, hi_exp + 1))
        lo, hi = region if region is not None else (0, horizon)
        lo_idx, hi_idx = lo // span, max(lo // span + 1, hi // span)
        start = int(rng.integers(lo_idx, hi_idx)) * span
        w = Window(start, start + span)
        if tree.would_fit(w, num_machines, gamma):
            job_id = f"{prefix}{uid[0]}"
            uid[0] += 1
            tree.add(job_id, w)
            active.append(job_id)
            return InsertJob(Job(job_id, w))
    return None


def iter_churn_storm(
    *,
    requests: int = 20_000,
    horizon: int = 1 << 14,
    max_span: int = 1 << 12,
    storm_fraction: float = 0.6,
    calm_length: int = 512,
    gamma: int = 8,
    num_machines: int = 1,
    seed: int = 0,
) -> Iterator[Request]:
    """Delete/reinsert-heavy churn: calm growth punctuated by storms.

    During a calm phase the active set grows under light churn; every
    ``calm_length`` requests a *storm* deletes ``storm_fraction`` of the
    active jobs back-to-back and the next calm refills the capacity.
    Exercises mass retraction of dynamic reservations, allowance
    regrowth, and the reinsertion fast path at scale.
    """
    rng = np.random.default_rng(seed)
    tree = LaminarLoadTree(horizon)
    active: list[str] = []
    uid = [0]
    emitted = 0
    hi_exp = max_span.bit_length() - 1
    while emitted < requests:
        # calm phase: mostly inserts, light churn
        calm_target = min(requests, emitted + calm_length)
        while emitted < calm_target:
            if active and rng.random() < 0.15:
                victim = active.pop(int(rng.integers(len(active))))
                tree.remove(victim)
                emitted += 1
                yield DeleteJob(victim)
                continue
            req = _draw_insert(rng, tree, active, horizon=horizon,
                               span_exps=(0, hi_exp),
                               num_machines=num_machines,
                               gamma=gamma, uid=uid, prefix="c")
            if req is not None:
                emitted += 1
                yield req
            else:
                if not active:
                    raise RuntimeError("churn storm saturated with no jobs")
                victim = active.pop(int(rng.integers(len(active))))
                tree.remove(victim)
                emitted += 1
                yield DeleteJob(victim)
        # storm: delete a big slice of the active set back-to-back
        storm = int(len(active) * storm_fraction)
        for _ in range(storm):
            if emitted >= requests or not active:
                break
            victim = active.pop(int(rng.integers(len(active))))
            tree.remove(victim)
            emitted += 1
            yield DeleteJob(victim)


def churn_storm_sequence(**kwargs: Any) -> RequestSequence:
    """Materialized form of :func:`iter_churn_storm`."""
    return RequestSequence(iter_churn_storm(**kwargs))


def iter_adversarial_span_mix(
    *,
    requests: int = 20_000,
    horizon: int = 1 << 14,
    gamma: int = 8,
    num_machines: int = 1,
    seed: int = 0,
) -> Iterator[Request]:
    """Hostile span mixture concentrating every level on shared regions.

    Alternates bursts of tiny base-level jobs (spans 1-8) carpeting a
    random region with large-span jobs (up to ``horizon/4``) whose
    windows contain that same region, plus random cancellations. Big
    jobs keep landing on slots the small jobs want (and vice versa), so
    cross-level displacement, slot_lowered/raised churn, and MOVE
    cascades dominate — the worst case for the allowance bookkeeping.
    """
    rng = np.random.default_rng(seed)
    tree = LaminarLoadTree(horizon)
    active: list[str] = []
    uid = [0]
    emitted = 0
    big_hi = (horizon // 4).bit_length() - 1
    while emitted < requests:
        if active and rng.random() < 0.3:
            victim = active.pop(int(rng.integers(len(active))))
            tree.remove(victim)
            emitted += 1
            yield DeleteJob(victim)
            continue
        # pick a shared battleground region of 256 slots
        region_start = int(rng.integers(0, horizon // 256)) * 256
        region = (region_start, region_start + 256)
        burst = int(rng.integers(4, 12))
        placed_any = False
        for i in range(burst):
            if emitted >= requests:
                break
            if i % 2 == 0:  # tiny job inside the battleground
                req = _draw_insert(rng, tree, active, horizon=horizon,
                                   span_exps=(0, 3),
                                   num_machines=num_machines,
                                   gamma=gamma, uid=uid, prefix="a",
                                   region=region)
            else:  # large job whose window covers the battleground
                req = _draw_insert(rng, tree, active, horizon=horizon,
                                   span_exps=(8, max(8, big_hi)),
                                   num_machines=num_machines,
                                   gamma=gamma, uid=uid, prefix="A",
                                   region=region)
            if req is not None:
                emitted += 1
                yield req
                placed_any = True
        if not placed_any:
            if not active:
                raise RuntimeError("adversarial mix saturated with no jobs")
            victim = active.pop(int(rng.integers(len(active))))
            tree.remove(victim)
            emitted += 1
            yield DeleteJob(victim)


def adversarial_span_mix_sequence(**kwargs: Any) -> RequestSequence:
    """Materialized form of :func:`iter_adversarial_span_mix`."""
    return RequestSequence(iter_adversarial_span_mix(**kwargs))


def iter_burst_arrivals(
    *,
    requests: int = 20_000,
    horizon: int = 1 << 14,
    max_span: int = 1 << 12,
    burst_size: int = 64,
    same_window_bias: float = 0.5,
    delete_burst_fraction: float = 0.4,
    gamma: int = 8,
    num_machines: int = 1,
    seed: int = 0,
) -> Iterator[Request]:
    """Batch-shaped traffic: whole bursts of inserts, whole bursts of deletes.

    The batch-first request API serves traffic that arrives in bursts;
    this generator emits exactly that shape so batching is a first-class
    dimension of the experiments: each step is either an insert burst of
    ``burst_size`` requests (a ``same_window_bias`` fraction of which
    reuse one focus window, stressing the delegator's per-window
    grouping and the round-robin continuation) or a delete burst
    clearing a random ``delete_burst_fraction`` slice of the active set
    back-to-back. Feed it to ``run_engine(batch_size=burst_size)`` for
    aligned burst/batch boundaries.
    """
    rng = np.random.default_rng(seed)
    tree = LaminarLoadTree(horizon)
    active: list[str] = []
    uid = [0]
    emitted = 0
    hi_exp = max_span.bit_length() - 1
    while emitted < requests:
        do_delete = (active
                     and rng.random() < 0.45
                     and len(active) > burst_size)
        if do_delete:
            burst = min(len(active),
                        max(1, int(len(active) * delete_burst_fraction)),
                        burst_size)
            for _ in range(burst):
                if emitted >= requests or not active:
                    break
                victim = active.pop(int(rng.integers(len(active))))
                tree.remove(victim)
                emitted += 1
                yield DeleteJob(victim)
            continue
        # insert burst around a focus window
        focus_exp = int(rng.integers(0, hi_exp + 1))
        focus_span = 1 << focus_exp
        focus_start = int(rng.integers(0, horizon // focus_span)) * focus_span
        focus = (focus_start, focus_start + focus_span)
        for _ in range(burst_size):
            if emitted >= requests:
                break
            if rng.random() < same_window_bias:
                req = _draw_insert(rng, tree, active, horizon=horizon,
                                   span_exps=(focus_exp, focus_exp),
                                   num_machines=num_machines, gamma=gamma,
                                   uid=uid, prefix="b", region=focus, tries=4)
                if req is not None:
                    emitted += 1
                    yield req
                    continue
            req = _draw_insert(rng, tree, active, horizon=horizon,
                               span_exps=(0, hi_exp),
                               num_machines=num_machines, gamma=gamma,
                               uid=uid, prefix="b")
            if req is not None:
                emitted += 1
                yield req
            else:
                if not active:
                    raise RuntimeError("burst arrivals saturated with no jobs")
                victim = active.pop(int(rng.integers(len(active))))
                tree.remove(victim)
                emitted += 1
                yield DeleteJob(victim)


def burst_arrivals_sequence(**kwargs: Any) -> RequestSequence:
    """Materialized form of :func:`iter_burst_arrivals`."""
    return RequestSequence(iter_burst_arrivals(**kwargs))


def iter_steady_state(
    *,
    requests: int = 50_000,
    horizon: int = 1 << 16,
    max_span: int = 1 << 14,
    target_active: int = 2000,
    gamma: int = 8,
    num_machines: int = 1,
    seed: int = 0,
) -> Iterator[Request]:
    """Long-horizon steady state: ramp up, then hold the population.

    Inserts until ``target_active`` jobs are live, then alternates
    deletes and inserts so the population hovers at the target for the
    rest of the run — the sustained-traffic regime where Theorem 1's
    flat per-request cost (and the engine's flat per-request wall time)
    must show.
    """
    rng = np.random.default_rng(seed)
    tree = LaminarLoadTree(horizon)
    active: list[str] = []
    uid = [0]
    emitted = 0
    hi_exp = max_span.bit_length() - 1
    while emitted < requests:
        over = len(active) >= target_active
        do_delete = active and (over or rng.random() < 0.5 * len(active) / target_active)
        if not do_delete:
            req = _draw_insert(rng, tree, active, horizon=horizon,
                               span_exps=(0, hi_exp),
                               num_machines=num_machines,
                               gamma=gamma, uid=uid, prefix="s")
            if req is not None:
                emitted += 1
                yield req
                continue
            if not active:
                raise RuntimeError("steady state saturated with no jobs")
            do_delete = True
        if do_delete:
            victim = active.pop(int(rng.integers(len(active))))
            tree.remove(victim)
            emitted += 1
            yield DeleteJob(victim)


def steady_state_sequence(**kwargs: Any) -> RequestSequence:
    """Materialized form of :func:`iter_steady_state`."""
    return RequestSequence(iter_steady_state(**kwargs))


#: name -> builder(requests, seed, num_machines) used by the CLI engine
#: and sweep commands. Every builder returns a deterministic
#: *materialized* sequence sized to ``requests``; the lazy twins live in
#: :data:`SCENARIO_STREAMS`.
SCENARIOS = {
    "appointments": lambda requests, seed, num_machines: appointment_book_sequence(
        requests=requests, seed=seed,
        days=max(8, requests // 50), slots_per_day=32),
    "cluster": lambda requests, seed, num_machines: cluster_trace_sequence(
        requests=requests, seed=seed, num_machines=max(1, num_machines)),
    "churn-storm": lambda requests, seed, num_machines: churn_storm_sequence(
        requests=requests, seed=seed, num_machines=num_machines),
    "adversarial-mix": lambda requests, seed, num_machines: adversarial_span_mix_sequence(
        requests=requests, seed=seed, num_machines=num_machines),
    "burst-arrivals": lambda requests, seed, num_machines: burst_arrivals_sequence(
        requests=requests, seed=seed, num_machines=num_machines),
    "steady-state": lambda requests, seed, num_machines: steady_state_sequence(
        requests=requests, seed=seed, num_machines=num_machines,
        target_active=max(64, requests // 25)),
}

#: name -> builder(requests, seed, num_machines) returning the *lazy*
#: generator form: identical request-for-request to the materialized
#: builder of the same name, but with memory bounded by the active set
#: (10^6-request streams never build a full list).
SCENARIO_STREAMS = {
    "appointments": lambda requests, seed, num_machines: iter_appointment_book(
        requests=requests, seed=seed,
        days=max(8, requests // 50), slots_per_day=32),
    "cluster": lambda requests, seed, num_machines: iter_cluster_trace(
        requests=requests, seed=seed, num_machines=max(1, num_machines)),
    "churn-storm": lambda requests, seed, num_machines: iter_churn_storm(
        requests=requests, seed=seed, num_machines=num_machines),
    "adversarial-mix": lambda requests, seed, num_machines: iter_adversarial_span_mix(
        requests=requests, seed=seed, num_machines=num_machines),
    "burst-arrivals": lambda requests, seed, num_machines: iter_burst_arrivals(
        requests=requests, seed=seed, num_machines=num_machines),
    "steady-state": lambda requests, seed, num_machines: iter_steady_state(
        requests=requests, seed=seed, num_machines=num_machines,
        target_active=max(64, requests // 25)),
}
