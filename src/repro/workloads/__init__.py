"""Workload generators: random underallocated churn, scenarios, adversaries."""

from .random_aligned import (
    AlignedWorkloadConfig,
    random_aligned_sequence,
    saturated_aligned_jobs,
)
from .scenarios import (
    SCENARIO_STREAMS,
    SCENARIOS,
    adversarial_span_mix_sequence,
    appointment_book_sequence,
    burst_arrivals_sequence,
    churn_storm_sequence,
    cluster_trace_sequence,
    iter_adversarial_span_mix,
    iter_appointment_book,
    iter_burst_arrivals,
    iter_churn_storm,
    iter_cluster_trace,
    iter_steady_state,
    steady_state_sequence,
)

__all__ = [
    "AlignedWorkloadConfig",
    "random_aligned_sequence",
    "saturated_aligned_jobs",
    "SCENARIOS",
    "SCENARIO_STREAMS",
    "appointment_book_sequence",
    "cluster_trace_sequence",
    "churn_storm_sequence",
    "adversarial_span_mix_sequence",
    "steady_state_sequence",
    "burst_arrivals_sequence",
    "iter_appointment_book",
    "iter_cluster_trace",
    "iter_churn_storm",
    "iter_adversarial_span_mix",
    "iter_steady_state",
    "iter_burst_arrivals",
]
