"""Workload generators: random underallocated churn, scenarios, adversaries."""

from .random_aligned import (
    AlignedWorkloadConfig,
    random_aligned_sequence,
    saturated_aligned_jobs,
)
from .scenarios import appointment_book_sequence, cluster_trace_sequence

__all__ = [
    "AlignedWorkloadConfig",
    "random_aligned_sequence",
    "saturated_aligned_jobs",
    "appointment_book_sequence",
    "cluster_trace_sequence",
]
