"""Workload generators: random underallocated churn, scenarios, adversaries."""

from .random_aligned import (
    AlignedWorkloadConfig,
    random_aligned_sequence,
    saturated_aligned_jobs,
)
from .scenarios import (
    SCENARIOS,
    adversarial_span_mix_sequence,
    appointment_book_sequence,
    burst_arrivals_sequence,
    churn_storm_sequence,
    cluster_trace_sequence,
    steady_state_sequence,
)

__all__ = [
    "AlignedWorkloadConfig",
    "random_aligned_sequence",
    "saturated_aligned_jobs",
    "SCENARIOS",
    "appointment_book_sequence",
    "cluster_trace_sequence",
    "churn_storm_sequence",
    "adversarial_span_mix_sequence",
    "steady_state_sequence",
    "burst_arrivals_sequence",
]
