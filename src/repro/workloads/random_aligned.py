"""Random aligned, guaranteed-underallocated workload generation.

The reservation scheduler's guarantees require the request sequence to
stay gamma-underallocated after *every* request (Section 2). The
generator enforces that constructively: a
:class:`~repro.feasibility.hall.LaminarLoadTree` tracks the job count of
every aligned window, and a candidate insertion is admitted only if
``gamma * (load(W) + 1) <= m * |W|`` holds for the window and all its
aligned ancestors — exactly the Lemma 2 density budget, which for
laminar instances certifies gamma-underallocation (the inductive
argument of Lemma 3: the density bound lets size-gamma jobs be packed
window by window).

Generators are deterministic given a seed (``numpy.random.Generator``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.job import Job
from ..core.requests import DeleteJob, InsertJob, RequestSequence
from ..core.window import Window
from ..feasibility.hall import LaminarLoadTree


@dataclass(frozen=True)
class AlignedWorkloadConfig:
    """Knobs for :func:`random_aligned_sequence`.

    Attributes
    ----------
    num_requests:
        Total request count (inserts + deletes).
    num_machines:
        Machine count m used in the density budget.
    gamma:
        Underallocation target enforced after every request.
    horizon:
        Power-of-two time horizon; all windows live in [0, horizon).
    max_span:
        Largest window span to draw (power of two, <= horizon).
    min_span:
        Smallest window span to draw (power of two).
    delete_fraction:
        Probability that a request is a delete (when jobs are active).
    span_bias:
        Geometric bias towards small spans in (0, 1]; 1.0 = uniform
        over the power-of-two span ladder.
    """

    num_requests: int = 1000
    num_machines: int = 1
    gamma: int = 8
    horizon: int = 1 << 14
    max_span: int = 1 << 12
    min_span: int = 1
    delete_fraction: float = 0.35
    span_bias: float = 1.0

    def __post_init__(self) -> None:
        for name in ("horizon", "max_span", "min_span"):
            v = getattr(self, name)
            if v < 1 or v & (v - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if self.max_span > self.horizon:
            raise ValueError("max_span cannot exceed horizon")
        if self.min_span > self.max_span:
            raise ValueError("min_span cannot exceed max_span")
        if not 0 <= self.delete_fraction < 1:
            raise ValueError("delete_fraction must be in [0, 1)")
        if self.gamma < 1:
            raise ValueError("gamma must be >= 1")


def _draw_span(rng: np.random.Generator, cfg: AlignedWorkloadConfig) -> int:
    lo = cfg.min_span.bit_length() - 1
    hi = cfg.max_span.bit_length() - 1
    exps = np.arange(lo, hi + 1)
    if cfg.span_bias >= 1.0:
        weights = np.ones_like(exps, dtype=float)
    else:
        weights = cfg.span_bias ** np.arange(len(exps), dtype=float)
    weights /= weights.sum()
    return 1 << int(rng.choice(exps, p=weights))


def random_aligned_sequence(
    cfg: AlignedWorkloadConfig, seed: int = 0
) -> RequestSequence:
    """Generate a gamma-underallocated aligned insert/delete churn sequence.

    Every prefix of the returned sequence keeps the active set
    m-machine gamma-underallocated (density certificate). If the
    density budget rejects too many candidate windows in a row the
    generator falls back to deleting, so it always terminates.
    """
    rng = np.random.default_rng(seed)
    seq = RequestSequence()
    tree = LaminarLoadTree(cfg.horizon)
    active: list = []  # job ids, insertion order
    next_id = 0
    attempts_per_request = 64

    while len(seq) < cfg.num_requests:
        do_delete = active and rng.random() < cfg.delete_fraction
        if not do_delete:
            placed = False
            for _ in range(attempts_per_request):
                span = _draw_span(rng, cfg)
                start = int(rng.integers(0, cfg.horizon // span)) * span
                w = Window(start, start + span)
                if tree.would_fit(w, cfg.num_machines, cfg.gamma):
                    job_id = f"j{next_id}"
                    next_id += 1
                    tree.add(job_id, w)
                    seq.append(InsertJob(Job(job_id, w)))
                    active.append(job_id)
                    placed = True
                    break
            if placed:
                continue
            if not active:
                raise RuntimeError(
                    "generator cannot place any job; horizon too small for gamma"
                )
            do_delete = True
        if do_delete:
            victim_idx = int(rng.integers(0, len(active)))
            job_id = active.pop(victim_idx)
            tree.remove(job_id)
            seq.append(DeleteJob(job_id))
    return seq


def saturated_aligned_jobs(
    num_machines: int,
    gamma: int,
    horizon: int,
    seed: int = 0,
    *,
    max_span: int | None = None,
) -> RequestSequence:
    """Insert-only sequence filling the horizon close to the gamma budget.

    Useful for stress tests: the resulting instance is
    gamma-underallocated but nearly tight, maximizing reservation
    contention.
    """
    if max_span is None:
        max_span = horizon
    cfg = AlignedWorkloadConfig(
        num_requests=10**9,  # effectively unbounded; we stop at saturation
        num_machines=num_machines,
        gamma=gamma,
        horizon=horizon,
        max_span=max_span,
        delete_fraction=0.0,
    )
    rng = np.random.default_rng(seed)
    seq = RequestSequence()
    tree = LaminarLoadTree(horizon)
    next_id = 0
    misses = 0
    while misses < 200:
        span = _draw_span(rng, cfg)
        start = int(rng.integers(0, horizon // span)) * span
        w = Window(start, start + span)
        if tree.would_fit(w, num_machines, gamma):
            job_id = f"s{next_id}"
            next_id += 1
            tree.add(job_id, w)
            seq.append(InsertJob(Job(job_id, w)))
            misses = 0
        else:
            misses += 1
    return seq
