"""Per-theorem bound calculators: overlay theory on measured series.

Each function returns the paper's predicted value for a claim at given
parameters, so reports can print "measured vs bound" columns without
re-deriving constants inline. Upper bounds carry an explicit
``constant`` knob since the paper proves asymptotics only; lower bounds
(Lemmas 11/12, Observation 13) are exact counts from the constructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from .logstar import log_star, paper_level_count


def theorem1_cost_bound(n: int, delta: int, constant: float = 3.0) -> float:
    """Theorem 1 upper bound: constant * min(log* n, log* Delta).

    ``constant`` absorbs the per-level O(1): with our implementation
    each level contributes at most ~3 moves per request (two
    reservation-revocation MOVEs plus the PLACE displacement chain
    visiting each level once).
    """
    if n < 1 or delta < 1:
        raise ValueError("n and delta must be >= 1")
    return constant * max(1, min(log_star(n), log_star(delta)))


def lemma4_cost_bound(n: int, delta: int) -> int:
    """Lemma 4 upper bound: min(log2 n, log2 Delta) + 1 displaced jobs.

    The naive cascade displaces at most one job per distinct aligned
    span; the distinct spans number log2(Delta) (or log2(n) after
    trimming).
    """
    if n < 1 or delta < 1:
        raise ValueError("n and delta must be >= 1")
    return min(max(n, 2).bit_length(), max(delta, 2).bit_length())


def lemma11_migration_bound(s: int) -> float:
    """Lemma 11 lower bound: s/12 migrations over s requests."""
    if s < 0:
        raise ValueError("s must be >= 0")
    return s / 12


def lemma12_reallocation_bound(eta: int, toggles: int) -> int:
    """Lemma 12 lower bound for the staircase: (toggles-1) * (eta-1)."""
    if eta < 1 or toggles < 0:
        raise ValueError("eta >= 1, toggles >= 0 required")
    return max(0, toggles - 1) * (eta - 1)


def observation13_bound(k: int, sweeps: int) -> int:
    """Observation 13 lower bound: k evictions per sweep of the big job."""
    if k < 1 or sweeps < 0:
        raise ValueError("k >= 1, sweeps >= 0 required")
    return k * sweeps


def levels_touched(delta: int) -> int:
    """Number of reservation levels a span-delta instance exercises."""
    return paper_level_count(delta)


@dataclass(frozen=True)
class SlackBudget:
    """The slack bookkeeping of the Theorem 1 composition.

    Tracks how the underallocation constant multiplies through the
    layers, mirroring the proof: ALIGNED costs 4x (Lemma 10), the
    machine reduction costs 6x (Lemma 3), and the single-machine
    reservation core needs 8x (Lemma 8).
    """

    reservation_gamma: int = 8   # Lemma 8
    alignment_factor: int = 4    # Lemma 10
    delegation_factor: int = 6   # Lemma 3

    @property
    def composed_gamma(self) -> int:
        """The γ Theorem 1's statement needs for unaligned m-machine input."""
        return (self.reservation_gamma * self.alignment_factor
                * self.delegation_factor)

    def requirement_at(self, layer: str) -> int:
        """Required underallocation entering a given layer.

        ``"input"`` -> composed; ``"aligned"`` -> after ALIGNED;
        ``"machine"`` -> per-machine single-machine instance.
        """
        if layer == "input":
            return self.composed_gamma
        if layer == "aligned":
            return self.reservation_gamma * self.delegation_factor
        if layer == "machine":
            return self.reservation_gamma
        raise ValueError(f"unknown layer {layer!r}")


#: The paper's (unoptimized) slack budget: 8 * 4 * 6 = 192.
PAPER_SLACK = SlackBudget()
