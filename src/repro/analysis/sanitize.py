"""Runtime journal sanitizer: checking proxies for journaled containers.

The static ``exception-flow`` rules (``staticcheck/stateflow.py``)
prove journal coverage syntactically; this module is the dynamic half
of the differential: checking ``dict`` proxies installed over the
aligned scheduler's journaled containers that raise
:class:`UnjournaledMutationError` the moment a mutation lands inside
an open request or batch scope without its journal entry having been
recorded first. A clean four-backend differential run under the
sanitizer shows the static rules are not unsound (nothing slips past
both); a fault-injection test that strips one ``_jdict`` call and
watches both layers fire shows they are not vacuous.

Enable per instance with ``journal="arena-sanitize"`` or globally with
``REPRO_SANITIZE=1`` in the environment (upgrades every ``"arena"``
scheduler at construction). The proxies are plain ``dict`` subclasses:
they pickle across the process-worker pipe (items are restored before
the owner backref, so reconstruction is exempt from checking) and cost
one attribute read plus one set probe per mutation — an oracle mode,
not a production default.

What is checked, by container:

- ``_placements`` / ``job_slot`` (*job*-keyed): request scope requires
  the ``(id(dict), key)`` first-touch token in the open journal's seen
  set; atomic-batch scope requires the job in the batch touched log
  (``_batch_restore`` rewinds placements from exactly that log).
- ``slot_job`` (*slot*-keyed): same, with the job identity taken from
  the value being written (or the current occupant on delete).
- ``_job_levels``: request scope as above; atomic scope is always
  legal because ``_batch_restore`` rebuilds the level map wholesale.
- ``window_states[lv]`` tables: request scope as above; atomic scope
  requires the table's shallow snapshot (``_jstates_dict``).

Mutations outside any scope — construction, ``_batch_restore`` itself
(the batch log is detached before restoring), journal-free ephemeral
rebuilds — are always legal.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Mapping

__all__ = [
    "SanitizedDict",
    "UnjournaledMutationError",
    "install_sanitizer",
    "sanitize_enabled",
]

#: environment switch: upgrades ``journal="arena"`` schedulers to
#: ``"arena-sanitize"`` at construction time
SANITIZE_ENV = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def sanitize_enabled() -> bool:
    """Is the ``REPRO_SANITIZE`` environment switch on?"""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in _TRUTHY


class UnjournaledMutationError(RuntimeError):
    """A journaled container was mutated inside an open request/batch
    scope without its journal entry having been recorded first.

    Deliberately *not* a :class:`~repro.core.errors.ReproError`
    subclass: the request paths catch and roll back domain errors, and
    a sanitizer report must never be swallowed into a rollback — it
    means the rollback itself would have been wrong.
    """


def _touched_covers(owner: Any, job_id: Any) -> bool:
    """Is ``job_id`` in the live or batch-level touched log?"""
    if job_id is None:
        return False
    touched = getattr(owner, "_touched", None)
    if touched is not None and job_id in touched:
        return True
    batch = getattr(owner, "_batch", None)
    if batch is not None:
        batch_touched = batch.touched
        if batch_touched is not None and job_id in batch_touched:
            return True
    return False


class SanitizedDict(dict):
    """A journaled container that verifies its own journal coverage.

    ``kind`` selects the atomic-scope discipline (see the module
    docstring); ``owner`` is the scheduler whose journal state is
    consulted. The guard only arms once ``_owner`` is set — pickle
    restores items before instance state, so reconstruction mutations
    pass — and every owner probe is a defensive ``getattr``, so a
    half-reconstructed owner (deepcopy memo cycles) never trips it.
    """

    _owner: Any
    _label: str
    _kind: str

    def __init__(self, data: Mapping[Any, Any], *, owner: Any,
                 label: str, kind: str) -> None:
        super().__init__(data)
        self._label = label
        self._kind = kind
        # set last: the guard arms the moment the owner backref lands
        self._owner = owner

    # -- the guard ------------------------------------------------------
    def _report(self, key: Any, why: str) -> None:
        raise UnjournaledMutationError(
            f"unjournaled mutation of {self._label}[{key!r}]: {why}. "
            "Rollback would not restore this entry — journal first "
            "(call the matching _j* first-touch helper before mutating)"
        )

    def _guard(self, key: Any, job_id: Any) -> None:
        owner = getattr(self, "_owner", None)
        if owner is None:
            return  # unarmed: construction / pickle reconstruction
        if getattr(owner, "_journal", None) is not None:
            if (id(self), key) in owner._jseen:
                return
            # Placement-map diet: the failed-request rollback rewinds
            # the three placement maps from the *live* touched log (not
            # the batch-level one — that only rewinds on batch abort),
            # so live-touched coverage is as good as a journal entry
            # for the job/slot kinds.
            if self._kind in ("job", "slot") and job_id is not None:
                touched = getattr(owner, "_touched", None)
                if touched is not None and job_id in touched:
                    return
            self._report(
                key, "the per-request journal holds no first-touch "
                     "token for this key and the live touched log does "
                     "not cover it")
            return
        abatch = getattr(owner, "_abatch", None)
        if abatch is None or not abatch.track:
            return  # no open scope (or an ephemeral, untracked batch)
        kind = self._kind
        if kind == "levels":
            return  # _batch_restore rebuilds the level map wholesale
        if kind == "states":
            if id(self) in abatch.seen:
                return
            self._report(
                key, "the atomic batch holds no shallow snapshot of "
                     "this window-state table")
            return
        if _touched_covers(owner, job_id):
            return
        self._report(
            key, f"job {job_id!r} is not in the batch touched log, so "
                 "the atomic rewind would miss it")

    def _guard_set(self, key: Any, value: Any) -> None:
        if getattr(self, "_owner", None) is None:
            return  # unarmed: pickle restores items before attributes
        self._guard(key, value if self._kind == "slot" else key)

    def _guard_del(self, key: Any) -> None:
        if getattr(self, "_owner", None) is None:
            return  # unarmed: pickle restores items before attributes
        if self._kind == "slot":
            occupant = dict.get(self, key)
            if occupant is None:
                return  # missing key: let the dict op raise KeyError
            self._guard(key, occupant)
        else:
            self._guard(key, key)

    # -- mutators -------------------------------------------------------
    def __setitem__(self, key: Any, value: Any) -> None:
        self._guard_set(key, value)
        dict.__setitem__(self, key, value)

    def __delitem__(self, key: Any) -> None:
        self._guard_del(key)
        dict.__delitem__(self, key)

    def pop(self, key: Any, *default: Any) -> Any:
        if dict.__contains__(self, key):
            self._guard_del(key)
        return dict.pop(self, key, *default)

    def popitem(self) -> tuple[Any, Any]:
        if self:
            self._guard_del(next(reversed(self)))
        return dict.popitem(self)

    def clear(self) -> None:
        for key in self:
            self._guard_del(key)
        dict.clear(self)

    def update(self, *args: Iterable[Any], **kwargs: Any) -> None:
        items = dict(*args, **kwargs)
        for key, value in items.items():
            self._guard_set(key, value)
        dict.update(self, items)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        if not dict.__contains__(self, key):
            self._guard_set(key, default)
        return dict.setdefault(self, key, default)


def install_sanitizer(sched: Any) -> None:
    """Wrap a freshly-constructed aligned scheduler's journaled
    containers in checking proxies (``journal="arena-sanitize"``).

    Must run before any request touches the containers; the
    window-state tables are wrapped per level (the outer level map is
    fixed at construction and never mutated afterwards).
    """
    sched.slot_job = SanitizedDict(
        sched.slot_job, owner=sched, label="slot_job", kind="slot")
    sched.job_slot = SanitizedDict(
        sched.job_slot, owner=sched, label="job_slot", kind="job")
    sched._placements = SanitizedDict(
        sched._placements, owner=sched, label="_placements", kind="job")
    sched._job_levels = SanitizedDict(
        sched._job_levels, owner=sched, label="_job_levels", kind="levels")
    for lv, table in sched.window_states.items():
        sched.window_states[lv] = SanitizedDict(
            table, owner=sched, label=f"window_states[{lv}]",
            kind="states")
