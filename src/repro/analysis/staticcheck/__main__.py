"""``python -m repro.analysis.staticcheck`` — direct CLI entry point."""

from . import main

raise SystemExit(main())
