"""Findings and structured reports for the contract linter.

A :class:`Finding` is one rule violation anchored to a source line; a
:class:`Report` is the outcome of a whole run — findings plus coverage
metadata — renderable as a human-readable text table or as JSON for CI
artifacts and tooling. The JSON layout is stable: top-level ``summary``
(counts per rule and per severity) and a ``findings`` list sorted by
(path, line, code) so diffs between runs are meaningful.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: finding severities, in increasing order of seriousness
SEVERITIES = ("warning", "error")

#: rule-registry version: bump whenever the rule set, a rule's matching
#: logic, or the baseline fingerprint format changes. The ratchet
#: refuses a baseline written under a different version (the artifact
#: alone must reveal staleness), and the JSON report embeds it so a CI
#: artifact is self-describing.
RULES_VERSION = "3.0"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str
    severity: str = "error"
    #: path relative to the repro package root — machine-independent,
    #: used for baseline fingerprints (``path`` may be absolute)
    scope: str = ""
    #: enclosing function qualname (``Class.method``) — line-stable
    #: anchor for baseline fingerprints; interprocedural rules set it
    context: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Line-number-independent identity for the ratchet baseline."""
        anchor = self.context if self.context else f"line{self.line}"
        return f"{self.scope or self.path}::{self.code}::{anchor}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "scope": self.scope,
            "context": self.context,
        }


@dataclass
class Report:
    """Outcome of one linter run over a set of source files."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()
    suppressed: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def ok(self, *, strict: bool = False) -> bool:
        """True when the run passes: no errors (and, strict, no warnings)."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def to_json(self, *, extra: dict[str, object] | None = None) -> str:
        payload: dict[str, object] = {
            "summary": {
                "rules_version": RULES_VERSION,
                "files_checked": self.files_checked,
                "rules_run": list(self.rules_run),
                "findings": len(self.findings),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": self.suppressed,
                "by_rule": self.counts_by_rule(),
            },
            "findings": [f.to_dict() for f in sorted(self.findings)],
        }
        if extra:
            payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=False)

    def to_text(self) -> str:
        lines: list[str] = []
        for f in sorted(self.findings):
            lines.append(
                f"{f.location()}: {f.severity} {f.code} [{f.rule}] {f.message}"
            )
        by_rule = ", ".join(
            f"{rule}={n}" for rule, n in self.counts_by_rule().items()
        )
        lines.append(
            f"staticcheck: {self.files_checked} file(s), "
            f"{len(self.rules_run)} rule(s), {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {self.suppressed} suppressed"
            + (f" [{by_rule}]" if by_rule else "")
        )
        return "\n".join(lines)
