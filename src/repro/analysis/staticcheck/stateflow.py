"""State-integrity rule families: exception flow and state boundary.

Two strict (non-ratcheted) families built on the interprocedural call
graph (``callgraph.py``), proving the rollback and serialization
disciplines the runtime's correctness story rests on:

- ``exception-flow`` (EXC001/EXC002) — raise-path analysis over the
  functions reachable inside an open journal scope (a per-request
  arena ``mark()`` or an atomic-batch log). EXC001 flags a
  journaled-container mutation that an exception can interrupt
  *before* its journal entry is recorded (the journal-before-mutate
  ordering contract: rollback replays only what was captured). EXC002
  flags an ``except`` handler that tears the journal down (truncate /
  release / commit) without replaying it first — the PR 5
  journal-carry bug shape: an aborted atomic batch whose undo entries
  were dropped instead of applied.
- ``state-boundary`` (SER001/SER002) — field-precise pickle-boundary
  coverage. SER001 diffs the ``self.X`` assignment sites of a class
  against the keys its ``__getstate__`` drops and its ``__setstate__``
  rebuilds: a field dropped at the boundary but never rebuilt is the
  PR 4 stale-state bug shape, caught per field instead of per class.
  SER002 guards process mode: a coordinator that owns process-resident
  shard workers may not mutate a per-machine sub-scheduler without
  first leaving process mode (``_leave_process_mode()``), or the
  worker-side replica silently diverges from the coordinator's copy.

Both families run in the strict gate (``repro lint --strict``): the
live tree must be clean, with per-line suppressions carrying the
rationale anywhere a pattern is provably safe.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from .callgraph import Program, build_program, iter_own_nodes
from .engine import Rule, SourceFile, register
from .hotpath import _PROGRAM_KEY
from .report import Finding
from .rules import (
    ACK_ATTRS,
    ACK_CALLS,
    JOURNAL_CONTRACTS,
    MUTATOR_METHODS,
    JournalContract,
    _class_methods,
    _collect_aliases,
    _is_tracked,
    _iter_mutations,
    _matches_any,
    _self_attr_assignments,
)

# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

#: calls that open a journal scope (per-request or atomic batch)
_SCOPE_OPENERS = frozenset({"_journal_acquire", "_batch_begin"})

#: per-container journal acknowledgements for the *ordering* check.
#: ``_journal_acquire`` is deliberately excluded: it opens the scope
#: but records no entry, so it must not satisfy "journaled before
#: mutated" for any container.
_EXC_ACK_CALLS = frozenset(ACK_CALLS - {"_journal_acquire"})

#: handler calls that tear the journal down without applying it
_TEARDOWN_CALLS = frozenset({
    "truncate", "_journal_release", "_release_batch_log",
    "commit_txn", "_batch_commit",
})

#: handler calls that replay/apply the journal (legal teardown prefix)
_REPLAY_CALLS = frozenset({
    "replay_entries", "rollback", "_rollback", "_batch_restore",
    "_batch_abort", "abort_txn",
})


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _opens_scope(fn: ast.AST) -> bool:
    """Does this function open a journal scope in its own body?"""
    for node in iter_own_nodes(fn):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in _SCOPE_OPENERS:
            return True
        if (name == "mark" and isinstance(node.func, ast.Attribute)
                and not node.args and not node.keywords):
            return True
    return False


def _shared_program(files: Sequence[SourceFile],
                    shared: dict[str, object]) -> Program:
    """Reuse the per-run program the hot-path rules build (or build it)."""
    program = shared.get(_PROGRAM_KEY)
    if not isinstance(program, Program):
        program = build_program(files)
        shared[_PROGRAM_KEY] = program
    return program


def _raise_closure(program: Program) -> set[str]:
    """Fixpoint of "can raise": own ``raise`` plus raising callees."""
    can_raise = {
        nid for nid, info in program.functions.items()
        if any(isinstance(n, ast.Raise) for n in iter_own_nodes(info.node))
    }
    changed = True
    while changed:
        changed = False
        for nid, targets in program.edges.items():
            if nid not in can_raise and targets & can_raise:
                can_raise.add(nid)
                changed = True
    return can_raise


def _scope_closure(program: Program) -> set[str]:
    """Functions that run inside an open journal scope.

    Seeds are the scope-opening functions themselves (their remaining
    body runs with the scope open); the closure adds everything they
    transitively call.
    """
    seeds = {
        nid for nid, info in program.functions.items()
        if _opens_scope(info.node)
    }
    in_scope = set(seeds)
    frontier = list(seeds)
    while frontier:
        nid = frontier.pop()
        for target in program.edges.get(nid, ()):
            if target not in in_scope:
                in_scope.add(target)
                frontier.append(target)
    return in_scope


def _ack_lines(method: ast.AST) -> set[int]:
    """Lines where ``method`` records a journal entry.

    A first-touch helper call (``_jdict`` & co, minus the scope-opening
    ``_journal_acquire``) or a mutating call on an ``undo_log`` /
    ``_journal`` / ``_abatch`` receiver (alias-aware: the interval
    mutators bind ``undo_log = self.undo_log`` before appending).
    """
    aliases = _collect_aliases(method, ACK_ATTRS)
    lines: set[int] = set()
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in _EXC_ACK_CALLS:
            lines.add(node.lineno)
        elif (name in MUTATOR_METHODS
                and isinstance(node.func, ast.Attribute)
                and _is_tracked(node.func.value, ACK_ATTRS, aliases)):
            lines.add(node.lineno)
    return lines


# ---------------------------------------------------------------------------
# exception-flow (EXC001 / EXC002)
# ---------------------------------------------------------------------------

class ExceptionFlowRule(Rule):
    name = "exception-flow"
    description = (
        "inside an open journal scope, mutations must be journaled "
        "before any raise can fire, and except handlers must replay "
        "the journal before tearing it down"
    )
    scopes = ("reservation/", "multimachine/", "core/")

    def __init__(self) -> None:
        self._program: Program | None = None
        self._can_raise: set[str] = set()
        self._in_scope: set[str] = set()

    def prepare(self, files: Sequence[SourceFile],
                shared: dict[str, object]) -> None:
        program = _shared_program(files, shared)
        self._program = program
        self._can_raise = _raise_closure(program)
        self._in_scope = _scope_closure(program)

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        yield from self._check_mutation_ordering(sf)
        yield from self._check_handlers(sf)

    # -- EXC001: journal-before-mutate ordering -------------------------
    def _check_mutation_ordering(self, sf: SourceFile) -> Iterator[Finding]:
        for cls in ast.walk(sf.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            contract = JOURNAL_CONTRACTS.get(cls.name)
            if contract is None:
                continue
            for method in _class_methods(cls):
                if _matches_any(method.name, contract.exempt):
                    continue
                node_id = f"{sf.scope}::{cls.name}.{method.name}"
                if node_id not in self._in_scope:
                    continue
                yield from self._check_method(
                    sf, cls, method, node_id, contract)

    def _check_method(self, sf: SourceFile, cls: ast.ClassDef,
                      method: ast.FunctionDef, node_id: str,
                      contract: JournalContract) -> Iterator[Finding]:
        mutations = list(_iter_mutations(method, contract.attrs))
        if not mutations:
            return
        raise_lines = sorted(self._raise_lines(method, node_id))
        if not raise_lines:
            return
        ack_lines = sorted(_ack_lines(method))
        for mut, desc in mutations:
            line = getattr(mut, "lineno", 0)
            if any(a <= line for a in ack_lines):
                continue  # journaled before (or at) the mutation
            next_ack = min((a for a in ack_lines if a > line), default=None)
            # strictly before the next ack: a raise-capable call on the
            # ack line itself (e.g. the closure factory inside the
            # append) runs with the entry being recorded
            danger = [r for r in raise_lines
                      if r > line and (next_ack is None or r < next_ack)]
            if not danger:
                continue
            yield self.finding(
                sf, mut, "EXC001",
                f"{cls.name}.{method.name} mutates journaled container "
                f"({desc}) inside an open journal scope, and a raise "
                f"reachable at line {danger[0]} can fire before the "
                "journal entry is recorded — rollback would miss this "
                "mutation; capture first (call a _j* first-touch helper "
                "or append the undo entry before mutating)",
                context=f"{cls.name}.{method.name}",
            )

    def _raise_lines(self, method: ast.AST, node_id: str) -> set[int]:
        """Lines in ``method`` where an exception can originate.

        Own ``raise`` statements, plus calls whose name matches a
        call-graph edge target that transitively raises. Unresolved
        receivers (stored callables, builtins) are treated as
        non-raising — precision over recall on the real tree.
        """
        lines = {
            n.lineno for n in iter_own_nodes(method)
            if isinstance(n, ast.Raise)
        }
        program = self._program
        if program is None:  # pragma: no cover - engine always prepares
            return lines
        raising_names = set()
        for target in program.edges.get(node_id, ()):
            if target in self._can_raise:
                qualname = target.split("::", 1)[-1]
                name = qualname.rsplit(".", 1)[-1]
                # builtin-container method names (add/append/pop/...)
                # resolve by name to unrelated classes (SlotIndex.add,
                # RequestSequence.append); a call spelled that way is
                # overwhelmingly a plain dict/set/list mutation, so
                # treat it as non-raising — precision over recall
                if name not in MUTATOR_METHODS:
                    raising_names.add(name)
        if raising_names:
            for node in iter_own_nodes(method):
                if (isinstance(node, ast.Call)
                        and _call_name(node) in raising_names):
                    lines.add(node.lineno)
        return lines

    # -- EXC002: handlers must replay before teardown -------------------
    def _check_handlers(self, sf: SourceFile) -> Iterator[Finding]:
        for fn in ast.walk(sf.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in iter_own_nodes(fn):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                calls = {
                    _call_name(c)
                    for stmt in node.body
                    for c in ast.walk(stmt)
                    if isinstance(c, ast.Call)
                }
                teardown = sorted(calls & _TEARDOWN_CALLS)
                if not teardown or calls & _REPLAY_CALLS:
                    continue
                yield self.finding(
                    sf, node, "EXC002",
                    f"{fn.name} handles an exception by tearing down "
                    f"the journal ({', '.join(teardown)}) without "
                    "replaying it — dropped undo entries leave "
                    "half-applied state (the PR 5 journal-carry bug "
                    "shape); replay/abort before truncating or "
                    "committing",
                    context=fn.name,
                )


# ---------------------------------------------------------------------------
# state-boundary (SER001 / SER002)
# ---------------------------------------------------------------------------

#: sub-scheduler request-surface calls a coordinator may only make
#: outside process mode (the worker-resident replica would diverge)
_SUB_MUTATION_CALLS = frozenset({
    "insert", "delete", "apply", "apply_batch", "apply_batch_sharded",
    "_apply_insert", "_apply_delete",
})

#: calls that leave process mode (sync local subs back from workers)
_LEAVE_CALLS = frozenset({"_leave_process_mode", "close_shard_workers"})

#: methods allowed to touch subs without leaving first: the process
#: machinery itself plus the batch paths, which leave at batch open
_SER002_EXEMPT = (
    "__init__", "_leave_process_mode", "close_shard_workers",
    "_ensure_shard_pool", "_sharded_burst*", "_batch_*",
    "_merge_shard_results",
)

_MACHINES_ATTRS = frozenset({"machines"})


def _mentions_machines(node: ast.AST, aliases: set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _MACHINES_ATTRS:
            return True
        if (isinstance(sub, ast.Name) and sub.id in aliases
                and not isinstance(sub.ctx, ast.Store)):
            return True
    return False


def _dropped_keys(getstate: ast.FunctionDef) -> list[tuple[str, ast.AST]]:
    """(key, node) for every ``del state["k"]`` / ``state.pop("k")``."""
    dropped: list[tuple[str, ast.AST]] = []
    for node in ast.walk(getstate):
        if isinstance(node, ast.Delete):
            for t in node.targets:
                if (isinstance(t, ast.Subscript)
                        and isinstance(t.slice, ast.Constant)
                        and isinstance(t.slice.value, str)):
                    dropped.append((t.slice.value, node))
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop" and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            dropped.append((node.args[0].value, node))
    return dropped


def _rebuilt_keys(setstate: ast.FunctionDef,
                  methods: dict[str, ast.FunctionDef]) -> set[str]:
    """Fields ``__setstate__`` rebuilds, expanding same-class helpers."""
    rebuilt: set[str] = set()
    seen = {setstate.name}
    stack: list[ast.FunctionDef] = [setstate]
    while stack:
        fn = stack.pop()
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                if isinstance(node, ast.Assign):
                    targets: list[ast.expr] = []
                    for t in node.targets:
                        targets.extend(
                            t.elts if isinstance(t, ast.Tuple) else [t])
                else:
                    targets = [node.target]
                for t in targets:
                    if (isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"):
                        rebuilt.add(t.attr)
                    elif (isinstance(t, ast.Subscript)
                            and isinstance(t.value, ast.Attribute)
                            and t.value.attr == "__dict__"
                            and isinstance(t.slice, ast.Constant)
                            and isinstance(t.slice.value, str)):
                        rebuilt.add(t.slice.value)
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                        and func.attr in methods
                        and func.attr not in seen):
                    seen.add(func.attr)
                    stack.append(methods[func.attr])
    return rebuilt


class StateBoundaryRule(Rule):
    name = "state-boundary"
    description = (
        "every field __getstate__ drops must be rebuilt by "
        "__setstate__, and coordinators must leave process mode "
        "before mutating per-machine sub-schedulers"
    )
    scopes = ("reservation/", "core/", "levels/", "multimachine/")

    def __init__(self) -> None:
        self._program: Program | None = None

    def prepare(self, files: Sequence[SourceFile],
                shared: dict[str, object]) -> None:
        self._program = _shared_program(files, shared)

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        yield from self._check_pickle_fields(sf)
        if sf.scope.startswith("multimachine/"):
            yield from self._check_process_mode(sf)

    # -- SER001: dropped-but-never-rebuilt fields -----------------------
    def _check_pickle_fields(self, sf: SourceFile) -> Iterator[Finding]:
        for cls in ast.walk(sf.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {m.name: m for m in _class_methods(cls)}
            getstate = methods.get("__getstate__")
            if getstate is None:
                continue
            fields = {
                attr for _, attr, _, _ in _self_attr_assignments(cls)
            }
            setstate = methods.get("__setstate__")
            rebuilt = (_rebuilt_keys(setstate, methods)
                       if setstate is not None else set())
            for key, node in _dropped_keys(getstate):
                if key not in fields or key in rebuilt:
                    continue
                how = ("but the class defines no __setstate__"
                       if setstate is None
                       else "and __setstate__ never rebuilds it")
                yield self.finding(
                    sf, node, "SER001",
                    f"{cls.name}.__getstate__ drops field '{key}' at "
                    f"the pickle boundary {how} — the restored object "
                    "is missing live state (the PR 4 stale-closure bug "
                    "shape, field-precise)",
                    context=f"{cls.name}.__getstate__",
                )

    # -- SER002: process-mode discipline --------------------------------
    def _defines_leave(self, cls_name: str) -> bool:
        program = self._program
        if program is None:  # pragma: no cover - engine always prepares
            return False
        seen: set[str] = set()
        stack = [cls_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            info = program.classes.get(name)
            if info is None:
                continue
            if "_leave_process_mode" in info.methods:
                return True
            stack.extend(info.bases)
        return False

    def _check_process_mode(self, sf: SourceFile) -> Iterator[Finding]:
        for cls in ast.walk(sf.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not self._defines_leave(cls.name):
                continue
            for method in _class_methods(cls):
                if _matches_any(method.name, _SER002_EXEMPT):
                    continue
                leave_lines = sorted(
                    n.lineno for n in ast.walk(method)
                    if isinstance(n, ast.Call)
                    and _call_name(n) in _LEAVE_CALLS
                )
                aliases = _collect_aliases(method, _MACHINES_ATTRS)
                for node in ast.walk(method):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    if not (isinstance(func, ast.Attribute)
                            and func.attr in _SUB_MUTATION_CALLS):
                        continue
                    if not _mentions_machines(func.value, aliases):
                        continue
                    if any(ln <= node.lineno for ln in leave_lines):
                        continue
                    yield self.finding(
                        sf, node, "SER002",
                        f"{cls.name}.{method.name} mutates a "
                        "per-machine sub-scheduler "
                        f"({func.attr}) without first leaving process "
                        "mode — the worker-resident replica diverges "
                        "from the coordinator's copy; call "
                        "_leave_process_mode() before touching "
                        "self.machines",
                        context=f"{cls.name}.{method.name}",
                    )


# ---------------------------------------------------------------------------

register(ExceptionFlowRule())
register(StateBoundaryRule())
