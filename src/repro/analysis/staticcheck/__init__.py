"""Contract-enforcing static analysis for the reservation stack.

The runtime's correctness story rests on disciplines nothing checked
before runtime: every hot-path mutation must append an undo entry to
the arena journal, every backend must produce bit-identical placements,
and everything crossing the process-worker pipe must survive pickling
with closures rebuilt on restore. This package checks those contracts
at review time with an AST pass — ``repro lint`` / ``scripts/
run_staticcheck.py`` — instead of leaving them to shrunken
differential-harness counterexamples.

Public surface:

- :func:`analyze_paths` / :func:`analyze_source` — run rules, get a
  :class:`Report` of :class:`Finding` objects.
- :func:`registered_rules` / :func:`resolve_rules` / :func:`register`
  — the rule registry (see ``docs/STATIC_ANALYSIS.md`` for how to add
  a rule).
- :func:`main` — the ``repro lint`` command implementation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .baseline import (
    DEFAULT_BASELINE,
    RatchetResult,
    check_ratchet,
    load_baseline,
    write_baseline,
)
from .callgraph import HOT_ENTRY_POINTS, Program, build_program
from .engine import (
    Rule,
    SourceFile,
    analyze_paths,
    analyze_source,
    register,
    registered_rules,
    resolve_rules,
    scope_of,
)
from .report import RULES_VERSION, Finding, Report

__all__ = [
    "DEFAULT_BASELINE",
    "Finding",
    "HOT_ENTRY_POINTS",
    "Program",
    "RULES_VERSION",
    "RatchetResult",
    "Report",
    "Rule",
    "SourceFile",
    "analyze_paths",
    "analyze_source",
    "build_parser",
    "build_program",
    "check_ratchet",
    "load_baseline",
    "main",
    "register",
    "registered_rules",
    "resolve_rules",
    "scope_of",
    "write_baseline",
]

#: default analysis root: the repro package this file lives inside
DEFAULT_ROOT = Path(__file__).resolve().parent.parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific contract linter (journal coverage, "
                    "determinism, pickle boundary, rollback safety, "
                    "typing coverage) plus the ratcheted interprocedural "
                    "hot-path rules (--ratchet)",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help=f"files or directories to check (default: {DEFAULT_ROOT})")
    parser.add_argument(
        "--rules", default="",
        help="comma-separated rule subset (default: every non-ratcheted "
             "rule; with --ratchet, every ratcheted rule)")
    parser.add_argument(
        "--select", default="",
        help="comma-separated rule families to keep from the resolved "
             "set (so a CI job runs one family group without "
             "re-running every rule)")
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        dest="format_", help="report format")
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too, not just errors")
    parser.add_argument(
        "--ratchet", action="store_true",
        help="compare findings against the checked-in baseline instead "
             "of zero: fail on new findings and on a stale-loose baseline")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"ratchet baseline file (default: {DEFAULT_BASELINE})")
    parser.add_argument(
        "--write-baseline", action="store_true", dest="write_baseline",
        help="regenerate the baseline from this run's findings and exit")
    parser.add_argument(
        "--list-rules", action="store_true", dest="list_rules",
        help="list registered rules and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for name, rule in sorted(registered_rules().items()):
            scopes = ", ".join(rule.scopes) if rule.scopes else "all files"
            mark = " (ratcheted)" if rule.ratcheted else ""
            print(f"{name:20s} [{scopes}]{mark}\n    {rule.description}")
        return 0
    ratchet_mode = args.ratchet or args.write_baseline
    names = ([n.strip() for n in args.rules.split(",") if n.strip()]
             or None)
    select = ([n.strip() for n in args.select.split(",") if n.strip()]
              or None)
    try:
        if names is None and ratchet_mode:
            # the ratchet covers exactly the ratcheted rule families
            rules = [r for r in resolve_rules(include_ratcheted=True,
                                              select=select)
                     if r.ratcheted]
        else:
            rules = resolve_rules(names, include_ratcheted=ratchet_mode,
                                  select=select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    paths = args.paths or [DEFAULT_ROOT]
    report = analyze_paths(paths, rules)
    if args.write_baseline:
        write_baseline(report, args.baseline)
        print(f"baseline written to {args.baseline} "
              f"({len(report.findings)} finding(s), "
              f"{report.files_checked} file(s))")
        return 0
    ratchet = check_ratchet(report, args.baseline) if args.ratchet else None
    if args.format_ == "json":
        extra = {"ratchet": ratchet.to_dict()} if ratchet else None
        print(report.to_json(extra=extra))
    else:
        print(report.to_text())
        if ratchet is not None:
            print(ratchet.to_text())
    if ratchet is not None:
        return 0 if ratchet.ok else 1
    return 0 if report.ok(strict=args.strict) else 1


if __name__ == "__main__":  # pragma: no cover - module entry point
    raise SystemExit(main())
