"""Contract-enforcing static analysis for the reservation stack.

The runtime's correctness story rests on disciplines nothing checked
before runtime: every hot-path mutation must append an undo entry to
the arena journal, every backend must produce bit-identical placements,
and everything crossing the process-worker pipe must survive pickling
with closures rebuilt on restore. This package checks those contracts
at review time with an AST pass — ``repro lint`` / ``scripts/
run_staticcheck.py`` — instead of leaving them to shrunken
differential-harness counterexamples.

Public surface:

- :func:`analyze_paths` / :func:`analyze_source` — run rules, get a
  :class:`Report` of :class:`Finding` objects.
- :func:`registered_rules` / :func:`resolve_rules` / :func:`register`
  — the rule registry (see ``docs/STATIC_ANALYSIS.md`` for how to add
  a rule).
- :func:`main` — the ``repro lint`` command implementation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .engine import (
    Rule,
    SourceFile,
    analyze_paths,
    analyze_source,
    register,
    registered_rules,
    resolve_rules,
    scope_of,
)
from .report import Finding, Report

__all__ = [
    "Finding",
    "Report",
    "Rule",
    "SourceFile",
    "analyze_paths",
    "analyze_source",
    "build_parser",
    "main",
    "register",
    "registered_rules",
    "resolve_rules",
    "scope_of",
]

#: default analysis root: the repro package this file lives inside
DEFAULT_ROOT = Path(__file__).resolve().parent.parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific contract linter (journal coverage, "
                    "determinism, pickle boundary, rollback safety, "
                    "typing coverage)",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help=f"files or directories to check (default: {DEFAULT_ROOT})")
    parser.add_argument(
        "--rules", default="",
        help="comma-separated rule subset (default: all)")
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        dest="format_", help="report format")
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too, not just errors")
    parser.add_argument(
        "--list-rules", action="store_true", dest="list_rules",
        help="list registered rules and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for name, rule in sorted(registered_rules().items()):
            scopes = ", ".join(rule.scopes) if rule.scopes else "all files"
            print(f"{name:20s} [{scopes}]\n    {rule.description}")
        return 0
    names = ([n.strip() for n in args.rules.split(",") if n.strip()]
             or None)
    try:
        rules = resolve_rules(names)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    paths = args.paths or [DEFAULT_ROOT]
    report = analyze_paths(paths, rules)
    if args.format_ == "json":
        print(report.to_json())
    else:
        print(report.to_text())
    return 0 if report.ok(strict=args.strict) else 1


if __name__ == "__main__":  # pragma: no cover - module entry point
    raise SystemExit(main())
