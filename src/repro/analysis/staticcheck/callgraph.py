"""Whole-repo module import graph, call graph, and hot-path tagging.

The intraprocedural rules (PR 6) check one function at a time; the
hot-path performance contract needs to know *which* functions are hot —
``apply_batch`` three frames up makes a helper hot even though nothing
in its own body says so. This module builds that interprocedural view
from the same parsed :class:`~.engine.SourceFile` objects the engine
already holds:

- **Module import graph** — which repro modules import which
  (``Program.module_imports``), resolved through relative imports.
- **Call graph** — one :class:`FunctionInfo` node per named function
  (methods, module-level functions, *and* named nested functions), with
  edges resolved class-aware where the receiver is known:

  - ``self.method(...)`` resolves through the receiver class, its
    bases, **and its subclasses** (virtual dispatch: the scheduler
    delegation chains route ``apply`` → backend overrides);
  - ``super().method(...)`` resolves through the bases only;
  - ``Name(...)`` resolves to same-name module-level functions, or to
    ``Class.__init__`` (plus dataclass ``default_factory`` targets and
    ``__post_init__``) when the name is a repo class;
  - ``other.method(...)`` with an unknown receiver falls back to every
    repo function of that name (conservative by-name resolution);
  - a function *referenced* but not called (``sorted(key=self._k)``,
    hooks stored on attributes) gets a direct edge from the referencing
    function — the C-level or attribute-store indirection is invisible
    to a profiler anyway, so the reference site is the honest static
    caller;
  - an attribute read whose name matches a repo ``@property`` gets an
    edge to the getter (property access runs code).

- **Hot propagation** — breadth-first reachability over those edges
  from the declared hot entry points (:data:`HOT_ENTRY_POINTS`: the
  request surface, ``Interval`` mutations, the incremental verifier)
  tags every function ``hot: bool``. Nested named functions of a hot
  function are also hot (they are rebuilt per call on the same path).

Soundness escape hatches — :meth:`Program.has_edge` accepts three edge
kinds beyond the explicit graph, because Python can always call where
syntax can't see:

- **dunder methods** are implicitly callable from anywhere (``hash()``,
  ``==``, ``with``, ``repr`` in an f-string);
- **generator functions** execute at *iteration* sites, not call
  sites, so edges into them are implicit;
- a function that makes a **dynamic call** (through a parameter, a
  subscript, or a call result) may reach any *address-taken* function
  (one that is referenced somewhere without being called).

Hot propagation deliberately does **not** follow those implicit edges
(they would tag nearly everything); the differential soundness test in
``tests/test_callgraph.py`` checks the combination — every call edge
observed under ``sys.setprofile`` must satisfy ``has_edge``.
"""

from __future__ import annotations

import ast
import builtins
from collections import deque
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Iterable, Iterator, Sequence

from .engine import SourceFile

#: (class-name glob, function-name glob) seeds for hot propagation: the
#: request surface, the Interval mutation layer, and the incremental
#: verifier's per-request path. ``*`` matches any class; module-level
#: functions match class name ``""``.
HOT_ENTRY_POINTS: tuple[tuple[str, str], ...] = (
    ("*", "apply"),
    ("*", "apply_batch"),
    ("*", "insert"),
    ("*", "delete"),
    ("Interval", "add_dynamic"),
    ("Interval", "slot_lowered"),
    ("Interval", "slot_raised"),
    ("Interval", "swap_slots"),
    ("Interval", "rebalance"),
    ("IncrementalVerifier", "observe"),
    ("IncrementalVerifier", "verify*"),
)

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass
class FunctionInfo:
    """One named function (method, module-level, or named nested def)."""

    node_id: str
    scope: str
    qualname: str
    name: str
    class_name: str | None
    lineno: int
    #: first physical line (decorators included) — matches
    #: ``code.co_firstlineno`` for runtime frame mapping
    first_lineno: int
    end_lineno: int
    is_property: bool
    is_generator: bool
    is_dunder: bool
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False)
    #: reachable from a hot entry point (set by propagate_hot)
    hot: bool = False
    #: the entry point or caller that first tagged this function hot
    hot_via: str | None = None
    #: calls through a parameter / subscript / call result — may reach
    #: any address-taken function
    makes_dynamic_calls: bool = False


@dataclass
class ClassInfo:
    """One class definition: bases by name, methods by name."""

    name: str
    scope: str
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False
    #: names passed as ``field(default_factory=...)`` (constructor work)
    default_factories: tuple[str, ...] = ()


def iter_own_nodes(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk ``fn``'s body, descending into lambdas and comprehensions
    but not into named nested functions (those are their own nodes)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # separate call-graph node
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    # yields cannot occur in lambdas, and iter_own_nodes does not
    # descend into named nested functions, so any yield seen is fn's own
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in iter_own_nodes(fn))


def _first_lineno(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> int:
    return min([d.lineno for d in fn.decorator_list] + [fn.lineno])


def _decorator_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _attr_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None if not a pure name/attr chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def module_name_of(scope: str) -> str:
    """``reservation/scheduler.py`` -> ``repro.reservation.scheduler``."""
    dotted = scope[:-3] if scope.endswith(".py") else scope
    dotted = dotted.replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return f"repro.{dotted}" if dotted else "repro"


class Program:
    """The whole-repo interprocedural view (see module docstring)."""

    def __init__(self) -> None:
        #: node_id -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> ClassInfo (class names are unique in this repo;
        #: later definitions win, matching by-name resolution)
        self.classes: dict[str, ClassInfo] = {}
        #: explicit call edges (resolved + by-name + reference)
        self.edges: dict[str, set[str]] = {}
        #: repro module -> repro modules it imports
        self.module_imports: dict[str, set[str]] = {}
        #: function name -> node_ids (by-name fallback index)
        self._by_name: dict[str, list[str]] = {}
        #: property name -> node_ids of their getters/setters
        self._properties: dict[str, list[str]] = {}
        #: functions referenced without being called
        self.address_taken: set[str] = set()
        #: scope -> [(first_lineno, end_lineno, node_id)], sorted
        self._spans: dict[str, list[tuple[int, int, str]]] = {}

    # -- queries ----------------------------------------------------------
    def functions_in(self, scope: str) -> list[FunctionInfo]:
        return [f for f in self.functions.values() if f.scope == scope]

    def by_name(self, name: str) -> list[str]:
        return list(self._by_name.get(name, ()))

    def function_at(self, scope: str, lineno: int) -> FunctionInfo | None:
        """Innermost named function containing ``lineno`` (for mapping
        runtime frames — lambdas and genexps map to their enclosure)."""
        best: FunctionInfo | None = None
        for start, end, node_id in self._spans.get(scope, ()):
            if start <= lineno <= end:
                info = self.functions[node_id]
                if (best is None
                        or (info.first_lineno >= best.first_lineno
                            and info.end_lineno <= best.end_lineno)):
                    best = info
        return best

    def has_edge(self, caller_id: str, callee_id: str) -> bool:
        """Explicit edge, or one of the implicit soundness edges."""
        if callee_id in self.edges.get(caller_id, ()):
            return True
        callee = self.functions.get(callee_id)
        if callee is None:
            return False
        if callee.is_dunder or callee.is_generator:
            return True
        caller = self.functions.get(caller_id)
        if caller is not None and caller.makes_dynamic_calls:
            return callee_id in self.address_taken
        return False

    def hot_functions(self) -> list[FunctionInfo]:
        return [f for f in self.functions.values() if f.hot]

    # -- hot propagation --------------------------------------------------
    def propagate_hot(
        self,
        entry_points: Sequence[tuple[str, str]] = HOT_ENTRY_POINTS,
    ) -> None:
        queue: deque[str] = deque()
        for info in self.functions.values():
            cls = info.class_name or ""
            for cls_pat, name_pat in entry_points:
                if fnmatch(cls, cls_pat) and fnmatch(info.name, name_pat):
                    info.hot = True
                    info.hot_via = f"entry:{name_pat}"
                    queue.append(info.node_id)
                    break
        # nested named functions ride with their enclosing function
        children: dict[str, list[str]] = {}
        for node_id, info in self.functions.items():
            if "." in info.qualname and info.class_name is None:
                parent = node_id.rsplit(".", 1)[0]
                if parent in self.functions:
                    children.setdefault(parent, []).append(node_id)
        while queue:
            caller = queue.popleft()
            nested = children.get(caller, [])
            for callee in sorted(self.edges.get(caller, ())) + nested:
                info = self.functions[callee]
                if not info.hot:
                    info.hot = True
                    info.hot_via = caller
                    queue.append(callee)

    def hot_path_to(self, node_id: str) -> list[str]:
        """The tagging chain from an entry point to ``node_id``."""
        path = [node_id]
        seen = {node_id}
        via = self.functions[node_id].hot_via
        while via is not None and not via.startswith("entry:"):
            if via in seen:  # pragma: no cover - defensive
                break
            path.append(via)
            seen.add(via)
            via = self.functions[via].hot_via
        if via is not None:
            path.append(via)
        path.reverse()
        return path


def build_program(
    files: Iterable[SourceFile],
    *,
    entry_points: Sequence[tuple[str, str]] = HOT_ENTRY_POINTS,
) -> Program:
    """Index, link, and hot-tag every function in ``files``."""
    program = Program()
    collected: list[FunctionInfo] = []
    for sf in files:
        _index_file(program, sf, collected)
    for info in collected:
        _extract_calls(program, info)
    for scope_spans in program._spans.values():
        scope_spans.sort()
    program.propagate_hot(entry_points)
    return program


# ---------------------------------------------------------------------------
# pass 1: index functions, classes, imports
# ---------------------------------------------------------------------------

def _index_file(program: Program, sf: SourceFile,
                collected: list[FunctionInfo]) -> None:
    module = module_name_of(sf.scope)
    imports = program.module_imports.setdefault(module, set())
    for node in ast.walk(sf.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            _index_import(node, module, imports)

    def add_function(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                     class_name: str | None, qualname: str) -> None:
        decorators = _decorator_names(fn)
        info = FunctionInfo(
            node_id=f"{sf.scope}::{qualname}",
            scope=sf.scope,
            qualname=qualname,
            name=fn.name,
            class_name=class_name,
            lineno=fn.lineno,
            first_lineno=_first_lineno(fn),
            end_lineno=fn.end_lineno or fn.lineno,
            is_property=bool(decorators & {"property", "setter",
                                           "cached_property"}),
            is_generator=_is_generator(fn),
            is_dunder=(fn.name.startswith("__") and fn.name.endswith("__")
                       and fn.name != "__init__"),
            node=fn,
        )
        program.functions[info.node_id] = info
        program._by_name.setdefault(fn.name, []).append(info.node_id)
        if info.is_property:
            program._properties.setdefault(fn.name, []).append(info.node_id)
        program._spans.setdefault(sf.scope, []).append(
            (info.first_lineno, info.end_lineno, info.node_id))
        collected.append(info)
        if class_name is not None:
            cls = program.classes.get(class_name)
            if cls is not None and cls.scope == sf.scope:
                cls.methods.setdefault(fn.name, info.node_id)
        # named nested functions become their own nodes (iter_own_nodes
        # yields them without descending, so recursion terminates)
        for sub in iter_own_nodes(fn):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(sub, None, f"{qualname}.{sub.name}")

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                _index_class(program, sf, child)
                for item in child.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        add_function(item, child.name,
                                     f"{child.name}.{item.name}")
                    elif isinstance(item, ast.ClassDef):
                        visit(child)
                        break
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(child, None, child.name)
            elif not isinstance(child, (ast.Import, ast.ImportFrom)):
                visit(child)

    visit(sf.tree)


def _index_class(program: Program, sf: SourceFile,
                 node: ast.ClassDef) -> None:
    bases: list[str] = []
    for base in node.bases:
        chain = _attr_chain(base)
        if chain:
            bases.append(chain[-1])
    decorators: set[str] = set()
    for dec in node.decorator_list:
        chain = _attr_chain(dec.func if isinstance(dec, ast.Call) else dec)
        if chain:
            decorators.add(chain[-1])
    factories: list[str] = []
    for stmt in node.body:
        value = None
        if isinstance(stmt, ast.AnnAssign):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        if not isinstance(value, ast.Call):
            continue
        fname = _attr_chain(value.func)
        if fname is None or fname[-1] != "field":
            continue
        for kw in value.keywords:
            if kw.arg == "default_factory":
                chain = _attr_chain(kw.value)
                if chain:
                    factories.append(chain[-1])
    program.classes.setdefault(node.name, ClassInfo(
        name=node.name,
        scope=sf.scope,
        bases=tuple(bases),
        is_dataclass="dataclass" in decorators,
        default_factories=tuple(factories),
    ))


def _index_import(node: ast.Import | ast.ImportFrom, module: str,
                  imports: set[str]) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                imports.add(alias.name)
        return
    if node.level == 0:
        base = node.module or ""
        if base == "repro" or base.startswith("repro."):
            imports.add(base)
        return
    # relative import: resolve against this module's package
    parts = module.split(".")
    package = parts[: len(parts) - node.level]
    base_parts = package + (node.module.split(".") if node.module else [])
    base = ".".join(base_parts)
    if base == "repro" or base.startswith("repro."):
        imports.add(base)


# ---------------------------------------------------------------------------
# pass 2: call-edge extraction
# ---------------------------------------------------------------------------

def _class_hierarchy(program: Program, class_name: str,
                     *, include_subclasses: bool) -> list[ClassInfo]:
    """The class, its transitive bases, and (optionally) subclasses."""
    out: list[ClassInfo] = []
    seen: set[str] = set()
    queue = deque([class_name])
    while queue:
        name = queue.popleft()
        if name in seen:
            continue
        seen.add(name)
        info = program.classes.get(name)
        if info is None:
            continue
        out.append(info)
        queue.extend(info.bases)
    if include_subclasses:
        for name, info in sorted(program.classes.items()):
            if name not in seen and _inherits_from(program, name, class_name):
                out.append(info)
    return out


def _inherits_from(program: Program, name: str, ancestor: str) -> bool:
    seen: set[str] = set()
    queue = deque([name])
    while queue:
        current = queue.popleft()
        if current in seen:
            continue
        seen.add(current)
        info = program.classes.get(current)
        if info is None:
            continue
        if ancestor in info.bases:
            return True
        queue.extend(info.bases)
    return False


def _resolve_method(program: Program, class_name: str, method: str,
                    *, include_subclasses: bool) -> list[str]:
    targets: list[str] = []
    for cls in _class_hierarchy(program, class_name,
                                include_subclasses=include_subclasses):
        node_id = cls.methods.get(method)
        if node_id is not None:
            targets.append(node_id)
    return targets


def _extract_calls(program: Program, info: FunctionInfo) -> None:
    edges = program.edges.setdefault(info.node_id, set())
    call_funcs: set[int] = set()
    for node in iter_own_nodes(info.node):
        if isinstance(node, ast.Call):
            call_funcs.add(id(node.func))
    for node in iter_own_nodes(info.node):
        if isinstance(node, ast.Call):
            _extract_one_call(program, info, node, edges)
        elif (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)):
            # property access runs the getter even as a call receiver
            for target in program._properties.get(node.attr, ()):
                edges.add(target)
            if id(node) not in call_funcs:
                # a method referenced without being called: hook store,
                # sort key, callback argument — address-taken
                for target in program._by_name.get(node.attr, ()):
                    if not program.functions[target].is_property:
                        program.address_taken.add(target)
                        edges.add(target)
        elif (isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in call_funcs
                and node.id in program._by_name):
            for target in program._by_name[node.id]:
                program.address_taken.add(target)
                edges.add(target)


def _extract_one_call(program: Program, info: FunctionInfo,
                      node: ast.Call, edges: set[str]) -> None:
    func = node.func
    if isinstance(func, ast.Attribute):
        receiver = func.value
        # self.method(...) — class-aware, including subclass overrides
        if (isinstance(receiver, ast.Name) and receiver.id == "self"
                and info.class_name is not None):
            targets = _resolve_method(program, info.class_name, func.attr,
                                      include_subclasses=True)
            if targets:
                edges.update(targets)
            else:
                _by_name_edges(program, func.attr, edges)
            return
        # super().method(...) — bases only
        if (isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
                and info.class_name is not None):
            cls = program.classes.get(info.class_name)
            if cls is not None:
                for base in cls.bases:
                    targets = _resolve_method(program, base, func.attr,
                                              include_subclasses=False)
                    if targets:
                        edges.update(targets)
                        return
            _by_name_edges(program, func.attr, edges)
            return
        # ClassName.method(self, ...) — explicit unbound call
        if (isinstance(receiver, ast.Name)
                and receiver.id in program.classes):
            targets = _resolve_method(program, receiver.id, func.attr,
                                      include_subclasses=False)
            if targets:
                edges.update(targets)
                return
        # unknown receiver: conservative by-name resolution
        _by_name_edges(program, func.attr, edges)
        return
    if isinstance(func, ast.Name):
        name = func.id
        if name in program.classes:
            _constructor_edges(program, name, edges)
            return
        if name in program._by_name:
            edges.update(program._by_name[name])
            return
        if name in _BUILTIN_NAMES:
            return
        # a parameter, local, or unresolvable name: dynamic call
        info.makes_dynamic_calls = True
        return
    # calling a subscript / call result / lambda: dynamic call
    info.makes_dynamic_calls = True


def _by_name_edges(program: Program, name: str, edges: set[str]) -> None:
    for target in program._by_name.get(name, ()):
        edges.add(target)


def _constructor_edges(program: Program, class_name: str,
                       edges: set[str]) -> None:
    for cls in _class_hierarchy(program, class_name,
                                include_subclasses=False):
        init = cls.methods.get("__init__")
        if init is not None:
            edges.add(init)
            break
    cls_info = program.classes.get(class_name)
    if cls_info is not None:
        post = cls_info.methods.get("__post_init__")
        if post is not None:
            edges.add(post)
        for factory in cls_info.default_factories:
            if factory in program.classes:
                _constructor_edges(program, factory, edges)
            else:
                _by_name_edges(program, factory, edges)
