"""The built-in rule families: repo-specific contract checks.

Four contract families guard the disciplines the runtime stack relies
on (see ``docs/STATIC_ANALYSIS.md`` for the catalog with examples), and
a fifth enforces the annotation coverage the strict mypy gate assumes:

- ``journal-coverage`` (JRN001) — inside journal-managed classes, every
  method that directly mutates a journaled container must acknowledge
  the undo journal (append to ``undo_log``, or call one of the
  ``_j*`` first-touch helpers) or be an explicitly exempt
  undo/rollback/serialization method.
- ``determinism`` (DET001/DET002) — on the cross-backend-equivalence
  path (``reservation/``, ``multimachine/``, ``sim/``), iterating a
  ``set`` (or a set-valued attribute) without ``sorted()`` and ordering
  by ``id()`` are errors: backend equivalence is bit-exact, so any
  hash-order dependence is a latent differential-harness counterexample.
- ``pickle-boundary`` (PKL001/PKL002) — classes shipped across the
  process-worker pipe (``reservation/``, ``core/``, ``levels/``) must
  define ``__getstate__``/``__setstate__`` before storing closures,
  lambdas, or process resources on ``self`` (the PR 4 stale-closure bug
  shape: a pickled closure silently rebinds to a dead scheduler).
- ``rollback-safety`` (RBK001/RBK002) — ``apply_*``/``_batch_*``
  request paths may not swallow broad exceptions (a swallowed failure
  leaves half-applied state that rollback never sees), and a function
  holding an open arena ``mark()`` scope may not mutate journaled
  containers without journaling them.
- ``typing-coverage`` (TYP001/TYP002) — functions and methods in the
  strictly-typed packages must carry full parameter and return
  annotations, so the mypy gate in CI checks real signatures instead of
  inferring ``Any``.

Every rule is syntactic (stdlib ``ast``, no type inference), so each
contract errs toward precision on the real tree and is suppressible
per line (``# staticcheck: ignore[rule-name]``) where the pattern is
provably safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Iterator

from .engine import Rule, SourceFile, register
from .report import Finding

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------

#: method names that mutate a container in place
MUTATOR_METHODS = frozenset({
    "add", "discard", "remove", "pop", "popitem", "clear", "update",
    "setdefault", "append", "extend", "insert", "__setitem__",
})


def _mentions_attr(node: ast.AST, attrs: frozenset[str]) -> bool:
    """True when any ``<expr>.<name>`` with name in ``attrs`` occurs."""
    return any(
        isinstance(sub, ast.Attribute) and sub.attr in attrs
        for sub in ast.walk(node)
    )


def _expr_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure is cosmetic
        return "<expr>"


def _collect_aliases(fn: ast.AST, attrs: frozenset[str]) -> set[str]:
    """Local names bound from expressions rooted at a journaled attr.

    Covers ``states = self.window_states[level]`` and
    ``have = self.assigned.get(window)`` — mutating through the alias
    is mutating the journaled container.
    """
    aliases: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        if not _mentions_attr(node.value, attrs):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases.add(target.id)
    return aliases


def _is_tracked(node: ast.AST, attrs: frozenset[str],
                aliases: set[str]) -> bool:
    """Does this receiver expression denote a journaled container?"""
    if isinstance(node, ast.Attribute) and node.attr in attrs:
        return True
    if isinstance(node, ast.Name) and node.id in aliases:
        return True
    if isinstance(node, ast.Subscript):
        return _is_tracked(node.value, attrs, aliases)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "get":
            return _is_tracked(func.value, attrs, aliases)
    return False


def _iter_mutations(
    fn: ast.AST, attrs: frozenset[str],
) -> Iterator[tuple[ast.AST, str]]:
    """Yield (node, description) for direct journaled-container mutations."""
    aliases = _collect_aliases(fn, attrs)
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and _is_tracked(func.value, attrs, aliases)):
                yield node, f"{_expr_text(func)}(...)"
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.Assign):
                targets: list[ast.expr] = []
                for t in node.targets:
                    targets.extend(t.elts if isinstance(t, ast.Tuple) else [t])
            else:
                targets = [node.target]
            for t in targets:
                if (isinstance(t, ast.Subscript)
                        and _is_tracked(t.value, attrs, aliases)):
                    yield t, f"{_expr_text(t)} = ..."
                elif isinstance(t, ast.Attribute) and t.attr in attrs:
                    yield t, f"{_expr_text(t)} = ..."
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                if (isinstance(t, ast.Subscript)
                        and _is_tracked(t.value, attrs, aliases)):
                    yield t, f"del {_expr_text(t)}"
                elif isinstance(t, ast.Attribute) and t.attr in attrs:
                    yield t, f"del {_expr_text(t)}"


#: attribute reads that acknowledge the journal (appending an inverse)
ACK_ATTRS = frozenset({"undo_log", "_journal", "_abatch"})
#: helper calls that acknowledge the journal (first-touch capture)
ACK_CALLS = frozenset({
    "_jdict", "_jtouch", "_jwindow_state", "_jstates_dict",
    "_journal_acquire", "_set_placement", "_clear_placement",
    "_log_touch",
})


def _acknowledges_journal(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr in ACK_ATTRS:
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name in ACK_CALLS:
                return True
    return False


def _class_methods(cls: ast.ClassDef) -> list[ast.FunctionDef]:
    return [n for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]


def _matches_any(name: str, patterns: tuple[str, ...]) -> bool:
    return any(fnmatch(name, p) for p in patterns)


# ---------------------------------------------------------------------------
# journal-coverage (JRN001)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JournalContract:
    """Journal discipline for one class: which attrs, which exemptions."""

    #: journaled container attribute names (matched on any receiver:
    #: ``self.assigned``, ``ws.jobs``, ``iv.slot_owner``, aliases)
    attrs: frozenset[str]
    #: method-name globs allowed to mutate without journaling — the
    #: undo/rollback/serialization methods themselves
    exempt: tuple[str, ...]


#: interval containers whose every mutation must append an undo entry.
#: The first four are the legacy dict/set names (now derived read-only
#: properties, kept so mutations through an old-style alias still
#: flag); the underscore names are the flattened slot-indexed arrays
#: that replaced them. Deliberately absent: ``_dyn_total``, ``_counts``,
#: ``_tlist``, ``_free``, ``_ws`` — derived caches maintained by
#: journal-free ``_note_*``/``_free_*`` helpers and rebuilt on abort.
INTERVAL_ATTRS = frozenset({
    "lower_occupied", "dynamic_res", "assigned", "slot_owner",
    "_lower", "_n_lower", "_dyn", "_owner", "_aslots",
})

#: scheduler-side journaled containers: placement maps, job levels,
#: window-state tables, plus the window-state backed sets and the
#: interval containers it touches directly
SCHEDULER_ATTRS = INTERVAL_ATTRS | frozenset({
    "slot_job", "job_slot", "_placements", "_job_levels",
    "window_states", "intervals", "jobs", "backed_empty",
    "backed_covered",
})

COMMON_EXEMPT = (
    "__init__", "__getstate__", "__setstate__", "_undo_*", "_closure_*",
)

#: class name -> contract; applies to classes with these names in any
#: module this rule is scoped to
JOURNAL_CONTRACTS: dict[str, JournalContract] = {
    "Interval": JournalContract(
        attrs=INTERVAL_ATTRS,
        # seed_lower is pre-publication setup on a fresh interval (no
        # journal scope can observe it yet), like __init__
        exempt=COMMON_EXEMPT + ("_swap_raw", "seed_lower"),
    ),
    "AlignedReservationScheduler": JournalContract(
        attrs=SCHEDULER_ATTRS,
        exempt=COMMON_EXEMPT + (
            "_batch_restore", "_rollback", "_release_batch_log",
            "_journal_acquire", "_journal_release",
        ),
    ),
    # Delegation layer: the incrementally-maintained merged placement
    # map must record every touched id (``_log_touch``) before mutating,
    # or the batch-restore rewind misses the entry.
    "DelegatingScheduler": JournalContract(
        attrs=frozenset({"_placements"}),
        # _merge_shard_results is the sharded merge path's own
        # first-touch capture: it records each pre-placement into the
        # batch touched log inline before mutating
        exempt=COMMON_EXEMPT + ("_batch_restore", "_merge_shard_results"),
    ),
    "ElasticScheduler": JournalContract(
        attrs=frozenset({"_placements"}),
        # _rebuild_merged recomputes the map wholesale after an
        # elasticity event — the event itself is already O(n)-costed
        exempt=COMMON_EXEMPT + ("_batch_restore", "_rebuild_merged"),
    ),
}


class JournalCoverageRule(Rule):
    name = "journal-coverage"
    description = (
        "mutations of journaled containers must append an undo entry or "
        "run inside a first-touch-captured scope"
    )
    scopes = ("reservation/", "multimachine/")

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            contract = JOURNAL_CONTRACTS.get(node.name)
            if contract is None:
                continue
            for method in _class_methods(node):
                if _matches_any(method.name, contract.exempt):
                    continue
                if _acknowledges_journal(method):
                    continue
                for mut, desc in _iter_mutations(method, contract.attrs):
                    yield self.finding(
                        sf, mut, "JRN001",
                        f"{node.name}.{method.name} mutates journaled "
                        f"container ({desc}) without touching the undo "
                        "journal; append an undo entry, call a _j* "
                        "first-touch helper, or add the method to the "
                        "contract's exempt list",
                    )


# ---------------------------------------------------------------------------
# determinism (DET001 / DET002)
# ---------------------------------------------------------------------------

#: attributes that hold (or may hold) sets on the equivalence path
SET_HINT_ATTRS = frozenset({"jobs", "lower_occupied"})
#: dict- or list-valued attributes whose *elements* are sets
SET_VALUED_DICT_ATTRS = frozenset({"assigned", "_aslots"})
#: set-returning method names (on any receiver)
SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


def _is_set_like(node: ast.AST) -> bool:
    """Syntactic evidence that an expression evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in SET_METHODS:
                return True
            # iv.assigned.get(window, ()) — a set-valued dict lookup
            if (func.attr == "get" and isinstance(func.value, ast.Attribute)
                    and func.value.attr in SET_VALUED_DICT_ATTRS):
                return True
        return False
    if isinstance(node, ast.Attribute) and node.attr in SET_HINT_ATTRS:
        return True
    if isinstance(node, ast.Subscript):
        value = node.value
        if (isinstance(value, ast.Attribute)
                and value.attr in SET_VALUED_DICT_ATTRS):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_like(node.left) or _is_set_like(node.right)
    return False


def _key_uses_id(key: ast.AST) -> bool:
    for sub in ast.walk(key):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"):
            return True
        if isinstance(sub, ast.Name) and sub.id == "id" and not isinstance(
                sub.ctx, ast.Store):
            return True
    return False


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no unordered-set iteration or id()-keyed ordering on the "
        "cross-backend-equivalence path"
    )
    scopes = ("reservation/", "multimachine/", "sim/")

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_like(it):
                    yield self.finding(
                        sf, it, "DET001",
                        f"iteration over set-like expression "
                        f"'{_expr_text(it)}' has no deterministic order on "
                        "the equivalence path; wrap in sorted() or suppress "
                        "if provably order-insensitive",
                    )
            if isinstance(node, ast.Call):
                func = node.func
                orderer = None
                if isinstance(func, ast.Name) and func.id in (
                        "sorted", "min", "max"):
                    orderer = func.id
                elif isinstance(func, ast.Attribute) and func.attr == "sort":
                    orderer = "sort"
                if orderer is None:
                    continue
                for kw in node.keywords:
                    if kw.arg == "key" and _key_uses_id(kw.value):
                        yield self.finding(
                            sf, node, "DET002",
                            f"{orderer}() keyed by id() orders by memory "
                            "address, which differs across processes and "
                            "runs; key on stable identity instead",
                        )


# ---------------------------------------------------------------------------
# pickle-boundary (PKL001 / PKL002)
# ---------------------------------------------------------------------------

#: constructors whose instances cannot cross a pickle boundary
RESOURCE_CTORS = frozenset({
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition",
    "Event", "Barrier", "Thread", "Process", "Pipe", "Queue",
    "SimpleQueue", "Manager", "Pool", "ThreadPoolExecutor",
    "ProcessPoolExecutor", "socket", "open",
})


def _closure_factory_methods(cls: ast.ClassDef) -> set[str]:
    """Methods that build and hand out closures (nested def / lambda)."""
    factories: set[str] = set()
    for method in _class_methods(cls):
        nested = {
            n.name for n in ast.walk(method)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and n is not method
        }
        for node in ast.walk(method):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Lambda):
                    factories.add(method.name)
                elif (isinstance(node.value, ast.Name)
                        and node.value.id in nested):
                    factories.add(method.name)
    return factories


def _self_attr_assignments(
    cls: ast.ClassDef,
) -> Iterator[tuple[ast.FunctionDef, str, ast.expr, ast.AST]]:
    """Yield (method, attr, value, node) for every ``self.X = value``."""
    for method in _class_methods(cls):
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for t in targets:
                if (isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"):
                    yield method, t.attr, value, node


class PickleBoundaryRule(Rule):
    name = "pickle-boundary"
    description = (
        "classes shipped across the process-worker pipe must define "
        "__getstate__/__setstate__ before storing closures or resources"
    )
    # the state ProcessShardPool ships: schedulers, intervals, window
    # states, jobs/windows/policies — reservation/, core/, levels/
    scopes = ("reservation/", "core/", "levels/")

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        for cls in ast.walk(sf.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            names = {m.name for m in _class_methods(cls)}
            if "__getstate__" in names or "__setstate__" in names:
                continue
            factories = _closure_factory_methods(cls)
            for method, attr, value, node in _self_attr_assignments(cls):
                nested = {
                    n.name for n in ast.walk(method)
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and n is not method
                }
                closure_reason = None
                if any(isinstance(sub, ast.Lambda)
                       for sub in ast.walk(value)):
                    closure_reason = "a lambda"
                elif isinstance(value, ast.Name) and value.id in nested:
                    closure_reason = "a locally-defined closure"
                else:
                    for sub in ast.walk(value):
                        if (isinstance(sub, ast.Call)
                                and isinstance(sub.func, ast.Attribute)
                                and isinstance(sub.func.value, ast.Name)
                                and sub.func.value.id == "self"
                                and sub.func.attr in factories):
                            closure_reason = (
                                f"the closure factory self.{sub.func.attr}()")
                            break
                if closure_reason is not None:
                    yield self.finding(
                        sf, node, "PKL001",
                        f"{cls.name}.{method.name} stores {closure_reason} "
                        f"on self.{attr} but {cls.name} defines neither "
                        "__getstate__ nor __setstate__; a pickled closure "
                        "rebinds to a dead object on restore (the PR 4 "
                        "stale-closure bug shape)",
                    )
                    continue
                for sub in ast.walk(value):
                    if not isinstance(sub, ast.Call):
                        continue
                    func = sub.func
                    ctor = func.attr if isinstance(func, ast.Attribute) \
                        else (func.id if isinstance(func, ast.Name) else None)
                    if ctor in RESOURCE_CTORS:
                        yield self.finding(
                            sf, node, "PKL002",
                            f"{cls.name}.{method.name} stores unpicklable "
                            f"resource {ctor}() on self.{attr} without "
                            "__getstate__/__setstate__",
                        )
                        break


# ---------------------------------------------------------------------------
# rollback-safety (RBK001 / RBK002)
# ---------------------------------------------------------------------------

#: request-path function names the broad-except check applies to
REQUEST_PATH_PATTERNS = ("apply*", "_apply*", "_batch*", "insert", "delete")

#: union of every journaled attr, for the mark-scope check
ALL_JOURNALED_ATTRS = frozenset().union(
    *(c.attrs for c in JOURNAL_CONTRACTS.values()))


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    def broad(t: ast.expr) -> bool:
        return isinstance(t, ast.Name) and t.id in (
            "Exception", "BaseException")

    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(broad(e) for e in handler.type.elts)
    return broad(handler.type)


class RollbackSafetyRule(Rule):
    name = "rollback-safety"
    description = (
        "request paths must not swallow broad exceptions, and arena "
        "mark() scopes must journal their mutations"
    )
    scopes = ("reservation/", "multimachine/", "core/")

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        for fn in ast.walk(sf.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _matches_any(fn.name, REQUEST_PATH_PATTERNS):
                for node in ast.walk(fn):
                    if not isinstance(node, ast.ExceptHandler):
                        continue
                    if not _is_broad_handler(node):
                        continue
                    if any(isinstance(sub, ast.Raise)
                           for stmt in node.body
                           for sub in ast.walk(stmt)):
                        continue
                    yield self.finding(
                        sf, node, "RBK001",
                        f"{fn.name} swallows a broad exception; a "
                        "swallowed mid-request failure leaves "
                        "half-applied state that rollback never sees — "
                        "re-raise after cleanup or narrow the handler",
                    )
            opens_mark = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "mark"
                and not node.args and not node.keywords
                for node in ast.walk(fn)
            )
            if opens_mark and not _acknowledges_journal(fn):
                for mut, desc in _iter_mutations(fn, ALL_JOURNALED_ATTRS):
                    yield self.finding(
                        sf, mut, "RBK002",
                        f"{fn.name} mutates journaled container ({desc}) "
                        "inside an arena mark() scope without journaling; "
                        "a rollback to the mark would miss this mutation",
                    )


# ---------------------------------------------------------------------------
# typing-coverage (TYP001 / TYP002)
# ---------------------------------------------------------------------------

class TypingCoverageRule(Rule):
    name = "typing-coverage"
    description = (
        "functions in the strictly-typed packages must have full "
        "parameter and return annotations"
    )
    scopes = ("core/", "reservation/", "multimachine/", "sim/", "analysis/",
              "workloads/", "baselines/")

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        # module-level functions and class methods only; nested closures
        # are checked by mypy's inference, not the coverage gate
        def funcs_of(body: list[ast.stmt]) -> Iterator[ast.FunctionDef]:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node
                elif isinstance(node, ast.ClassDef):
                    yield from funcs_of(node.body)

        for fn in funcs_of(sf.tree.body):
            args = fn.args
            params = args.posonlyargs + args.args + args.kwonlyargs
            missing = [a.arg for a in params
                       if a.annotation is None and a.arg not in (
                           "self", "cls")]
            for va in (args.vararg, args.kwarg):
                if va is not None and va.annotation is None:
                    missing.append(va.arg)
            if missing:
                yield self.finding(
                    sf, fn, "TYP001",
                    f"{fn.name} is missing parameter annotation(s): "
                    f"{', '.join(missing)}",
                )
            if fn.returns is None:
                yield self.finding(
                    sf, fn, "TYP002",
                    f"{fn.name} is missing a return annotation",
                )


# ---------------------------------------------------------------------------

register(JournalCoverageRule())
register(DeterminismRule())
register(PickleBoundaryRule())
register(RollbackSafetyRule())
register(TypingCoverageRule())
