"""Ratchet baseline: known findings, checked in, only allowed to shrink.

The hot-path rules fire on code that predates them; blocking CI on day
one would force mass suppressions, and suppressions never expire. The
ratchet is the alternative: the current findings are serialized —
line-number-independent fingerprints (``scope::code::context``) with
occurrence counts — into ``staticcheck_baseline.json`` at the repo
root, and ``repro lint --ratchet`` fails only when the tree is *worse*
than the baseline:

- a fingerprint not in the baseline (or a count above it) is a **new**
  finding — fail, fix it or justify regenerating;
- a baseline entry the tree no longer produces is **stale-loose** —
  fail, regenerate with ``--write-baseline`` so the burned-down debt
  can never silently come back;
- a baseline written under a different :data:`~.report.RULES_VERSION`
  or rule set is unusable — fail, regenerate.

Both failure directions force the baseline to track reality exactly,
so its diff history *is* the burn-down chart.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .report import RULES_VERSION, Report

#: default baseline location: the repo root (three levels above the
#: repro package this file lives in: src/repro/analysis/staticcheck)
DEFAULT_BASELINE = (
    Path(__file__).resolve().parents[4] / "staticcheck_baseline.json"
)


def _fingerprint_counts(report: Report) -> dict[str, int]:
    return dict(Counter(f.fingerprint() for f in report.findings))


def write_baseline(report: Report, path: Path) -> dict[str, object]:
    """Serialize the run's findings as the new baseline; returns it."""
    payload: dict[str, object] = {
        "rules_version": RULES_VERSION,
        "rules": sorted(report.rules_run),
        "files_checked": report.files_checked,
        "findings": dict(sorted(_fingerprint_counts(report).items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def load_baseline(path: Path) -> dict[str, object] | None:
    if not path.exists():
        return None
    return json.loads(path.read_text())


@dataclass
class RatchetResult:
    """Outcome of comparing a run against the baseline."""

    baseline_path: str
    #: fingerprints with more occurrences than the baseline allows
    new: list[str] = field(default_factory=list)
    #: baseline entries the tree no longer produces (stale-loose)
    stale: list[str] = field(default_factory=list)
    #: version / rule-set mismatch, or missing baseline
    invalid: str | None = None
    #: findings present in both the run and the baseline (debt carried)
    unchanged: int = 0

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale and self.invalid is None

    def to_dict(self) -> dict[str, object]:
        return {
            "baseline": self.baseline_path,
            "ok": self.ok,
            "new": self.new,
            "stale": self.stale,
            "invalid": self.invalid,
            "counts": {
                "new": len(self.new),
                "fixed": len(self.stale),
                "unchanged": self.unchanged,
            },
        }

    def to_text(self) -> str:
        if self.ok:
            return (
                f"ratchet ok against {self.baseline_path} "
                f"[new=0 fixed=0 unchanged={self.unchanged}]")
        lines: list[str] = []
        if self.invalid:
            lines.append(f"ratchet: unusable baseline — {self.invalid}")
        for fp in self.new:
            lines.append(
                f"ratchet: NEW finding not in baseline: {fp} — fix it "
                "(preferred) or regenerate with --write-baseline")
        for fp in self.stale:
            lines.append(
                f"ratchet: stale-loose baseline entry no longer found: "
                f"{fp} — regenerate with --write-baseline to lock in "
                "the burn-down")
        if self.invalid is None:
            lines.append(
                f"ratchet: new={len(self.new)} fixed={len(self.stale)} "
                f"unchanged={self.unchanged}")
        return "\n".join(lines)


def check_ratchet(report: Report, path: Path) -> RatchetResult:
    """Compare a run against the checked-in baseline (see module doc)."""
    result = RatchetResult(baseline_path=str(path))
    baseline = load_baseline(path)
    if baseline is None:
        result.invalid = (
            f"no baseline at {path}; create one with --write-baseline")
        return result
    if baseline.get("rules_version") != RULES_VERSION:
        result.invalid = (
            f"baseline rules_version {baseline.get('rules_version')!r} != "
            f"current {RULES_VERSION!r}; regenerate with --write-baseline")
        return result
    if baseline.get("rules") != sorted(report.rules_run):
        result.invalid = (
            f"baseline covers rules {baseline.get('rules')}, this run "
            f"used {sorted(report.rules_run)}; run with the same rule "
            "set or regenerate")
        return result
    allowed = baseline.get("findings") or {}
    if not isinstance(allowed, dict):  # pragma: no cover - corrupt file
        result.invalid = "baseline 'findings' is not an object; regenerate"
        return result
    current = _fingerprint_counts(report)
    for fp, count in sorted(current.items()):
        excess = count - int(allowed.get(fp, 0))
        if excess > 0:
            result.new.extend([fp] * excess)
    for fp, count in sorted(allowed.items()):
        missing = int(count) - current.get(fp, 0)
        if missing > 0:
            result.stale.extend([fp] * missing)
    result.unchanged = sum(
        min(count, int(allowed.get(fp, 0))) for fp, count in current.items())
    return result
