"""Rule registry, suppression handling, and the analysis driver.

The engine is deliberately small: a rule is an object with a ``name``,
a set of *scopes* (path prefixes relative to the ``repro`` package —
``"reservation/"``, ``"sim/"``, ... — or ``None`` for every file) and a
``check(SourceFile)`` method yielding :class:`Finding` objects. Rules
register themselves into a module-level registry at import time
(:func:`register`); :func:`analyze_paths` parses each file once and
hands the shared AST to every applicable rule.

Suppressions are per-line comments, ruff/mypy style::

    risky_line()  # staticcheck: ignore[determinism]
    another()     # staticcheck: ignore          (all rules)

and a whole file opts out with ``# staticcheck: skip-file`` on any of
its first ten lines. Suppressed findings are counted (``Report.
suppressed``) so a suppression that stops matching anything is visible.

Scopes let the self-test suite feed known-bad fixture *sources* through
the same code path as real files: :func:`analyze_source` takes the
virtual repo-relative path explicitly, so a fixture can impersonate
``reservation/interval.py`` without touching the real tree.
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .report import Finding, Report

_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore(?:\[([A-Za-z0-9_,\- ]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*staticcheck:\s*skip-file")


class SourceFile:
    """One parsed source file plus its suppression table."""

    def __init__(self, source: str, scope: str, path: str) -> None:
        #: repo-display path (what findings point at)
        self.path = path
        #: path relative to the ``repro`` package root, ``/``-separated
        #: (drives rule scoping); fixtures pass a virtual scope
        self.scope = scope
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        #: line -> set of suppressed rule names (empty set = all rules)
        self.suppressions: dict[int, set[str]] = {}
        self.skip = any(
            _SKIP_FILE_RE.search(line) for line in self.lines[:10]
        )
        for lineno, line in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(line)
            if m is None:
                continue
            names = m.group(1)
            self.suppressions[lineno] = (
                {n.strip() for n in names.split(",") if n.strip()}
                if names else set()
            )

    def suppressed(self, rule: str, line: int) -> bool:
        names = self.suppressions.get(line)
        if names is None:
            return False
        return not names or rule in names


class Rule(ABC):
    """One rule family: a name, a scope set, and a ``check`` pass."""

    #: rule-family name (used in reports and suppression comments)
    name: str = ""
    #: short description for ``repro lint --list-rules``
    description: str = ""
    #: path prefixes (relative to the repro package) this rule runs on;
    #: None runs on every file
    scopes: tuple[str, ...] | None = None
    #: ratcheted rules are excluded from the default (strict) rule set
    #: and run via ``repro lint --ratchet`` against the checked-in
    #: baseline (see ``baseline.py``) so they can land aggressive and
    #: be burned down instead of blocking on day one
    ratcheted: bool = False

    def applies(self, scope: str) -> bool:
        if self.scopes is None:
            return True
        return scope.startswith(self.scopes)

    def prepare(self, files: Sequence["SourceFile"],
                shared: dict[str, object]) -> None:
        """Whole-program pre-pass before per-file ``check`` calls.

        Called once per run with *every* parsed file (not just the ones
        in this rule's scope) — interprocedural rules build their call
        graph here. ``shared`` is a per-run scratch dict so rules can
        share expensive artifacts (the hot-path rules share one
        :class:`~.callgraph.Program`). The default is a no-op.
        """

    @abstractmethod
    def check(self, sf: SourceFile) -> Iterator[Finding]:
        """Yield findings for one parsed source file."""

    def finding(self, sf: SourceFile, node: ast.AST, code: str,
                message: str, *, severity: str = "error",
                context: str = "") -> Finding:
        return Finding(
            path=sf.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            rule=self.name,
            message=message,
            severity=severity,
            scope=sf.scope,
            context=context,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add a rule instance to the registry (latest name wins)."""
    if not rule.name:
        raise ValueError("rule must have a name")
    _REGISTRY[rule.name] = rule
    return rule


def registered_rules() -> dict[str, Rule]:
    """Snapshot of the registry, importing the built-in rules first."""
    from . import hotpath as _hotpath  # noqa: F401  (import registers them)
    from . import rules as _builtin  # noqa: F401  (import registers them)
    from . import stateflow as _stateflow  # noqa: F401  (ditto)

    return dict(_REGISTRY)


def resolve_rules(names: Sequence[str] | None = None, *,
                  include_ratcheted: bool = False,
                  select: Sequence[str] | None = None) -> list[Rule]:
    """Rules by name; ``None`` means the default set.

    The default set excludes ratcheted rules — they fail against known
    debt by design, so they only run when named explicitly or when
    ``include_ratcheted`` is set (the ``--ratchet`` path, which
    compares them against the checked-in baseline instead of zero).

    ``select`` narrows whatever set the other arguments resolve to,
    keeping only the named families (the ``--select`` CLI flag, so CI
    jobs run one family group without re-running every rule). Unknown
    names raise ``KeyError``, same as ``names``.
    """
    registry = registered_rules()
    if names is None:
        resolved = [r for r in registry.values()
                    if include_ratcheted or not r.ratcheted]
    else:
        missing = [n for n in names if n not in registry]
        if missing:
            raise KeyError(
                f"unknown rule(s) {missing}; available: {sorted(registry)}")
        resolved = [registry[n] for n in names]
    if select is not None:
        missing = [n for n in select if n not in registry]
        if missing:
            raise KeyError(
                f"unknown rule(s) {missing}; available: {sorted(registry)}")
        wanted = set(select)
        resolved = [r for r in resolved if r.name in wanted]
    return resolved


def scope_of(path: Path) -> str:
    """Path relative to the ``repro`` package root, ``/``-separated.

    Files outside a ``repro`` directory scope as their plain name, so
    the engine still runs (scoped rules simply skip them).
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1:])
    return path.name


def _analyze_files(files: Sequence[SourceFile],
                   rules: Sequence[Rule]) -> Report:
    """The shared driver: prepare every rule, then check every file.

    The prepare pass sees *all* files (skip-file'd ones included — the
    call graph must cover the whole program); the check pass honors
    skip-file and per-line suppressions as before.
    """
    report = Report(rules_run=tuple(r.name for r in rules))
    shared: dict[str, object] = {}
    for rule in rules:
        rule.prepare(files, shared)
    for sf in files:
        report.files_checked += 1
        if sf.skip:
            continue
        for rule in rules:
            if not rule.applies(sf.scope):
                continue
            for finding in rule.check(sf):
                if sf.suppressed(rule.name, finding.line):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
    return report


def analyze_source(source: str, scope: str, *, path: str | None = None,
                   rules: Sequence[Rule] | None = None) -> Report:
    """Run rules over one in-memory source (the fixture entry point).

    Interprocedural rules see a one-file program: hot entry points
    declared in the fixture itself seed its hot propagation.
    """
    if rules is None:
        rules = resolve_rules()
    sf = SourceFile(source, scope, path if path is not None else scope)
    return _analyze_files([sf], rules)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def analyze_paths(paths: Iterable[Path],
                  rules: Sequence[Rule] | None = None) -> Report:
    """Run rules over files and directories; the CLI entry point."""
    if rules is None:
        rules = resolve_rules()
    files = [
        SourceFile(path.read_text(), scope_of(path), path=str(path))
        for path in iter_python_files(paths)
    ]
    return _analyze_files(files, rules)
