"""Hot-path performance-contract rules (interprocedural, ratcheted).

These five families encode the optimizations PRs 1/5 paid for as
standing contracts, firing only on functions the call graph tags *hot*
(reachable from the request surface — see ``callgraph.py``):

- ``hot-closures`` (HOT001) — no closure/lambda construction per
  request: a nested def or lambda in a hot function allocates a
  function object every call (the PR 5 journal diet exists because of
  exactly this). Build hooks once at ``__init__``/``__setstate__``.
- ``hot-comprehensions`` (HOT002) — no allocating comprehension or
  genexp inside a loop of a hot function: that is an allocation per
  iteration per request.
- ``hot-attr-chains`` (HOT003) — the bind-to-local contract: a
  repeated ``self.x.y`` chain inside a hot loop re-runs two dict
  lookups per iteration; bind it to a local before the loop when it is
  loop-invariant.
- ``hot-complexity`` (CPLX001) — no full iteration over a journaled
  dict / placement map on the hot path: the repo maintains
  ``SlotIndex`` structures and touched-logs precisely so per-request
  work is O(changes), not O(n).
- ``hot-allocations`` (ALLOC001) — no throwaway container
  construction (``dict()``/``list()``/``set()``/empty literals) in the
  *innermost* loop of a hot function.

All five are **ratcheted** (``Rule.ratcheted``): they run via ``repro
lint --ratchet`` against ``staticcheck_baseline.json`` instead of the
strict gate, so the existing debt is enumerated and burned down rather
than suppressed. The closure-journal oracle (``_closure_*``) and
repr/debug methods are exempt by name — they trade speed for fidelity
by design.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from .callgraph import (
    FunctionInfo,
    Program,
    _attr_chain,
    build_program,
    iter_own_nodes,
)
from .engine import Rule, SourceFile, register
from .report import Finding

#: shared-artifact key for the per-run program (see Rule.prepare)
_PROGRAM_KEY = "hotpath:program"

#: hot functions exempt from every hot-path rule: the closure-journal
#: oracle keeps lambdas by contract, undo/debug paths are off the
#: per-request fast path
EXEMPT_FUNCTIONS = ("_closure_*", "_undo_*", "__repr__", "__str__")

#: journaled dicts / placement maps with an O(changes) alternative
#: (SlotIndex, touched-log, or incremental mirror)
JOURNALED_MAPS = frozenset({
    "placements", "_placements", "slot_job", "job_slot", "_job_levels",
    "jobs", "window_states", "intervals", "assigned", "dynamic_res",
    "slot_owner", "lower_occupied", "_occupied",
})

#: builtins whose call consumes a whole iterable
_SCAN_WRAPPERS = frozenset({
    "dict", "list", "set", "frozenset", "sorted", "tuple", "sum",
    "min", "max",
})

_CONTAINER_CTORS = frozenset({"dict", "list", "set"})

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)
_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _matches_any(name: str, patterns: tuple[str, ...]) -> bool:
    from fnmatch import fnmatch

    return any(fnmatch(name, p) for p in patterns)


def _body_nodes(stmts: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested named functions."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _loops_of(info: FunctionInfo) -> list[ast.For | ast.AsyncFor | ast.While]:
    return [n for n in iter_own_nodes(info.node) if isinstance(n, _LOOPS)]


def _loop_body(loop: ast.For | ast.AsyncFor | ast.While) -> list[ast.stmt]:
    return list(loop.body) + list(loop.orelse)


def _store_names(loop: ast.For | ast.AsyncFor | ast.While) -> set[str]:
    """Names (re)bound inside the loop, including its own target."""
    names: set[str] = set()
    targets: list[ast.AST] = []
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        targets.append(loop.target)
    for node in list(_body_nodes(_loop_body(loop))) + targets:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)):
                names.add(sub.id)
    return names


def _is_innermost(loop: ast.For | ast.AsyncFor | ast.While) -> bool:
    return not any(isinstance(n, _LOOPS)
                   for n in _body_nodes(_loop_body(loop)))


def _journaled_map_expr(node: ast.AST) -> str | None:
    """Chain text when ``node`` denotes a journaled map (or its
    ``.items()``/``.values()``/``.keys()`` view); None otherwise."""
    if (isinstance(node, ast.Call) and not node.args and not node.keywords
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("items", "values", "keys")):
        node = node.func.value
    chain = _attr_chain(node)
    if chain is not None and len(chain) >= 2 and chain[-1] in JOURNALED_MAPS:
        return ".".join(chain)
    return None


class HotPathRule(Rule):
    """Base: builds/shares the program, iterates hot functions."""

    ratcheted = True
    scopes = ("core/", "reservation/", "multimachine/", "sim/", "levels/")

    def __init__(self) -> None:
        self._program: Program | None = None

    def prepare(self, files: Sequence[SourceFile],
                shared: dict[str, object]) -> None:
        program = shared.get(_PROGRAM_KEY)
        if not isinstance(program, Program):
            program = build_program(files)
            shared[_PROGRAM_KEY] = program
        self._program = program

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        program = self._program
        if program is None:  # pragma: no cover - engine always prepares
            return
        for info in sorted(program.functions_in(sf.scope),
                           key=lambda f: f.first_lineno):
            if not info.hot or _matches_any(info.name, EXEMPT_FUNCTIONS):
                continue
            yield from self.check_function(sf, info)

    def check_function(self, sf: SourceFile,
                       info: FunctionInfo) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover

    def hot_finding(self, sf: SourceFile, info: FunctionInfo,
                    node: ast.AST, code: str, message: str) -> Finding:
        assert self._program is not None
        chain = self._program.hot_path_to(info.node_id)
        entry = chain[0].removeprefix("entry:") if chain else "?"
        return self.finding(
            sf, node, code,
            f"{message} [hot via {entry}]",
            context=info.qualname,
        )


class HotClosureRule(HotPathRule):
    name = "hot-closures"
    description = (
        "no closure/lambda construction inside hot functions — build "
        "hooks once at __init__/__setstate__, not per request"
    )

    def check_function(self, sf: SourceFile,
                       info: FunctionInfo) -> Iterator[Finding]:
        for node in iter_own_nodes(info.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield self.hot_finding(
                    sf, info, node, "HOT001",
                    f"{info.qualname} builds closure '{node.name}' on the "
                    "hot path — a function object is allocated per call; "
                    "construct it once and cache it",
                )
            elif isinstance(node, ast.Lambda):
                yield self.hot_finding(
                    sf, info, node, "HOT001",
                    f"{info.qualname} builds a lambda on the hot path — a "
                    "function object is allocated per call; construct it "
                    "once and cache it",
                )


class HotComprehensionRule(HotPathRule):
    name = "hot-comprehensions"
    description = (
        "no allocating comprehension/genexp inside a loop of a hot "
        "function (an allocation per iteration per request)"
    )

    def check_function(self, sf: SourceFile,
                       info: FunctionInfo) -> Iterator[Finding]:
        seen: set[int] = set()
        for loop in _loops_of(info):
            for node in _body_nodes(_loop_body(loop)):
                if isinstance(node, _COMPREHENSIONS) and id(node) not in seen:
                    seen.add(id(node))
                    kind = type(node).__name__
                    yield self.hot_finding(
                        sf, info, node, "HOT002",
                        f"{info.qualname} allocates a {kind} inside a "
                        "hot loop — hoist it, fuse it into the loop, or "
                        "restructure to a single pass",
                    )


class HotAttrChainRule(HotPathRule):
    name = "hot-attr-chains"
    description = (
        "bind-to-local contract: repeated self.x.y attribute chains "
        "inside hot loops re-run dict lookups per iteration"
    )

    def check_function(self, sf: SourceFile,
                       info: FunctionInfo) -> Iterator[Finding]:
        flagged: dict[str, ast.AST] = {}
        for loop in _loops_of(info):
            rebound = _store_names(loop)
            body = list(_body_nodes(_loop_body(loop)))
            has_attr_parent = {
                id(n.value) for n in body if isinstance(n, ast.Attribute)
            }
            for node in body:
                if not isinstance(node, ast.Attribute):
                    continue
                if id(node) in has_attr_parent:
                    continue  # an inner link of a longer chain
                if not isinstance(node.ctx, ast.Load):
                    continue
                chain = _attr_chain(node)
                if chain is None or len(chain) < 3:
                    continue
                if chain[0] in rebound:
                    continue  # base changes per iteration; not invariant
                text = ".".join(chain)
                prev = flagged.get(text)
                if prev is None or node.lineno < prev.lineno:
                    flagged[text] = node
        for text, node in sorted(flagged.items()):
            yield self.hot_finding(
                sf, info, node, "HOT003",
                f"{info.qualname} evaluates '{text}' inside a hot loop — "
                "bind it to a local before the loop if loop-invariant",
            )


class HotComplexityRule(HotPathRule):
    name = "hot-complexity"
    description = (
        "no full iteration over a journaled dict/placement map on the "
        "hot path — use the SlotIndex / touched-log instead"
    )

    def check_function(self, sf: SourceFile,
                       info: FunctionInfo) -> Iterator[Finding]:
        seen: set[int] = set()

        def flag(node: ast.AST, text: str) -> Finding:
            seen.add(id(node))
            return self.hot_finding(
                sf, info, node, "CPLX001",
                f"{info.qualname} scans the whole journaled map "
                f"'{text}' — O(n) per request where a SlotIndex / "
                "touched-log exists; restrict to the touched entries or "
                "move this off the request path",
            )

        for node in iter_own_nodes(info.node):
            if id(node) in seen:
                continue
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, _COMPREHENSIONS):
                iters.extend(g.iter for g in node.generators)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _SCAN_WRAPPERS and node.args):
                iters.append(node.args[0])
            for it in iters:
                text = _journaled_map_expr(it)
                if text is not None and id(it) not in seen:
                    seen.add(id(it))
                    yield flag(it, text)


class HotAllocationRule(HotPathRule):
    name = "hot-allocations"
    description = (
        "no throwaway dict()/list()/set() or empty-literal container "
        "construction in the innermost loop of a hot function"
    )

    def check_function(self, sf: SourceFile,
                       info: FunctionInfo) -> Iterator[Finding]:
        seen: set[int] = set()
        for loop in _loops_of(info):
            if not _is_innermost(loop):
                continue
            for node in _body_nodes(_loop_body(loop)):
                if id(node) in seen:
                    continue
                desc = None
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in _CONTAINER_CTORS):
                    desc = f"{node.func.id}(...)"
                elif isinstance(node, ast.List) and not node.elts:
                    desc = "[]"
                elif isinstance(node, ast.Dict) and not node.keys:
                    desc = "{}"
                if desc is not None:
                    seen.add(id(node))
                    yield self.hot_finding(
                        sf, info, node, "ALLOC001",
                        f"{info.qualname} constructs {desc} in its "
                        "innermost hot loop — hoist the container or "
                        "reuse a preallocated one",
                    )


register(HotClosureRule())
register(HotComprehensionRule())
register(HotAttrChainRule())
register(HotComplexityRule())
register(HotAllocationRule())
