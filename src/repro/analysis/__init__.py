"""Analysis helpers: iterated logs, bound overlays, growth-rate fitting."""

from .bounds import (
    PAPER_SLACK,
    SlackBudget,
    lemma4_cost_bound,
    lemma11_migration_bound,
    lemma12_reallocation_bound,
    observation13_bound,
    theorem1_cost_bound,
)
from .logstar import log_star, paper_level_count, paper_thresholds, tower

__all__ = [
    "PAPER_SLACK",
    "SlackBudget",
    "lemma4_cost_bound",
    "lemma11_migration_bound",
    "lemma12_reallocation_bound",
    "observation13_bound",
    "theorem1_cost_bound",
    "log_star",
    "paper_level_count",
    "paper_thresholds",
    "tower",
]
